"""Back-of-the-envelope protocol selection and performance forecasting.

Walks the paper's Figure-14 flowchart for a deployment described on the
command line, then uses the distilled formulas (Equations 1-7) to forecast
capacity and latency for the candidate protocol families.

    python examples/protocol_advisor.py --wan --locality --dynamic --dc-failure
    python examples/protocol_advisor.py            # a LAN deployment
"""

import argparse

from repro.core.advisor import DeploymentProfile, recommend
from repro.core.latency import expected_latency
from repro.core.load import capacity, load, majority
from repro.core.topology import aws_wan


def forecast(n: int, regions: tuple[str, ...]) -> None:
    """Equations 1-7 evaluated for the classic protocol shapes."""
    per_region = max(1, n // len(regions))
    topo = aws_wan(regions, per_region)
    # Representative deployment delays: DL = mean RTT to a central leader,
    # DQ = majority quorum RTT from it.
    leader = per_region  # first node of regions[1]
    rtts = sorted(topo.rtts_from(leader))
    d_leader = sum(rtts) / len(rtts)
    d_quorum = rtts[majority(n) - 2] if majority(n) >= 2 else 0.0
    print(f"\nforecast for N={n} over {', '.join(regions)} "
          f"(DL~{d_leader:.0f} ms, DQ~{d_quorum:.0f} ms):")
    print(f"{'shape':<26}{'load':>7}{'capacity':>10}{'latency(l=0.8,c=0.1)':>22}")
    shapes = {
        "single leader (L=1)": (1, majority(n), 0.0, 0.0),
        "leaderless (L=N)": (n, majority(n), 0.1, 0.0),
        f"multi-leader (L={len(regions)})": (len(regions), n // len(regions), 0.0, 0.8),
    }
    for name, (leaders, quorum, conflict, locality) in shapes.items():
        protocol_load = load(leaders, quorum, conflict)
        latency = expected_latency(conflict, locality, d_leader, d_quorum)
        print(
            f"{name:<26}{protocol_load:>7.2f}{capacity(leaders, quorum, conflict):>10.2f}"
            f"{latency:>20.1f} ms"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-consensus", action="store_true", help="plain replication suffices")
    parser.add_argument("--wan", action="store_true", help="multi-region deployment")
    parser.add_argument("--locality", action="store_true", help="workload has access locality")
    parser.add_argument("--read-heavy", action="store_true", help="more reads than writes")
    parser.add_argument("--dynamic", action="store_true", help="locality shifts over time")
    parser.add_argument("--dc-failure", action="store_true", help="must survive a region outage")
    parser.add_argument("--nodes", type=int, default=9)
    args = parser.parse_args()

    profile = DeploymentProfile(
        needs_consensus=not args.no_consensus,
        wan=args.wan,
        workload_has_locality=args.locality,
        read_heavy=args.read_heavy,
        locality_is_dynamic=args.dynamic,
        datacenter_failure_is_concern=args.dc_failure,
    )
    rec = recommend(profile)
    print(f"recommended family: {rec.category}")
    print(f"consider: {', '.join(rec.protocols)}")
    print(f"why: {rec.rationale}")

    if args.wan:
        forecast(args.nodes, ("VA", "OH", "CA"))


if __name__ == "__main__":
    main()
