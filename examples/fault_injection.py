"""Availability under failures: crash the Paxos leader mid-run.

Uses the Paxi client library's fault commands (paper section 4.2) to
freeze the leader for one second during a steady workload, then prints a
timeline of throughput per 100 ms window showing the outage and the
post-election recovery — and verifies safety held throughout.

    python examples/fault_injection.py
"""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos

CRASH_AT = 1.0
CRASH_FOR = 1.0
RUN_FOR = 3.5


def main() -> None:
    config = Config.lan(3, 3, seed=5, election_timeout=0.08)
    deployment = Deployment(config).start(MultiPaxos)
    bench = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=20), concurrency=8, retry_timeout=0.25
    )
    leader = NodeID(1, 1)
    deployment.crash(leader, duration=CRASH_FOR, at=CRASH_AT)
    print(f"crashing leader {leader} at t={CRASH_AT:.1f}s for {CRASH_FOR:.1f}s\n")
    bench.run(duration=RUN_FOR, warmup=0.0, settle=0.05)

    # Timeline: completed operations per 100 ms bucket.
    buckets: dict[int, int] = {}
    for op in deployment.history.operations:
        buckets[int(op.returned_at * 10)] = buckets.get(int(op.returned_at * 10), 0) + 1
    print("t(s)   ops/100ms")
    for bucket in range(int(RUN_FOR * 10)):
        count = buckets.get(bucket, 0)
        bar = "#" * min(60, count // 10)
        marker = ""
        if bucket == int(CRASH_AT * 10):
            marker = "  <- leader crashes"
        elif bucket == int((CRASH_AT + CRASH_FOR) * 10):
            marker = "  <- crashed node thaws"
        print(f"{bucket / 10:4.1f}   {count:5d} {bar}{marker}")

    new_leader = {r.leader_hint for r in deployment.replicas.values() if r.active}
    print(f"\nleader after failover: {', '.join(map(str, new_leader))}")
    print(f"linearizable: {check_history(deployment.history.snapshot()).ok}")
    print(f"consensus:    {check_deployment(deployment).ok}")


if __name__ == "__main__":
    main()
