"""Quickstart: run MultiPaxos on a simulated 9-node LAN cluster.

Builds a deployment, issues a few requests by hand, then drives a short
benchmark and verifies the run with the paper's two checkers.

    python examples/quickstart.py
"""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.checkers.consensus import check_deployment
from repro.checkers.linearizability import check_history
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos


def main() -> None:
    # A 3x3 LAN cluster (zones are logical in a LAN), seeded for
    # reproducibility.  The deployment starts one replica per node.
    config = Config.lan(zones=3, nodes_per_zone=3, seed=7)
    deployment = Deployment(config).start(MultiPaxos)

    # --- issue a couple of requests by hand -------------------------------
    session = deployment.new_session()
    deployment.run_for(0.01)  # let phase-1 (leader setup) finish

    result = session.put("x", 42)
    print(f"PUT x = 42: value={result.value!r} latency={result.latency_ms:.3f} ms "
          f"via {result.replica}")

    result = session.get("x")
    print(f"GET x:      value={result.value!r} latency={result.latency_ms:.3f} ms "
          f"via {result.replica}")

    # --- drive a benchmark -------------------------------------------------
    spec = WorkloadSpec(keys=1000, write_ratio=0.5)  # the paper's LAN workload
    bench = ClosedLoopBenchmark(deployment, spec, concurrency=16)
    result = bench.run(duration=0.5, warmup=0.1, settle=0.0)
    print(
        f"\nbenchmark: {result.throughput:.0f} ops/s, "
        f"mean {result.latency.mean:.3f} ms, p99 {result.latency.p99:.3f} ms"
    )

    # --- verify ------------------------------------------------------------
    linearizable = check_history(deployment.history.snapshot())
    consensus = check_deployment(deployment)
    print(f"linearizable: {linearizable.ok} ({linearizable.checked_operations} ops)")
    print(f"consensus (common prefix): {consensus.ok} ({consensus.checked_keys} keys)")


if __name__ == "__main__":
    main()
