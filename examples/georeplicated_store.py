"""A geo-replicated key-value store: choosing a protocol for your regions.

The motivating scenario from the paper's introduction: a database
replicated across N. Virginia, Ohio, and California, with mostly-local
access per region and an occasional globally-hot object.  We run the same
workload against four protocols and print where each one's latency comes
from.

    python examples/georeplicated_store.py
"""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.checkers.linearizability import check_history
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Command
from repro.protocols.epaxos import EPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

REGIONS = ("VA", "OH", "CA")
HOT_KEY = 999_999


def regional_workload(region_index: int) -> WorkloadSpec:
    """90% region-local keys, 10% traffic on a shared hot object."""
    return WorkloadSpec(
        keys=60,
        min_key=100_000 * (region_index + 1),
        write_ratio=0.5,
        conflict_ratio=0.10,
        conflict_key=HOT_KEY,
    )


def run_protocol(name: str, factory, params: dict) -> None:
    config = Config.wan(REGIONS, 3, seed=11, **params)
    deployment = Deployment(config).start(factory)

    # Pin the hot object in Ohio (the most central region) and pre-place
    # each region's local keys in that region, like a warmed-up store.
    oh_client = deployment.new_client(site="OH")
    oh_client.invoke(Command.put(HOT_KEY, "seed"))
    for i, site in enumerate(REGIONS):
        regional = deployment.new_client(site=site)
        for key in range(100_000 * (i + 1), 100_000 * (i + 1) + 60):
            regional.invoke(Command.put(key, "seed"))
    deployment.run_for(2.0)

    spec = {site: regional_workload(i) for i, site in enumerate(REGIONS)}
    bench = ClosedLoopBenchmark(deployment, spec, concurrency=9)
    result = bench.run(duration=2.0, warmup=1.0, settle=0.0)

    per_region = "  ".join(
        f"{site}={result.per_site[site].mean:6.2f}ms" if site in result.per_site else f"{site}=   n/a"
        for site in REGIONS
    )
    ok = check_history(deployment.history.snapshot()).ok
    print(f"{name:<22} {per_region}  p99={result.latency.p99:7.2f}ms  linearizable={ok}")


def main() -> None:
    print(f"{'protocol':<22} per-region mean latency")
    run_protocol("Paxos (OH leader)", MultiPaxos, {"leader": NodeID(2, 1)})
    run_protocol("EPaxos", EPaxos, {})
    run_protocol("WPaxos fz=0", WPaxos, {"fz": 0})
    run_protocol("WanKeeper", WanKeeper, {})
    run_protocol("VPaxos", VPaxos, {})
    print(
        "\nReading the numbers: the locality-aware multi-leader protocols"
        " (WPaxos / WanKeeper / VPaxos) serve region-local keys at ~1 ms and"
        " only pay a WAN trip for the hot object, while the single leader"
        " taxes every remote region and EPaxos pays its large fast quorum."
    )


if __name__ == "__main__":
    main()
