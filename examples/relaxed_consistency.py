"""Trading linearizability for local reads (the paper's future work).

Runs the same 3-region MultiPaxos deployment under three read policies —
strong (consensus reads), relaxed (local reads), and session (local reads
with version tokens) — and shows what each buys and costs, verified by
the corresponding checkers rather than asserted.

    python examples/relaxed_consistency.py
"""

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.checkers.linearizability import check_history
from repro.checkers.staleness import check_bounded_staleness, check_session
from repro.core.relaxed import RelaxedPaxosModel
from repro.core.topology import aws_wan
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos

REGIONS = ("VA", "OH", "CA")


def run(policy: str) -> None:
    relaxed = policy != "strong"
    config = Config.wan(REGIONS, 3, seed=4, relaxed_reads=relaxed, leader=NodeID(2, 1))
    deployment = Deployment(config).start(MultiPaxos)
    bench = ClosedLoopBenchmark(deployment, WorkloadSpec(keys=5, write_ratio=0.5), concurrency=9)
    for client, _generator in bench._drivers:
        client.local_reads = relaxed
        client.session_reads = policy == "session"
    bench.run(duration=2.0, warmup=0.5, settle=0.5)

    operations = deployment.history.snapshot()
    reads = [op.latency * 1e3 for op in deployment.history.operations if op.is_read]
    read_ms = sum(reads) / len(reads)
    staleness = check_bounded_staleness(operations, delta=float("inf"))
    print(
        f"{policy:<8} reads {read_ms:6.2f} ms   "
        f"linearizable={check_history(operations).ok!s:<5} "
        f"session={check_session(operations).ok!s:<5} "
        f"max staleness={staleness.max_staleness * 1e3:5.1f} ms"
    )


def main() -> None:
    print("policy   read latency  guarantees (checked, not assumed)")
    for policy in ("strong", "relaxed", "session"):
        run(policy)
    model = RelaxedPaxosModel(aws_wan(REGIONS, 3), write_ratio=0.5, leader=3)
    bound = max(model.staleness_bound(site).delta for site in REGIONS) * 1e3
    print(f"\nmodel staleness bound (heartbeat + one-way delay): {bound:.0f} ms")
    print(f"model capacity: strong {model.max_throughput() * 0.5:.0f}/s -> relaxed {model.max_throughput():.0f}/s")


if __name__ == "__main__":
    main()
