"""Capacity planning with the analytic models (no simulation needed).

Given a target request rate and an SLO, sweep cluster sizes and protocols
through the queueing models to find configurations that meet both — the
kind of back-of-the-envelope forecasting the paper's formulas enable.

    python examples/capacity_planning.py --rate 5000 --slo-ms 2.0
"""

import argparse

from repro.core.protocol_models import EPaxosModel, FPaxosModel, PaxosModel, WPaxosModel
from repro.core.topology import lan


def candidates(n: int):
    topo = lan(n)
    models = [PaxosModel(topo), FPaxosModel(topo, q2=max(2, n // 3))]
    models.append(EPaxosModel(topo, conflict=0.1))
    for zones in (3, 5):
        if n % zones == 0 and n // zones >= 1:
            models.append(
                WPaxosModel(topo, zones=zones, nodes_per_zone=n // zones, locality=1 / zones)
            )
    return models


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=5000.0, help="target ops/s")
    parser.add_argument("--slo-ms", type=float, default=2.0, help="mean latency SLO")
    args = parser.parse_args()

    print(f"target: {args.rate:.0f} ops/s at mean latency <= {args.slo_ms} ms\n")
    print(f"{'N':>3} {'protocol':<12} {'capacity':>9} {'util@target':>12} {'latency':>9}  verdict")
    for n in (3, 5, 9, 15):
        for model in candidates(n):
            cap = model.max_throughput()
            if args.rate >= cap:
                print(f"{n:>3} {model.name:<12} {cap:>9.0f} {'-':>12} {'-':>9}  saturated")
                continue
            latency = model.latency_ms(args.rate)
            ok = latency <= args.slo_ms
            print(
                f"{n:>3} {model.name:<12} {cap:>9.0f} {args.rate / cap:>11.0%} "
                f"{latency:>7.2f}ms  {'MEETS SLO' if ok else 'too slow'}"
            )
    print(
        "\nRule of thumb from the paper: more leaders raise capacity "
        "(Eq. 3), smaller quorums cut DQ (FPaxos), and both stop helping "
        "once conflicts (c) climb."
    )


if __name__ == "__main__":
    main()
