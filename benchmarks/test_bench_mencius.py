"""Benchmark for the new-protocol demonstration (Mencius)."""

from repro.experiments.extra_mencius import run
from conftest import run_experiment


def test_extra_mencius(benchmark):
    result = run_experiment(benchmark, run)
    values = {(row[0], row[1]): row[3] for row in result.rows}
    # Unified theory: L(Mencius) = L(WPaxos) = 4/3 at N=9.
    assert abs(values[("Mencius", "Eq. 3 (N=9)")] - 4 / 3) < 0.01
    # Model and measurement agree within 15% on the new protocol.
    model = values[("Mencius", "model LAN")]
    measured = values[("Mencius", "measured LAN")]
    assert abs(model - measured) / model < 0.15
    # No single-leader bottleneck, no EPaxos penalty.
    assert measured > 2 * values[("Paxos", "measured LAN")]
    assert measured > 2 * values[("EPaxos", "measured LAN")]
    # The WAN trade-off: WPaxos's local commits beat Mencius's
    # farthest-replica pacing.
    assert values[("Mencius", "measured WAN")] > values[("WPaxos fz=0", "measured WAN")]
