"""Table 4 benchmark: the parameter/protocol matrix regenerates verbatim."""

from repro.experiments.table4_params import run
from conftest import run_experiment


def test_table4(benchmark):
    result = run_experiment(benchmark, run)
    table = {row[0]: row[1] for row in result.rows}
    assert table["L (leaders)"] == "EPaxos, WPaxos"
    assert table["c (conflicts)"] == "Generalized Paxos, EPaxos"
    assert table["Q (quorum)"] == "FPaxos, WPaxos"
    assert table["l (locality)"] == "VPaxos, WPaxos, WanKeeper"
