"""Figure 3 benchmark: local RTT distribution fits the paper's Normal."""

from repro.experiments.fig03_rtt import run
from conftest import run_experiment


def test_fig03_rtt_histogram(benchmark):
    result = run_experiment(benchmark, run)
    note = result.notes[0]
    # Fitted parameters embedded in the note: "fitted mu=... sigma=..."
    mu = float(note.split("mu=")[1].split(" ")[0])
    sigma = float(note.split("sigma=")[1].split(" ")[0])
    assert abs(mu - 0.4271) < 0.02
    assert abs(sigma - 0.0476) < 0.015
    assert sum(row[2] for row in result.rows) >= 2000  # all samples binned
