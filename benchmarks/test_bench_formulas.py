"""Formulas benchmark: Eq. 1-6 corollaries and the measured cross-check."""

import pytest

from repro.experiments.formulas import run
from conftest import run_experiment


def test_formulas(benchmark):
    result = run_experiment(benchmark, run)
    loads = {row[0]: row[1] for row in result.rows}
    assert loads["Paxos"] == pytest.approx(4.0)
    assert loads["EPaxos c=0"] == pytest.approx(4 / 3, abs=1e-3)
    assert loads["WPaxos (3x3 grid)"] == pytest.approx(4 / 3, abs=1e-3)
    # Measured WPaxos/Paxos ratio parsed from the cross-check note.
    ratio = float(result.notes[1].split("ratio=")[1].split(" ")[0])
    assert 1.3 < ratio < 2.7
