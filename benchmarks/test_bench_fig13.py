"""Figure 13 benchmark: locality workload, per-region means and CDFs."""

from repro.experiments.fig13_locality import run
from conftest import run_experiment


def test_fig13_locality(benchmark):
    result = run_experiment(benchmark, run)
    rows = {row[0]: row for row in result.rows}
    wk = rows["WanKeeper"]
    wp = rows["WPaxos fz=0"]
    vp = rows["VPaxos"]
    va, oh, ca = 1, 2, 3
    # WanKeeper: optimal in the master region (Ohio) ...
    assert wk[oh] < 2.0
    assert wk[oh] <= wp[oh] + 1.5 and wk[oh] <= vp[oh] + 1.5
    # ... at the cost of the remote regions (CA suffers most).
    assert wk[ca] > wp[ca]
    # WPaxos and VPaxos are balanced: every region ends up mostly local.
    for row in (wp, vp):
        assert row[va] < 10 and row[oh] < 10
    # Global medians: most requests are local for all three protocols.
    for row in (wk, wp, vp):
        assert row[4] < 3.0  # global p50 (ms)
