"""Figure 6 benchmark: the four workload distributions have their shapes."""

from repro.experiments.fig06_distributions import run
from conftest import run_experiment


def test_fig06_distributions(benchmark):
    result = run_experiment(benchmark, run)
    shapes = {row[0]: row[1:] for row in result.rows}
    uniform = shapes["uniform"]
    assert max(uniform) < 2.5 * min(uniform)
    zipfian = shapes["zipfian"]
    assert zipfian[0] > 0.8  # s=2 concentrates on the head
    normal = shapes["normal"]
    assert max(normal) in (normal[4], normal[5])  # peak at mu = K/2
    exponential = shapes["exponential"]
    assert exponential[0] > exponential[3] > exponential[-1]
    # Locality: the two regions overlap only partially.
    overlap = float(result.notes[0].split("overlap = ")[1].split(" ")[0])
    assert 0.0 < overlap < 0.5
