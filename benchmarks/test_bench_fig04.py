"""Figure 4 benchmark: queue models vs the Paxi/Paxos reference."""

from repro.experiments.fig04_models import run
from conftest import run_experiment


def test_fig04_model_cross_validation(benchmark):
    result = run_experiment(benchmark, run)
    # The deterministic-service models must track the implementation within
    # a fraction of a millisecond on average (paper: nearly identical).
    errors = dict(
        part.split("=") for part in result.notes[0].split(": ")[1].split(", ")
    )
    assert float(errors["M/D/1"]) < 0.5
    assert float(errors["M/G/1"]) < 0.5
    # The paper's key observation: M/D/1 and M/G/1 are nearly identical.
    assert abs(float(errors["M/D/1"]) - float(errors["M/G/1"])) < 0.1
    md1 = [y for _x, y in result.series["M/D/1"]]
    mg1 = [y for _x, y in result.series["M/G/1"]]
    assert all(abs(a - b) < 0.15 for a, b in zip(md1, mg1))
