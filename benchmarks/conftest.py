"""Shared helpers for the per-figure benchmark harness.

Each benchmark runs one experiment driver in ``fast`` mode exactly once
(the drivers are deterministic, so repeated timing rounds would only
re-measure the same work), prints the same rows the paper reports, and
asserts the figure's headline shape.
"""

from __future__ import annotations

import os

from repro.experiments.common import ExperimentResult


def run_experiment(benchmark, run_fn) -> ExperimentResult:
    result = benchmark.pedantic(run_fn, args=(True,), rounds=1, iterations=1)
    print()
    print(result.to_text())
    # pytest captures stdout, so also persist the regenerated rows where a
    # reader will find them after a `pytest benchmarks/ --benchmark-only` run.
    os.makedirs("results", exist_ok=True)
    with open(os.path.join("results", f"bench_{result.experiment}.txt"), "w") as f:
        f.write(result.to_text() + "\n")
    return result


def series_max_x(result: ExperimentResult, name: str) -> float:
    return max(x for x, _y in result.series[name])


def series_min_y(result: ExperimentResult, name: str) -> float:
    return min(y for _x, y in result.series[name])
