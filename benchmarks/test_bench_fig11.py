"""Figure 11 benchmark: per-region latency under the conflict workload."""

import math

from repro.experiments.fig11_conflict import run
from conftest import run_experiment


def _series(result, protocol, site):
    return {x: y for x, y in result.series[f"{protocol}@{site}"]}


def test_fig11_conflict(benchmark):
    result = run_experiment(benchmark, run)
    # (2) The hot object's home region (OH) keeps low, steady latency for
    # every leader-based locality protocol.
    for protocol in ("WPaxos fz=0", "WanKeeper", "VPaxos"):
        oh = _series(result, protocol, "OH")
        assert all(y < 5 for y in oh.values()), protocol
    # (1) fz=0 protocols converge to the same per-region behaviour at full
    # conflict: forward-to-Ohio latency.
    for site, rtt in (("VA", 11.0), ("CA", 52.0)):
        for protocol in ("WPaxos fz=0", "WanKeeper", "VPaxos"):
            lat = _series(result, protocol, site)[100.0]
            assert rtt * 0.7 < lat < rtt * 1.6, (protocol, site, lat)
    # (3) WPaxos fz=1 approaches Paxos at 100% conflict.
    wp1 = _series(result, "WPaxos fz=1", "VA")[100.0]
    paxos = _series(result, "Paxos", "VA")[100.0]
    assert abs(wp1 - paxos) / paxos < 0.35
    # (4) EPaxos latency grows (nonlinearly) with conflict, in each region.
    for site in ("VA", "OH", "CA"):
        ep = _series(result, "EPaxos", site)
        xs = sorted(ep)
        assert ep[xs[-1]] > ep[xs[0]], site
    # Paxos is flat: conflicts don't matter to a single serializing leader.
    pax = _series(result, "Paxos", "CA")
    values = [v for v in pax.values() if not math.isnan(v)]
    assert max(values) - min(values) < 8
