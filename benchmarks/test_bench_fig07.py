"""Figure 7 benchmark: Paxi/Paxos vs Raft converge to similar throughput."""

from repro.experiments.fig07_raft import run
from conftest import run_experiment, series_max_x


def test_fig07_paxos_vs_raft(benchmark):
    result = run_experiment(benchmark, run)
    paxos_peak = series_max_x(result, "Paxi/Paxos")
    raft_peak = series_max_x(result, "etcd/Raft (reimpl.)")
    # Both single-leader systems bottleneck near the calibrated ~8k ops/s.
    assert 6000 < paxos_peak < 10000
    assert 6000 < raft_peak < 10000
    assert abs(paxos_peak - raft_peak) / paxos_peak < 0.25
