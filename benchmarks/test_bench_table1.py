"""Table 1 benchmark: the four queue models at the calibrated service rate."""

from repro.experiments.table1_queues import run
from conftest import run_experiment


def test_table1_queue_models(benchmark):
    result = run_experiment(benchmark, run)
    assert [row[0] for row in result.rows] == ["M/M/1", "M/D/1", "M/G/1", "G/G/1"]
    # Every model's wait grows with utilization; M/D/1 <= M/M/1 pointwise.
    for name in ("M/M/1", "M/D/1", "M/G/1", "G/G/1"):
        waits = [y for _x, y in result.series[name]]
        assert waits == sorted(waits)
    for (_u1, md1), (_u2, mm1) in zip(result.series["M/D/1"], result.series["M/M/1"]):
        assert md1 <= mm1 + 1e-12
