"""Figure 12 benchmark: EPaxos capacity vs conflict, Paxos flat line."""

from repro.experiments.fig12_epaxos_conflict import run
from conftest import run_experiment


def test_fig12_epaxos_conflict(benchmark):
    result = run_experiment(benchmark, run)
    epaxos = [y for _x, y in result.series["EPaxos"]]
    paxos = [y for _x, y in result.series["Paxos"]]
    assert epaxos == sorted(epaxos, reverse=True)  # monotone degradation
    assert len(set(paxos)) == 1  # Paxos unaffected by conflicts
    degradation = 1 - epaxos[-1] / epaxos[0]
    assert 0.30 < degradation < 0.55  # paper: ~40%
    assert epaxos[-1] >= paxos[0] * 0.9  # stays at/above the Paxos line
