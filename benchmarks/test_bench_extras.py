"""Benchmarks for the extra tiers (paper section 4.2): scalability and
availability."""

from repro.experiments.extra_availability import run as run_availability
from repro.experiments.extra_scalability import run as run_scalability
from conftest import run_experiment


def test_extra_scalability(benchmark):
    result = run_experiment(benchmark, run_scalability)
    rows = {row[0]: row for row in result.rows}
    # Bigger clusters mean lower single-leader throughput (ts grows with N),
    # and the model tracks the measurement within 15%.
    assert rows[9][2] < rows[3][2]
    for n, row in rows.items():
        assert abs(row[1] - row[2]) / row[1] < 0.15


def test_extra_availability(benchmark):
    result = run_experiment(benchmark, run_availability)
    note = result.notes[0]
    paxos_floor = float(note.split("Paxos=")[1].split("%")[0])
    wpaxos_floor = float(note.split("WPaxos=")[1].split("%")[0])
    # Single leader: total outage during the election.  Multi-leader: the
    # other zones never stop (paper section 1.2).
    assert paxos_floor < 20
    assert wpaxos_floor > 50
