"""Benchmark for the follow-the-sun dynamic-locality scenario."""

from repro.experiments.extra_dynamic import run
from conftest import run_experiment


def test_extra_dynamic(benchmark):
    result = run_experiment(benchmark, run)
    rows = {(row[0], row[2]): row for row in result.rows}
    adapting, settled = 3, 4
    # Adaptive protocols settle to near-local latency after each handover;
    # in the first two phases (VA, OH) they end below 3 ms.
    for protocol in ("WPaxos fz=0", "VPaxos", "WanKeeper"):
        for region in ("VA", "OH"):
            assert rows[(protocol, region)][settled] < 3.0, (protocol, region)
        # The CA phase starts expensive (everything owned elsewhere) and
        # improves as ownership follows the sun.
        ca = rows[(protocol, "CA")]
        assert ca[settled] < ca[adapting]
    # Paxos cannot adapt: settled latency equals each region's distance to
    # the leader and never improves.
    for region, floor in (("VA", 15), ("CA", 50)):
        row = rows[("Paxos (OH leader)", region)]
        assert row[settled] > floor
        assert abs(row[settled] - row[adapting]) < 5
