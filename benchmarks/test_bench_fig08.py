"""Figure 8 benchmark: modeled LAN curves and their headline facts."""

from repro.experiments.fig08_lan_model import models, run
from conftest import run_experiment


def test_fig08_lan_model(benchmark):
    result = run_experiment(benchmark, run)
    m = models()
    paxos = m["MultiPaxos"].max_throughput()
    fpaxos = m["FPaxos |q2|=3"].max_throughput()
    wpaxos = m["WPaxos"].max_throughput()
    # Single-leader bottleneck: multi-leader WPaxos clears it sub-linearly.
    assert fpaxos == paxos
    assert 1.3 * paxos < wpaxos < 3.0 * paxos
    # FPaxos buys a tiny latency edge in the LAN (paper: ~0.03 ms).
    gap = m["MultiPaxos"].latency_ms(1000) - m["FPaxos |q2|=3"].latency_ms(1000)
    assert 0.01 < gap < 0.08
    # Latency curves are monotone in offered load.
    for name, series in result.series.items():
        ys = [y for _x, y in series]
        assert ys == sorted(ys), name
