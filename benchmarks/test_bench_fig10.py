"""Figure 10 benchmark: modeled WAN latencies and the >100 ms spread."""

from repro.experiments.fig10_wan_model import run
from conftest import run_experiment, series_min_y


def test_fig10_wan_model(benchmark):
    result = run_experiment(benchmark, run)
    paxos = series_min_y(result, "MultiPaxos (CA leader)")
    fpaxos = series_min_y(result, "FPaxos (CA leader)")
    wpaxos = series_min_y(result, "WPaxos (locality=0.7)")
    ep_low = series_min_y(result, "EPaxos (conflict=0.02)")
    ep_high = series_min_y(result, "EPaxos (conflict=0.70)")
    assert paxos - wpaxos > 100  # paper: >100 ms spread Paxos -> WPaxos
    assert fpaxos < paxos  # flexible quorums help in WANs
    assert ep_high > ep_low  # conflict band ordering
    assert wpaxos < 60  # locality commits near-locally
