"""Figure 9 benchmark: the experimental LAN ordering of the five protocols."""

from repro.experiments.fig09_lan_paxi import run
from conftest import run_experiment, series_max_x


def test_fig09_lan_ordering(benchmark):
    result = run_experiment(benchmark, run)
    peaks = {name: series_max_x(result, name) for name in result.series}
    # Paper's Figure 9 ordering: hierarchical and multi-leader protocols
    # clear the single-leader bottleneck; EPaxos trails everyone.
    assert peaks["WanKeeper"] > peaks["WPaxos"] > peaks["Paxos"]
    assert peaks["EPaxos"] < peaks["Paxos"]
    assert abs(peaks["FPaxos"] - peaks["Paxos"]) / peaks["Paxos"] < 0.15
    # Single-leader bottleneck near the 8k calibration point.
    assert 6500 < peaks["Paxos"] < 9500
    # Sub-linear multi-leader scaling (3 leaders, < 3x).
    assert 1.3 < peaks["WPaxos"] / peaks["Paxos"] < 2.7
