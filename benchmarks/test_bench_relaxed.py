"""Benchmark for the relaxed-consistency extension (paper section 7)."""

from repro.experiments.extra_relaxed import run
from conftest import run_experiment


def test_extra_relaxed(benchmark):
    result = run_experiment(benchmark, run)
    rows = {row[0]: row for row in result.rows}
    strong, relaxed, session = rows["strong"], rows["relaxed"], rows["session"]
    read, write, lin, sess, staleness = 1, 2, 3, 4, 5
    # Strong reads pay the consensus path and are linearizable.
    assert strong[lin] and strong[sess]
    assert strong[staleness] == 0.0
    # Relaxed reads are an order of magnitude faster but provably stale.
    assert relaxed[read] < strong[read] / 5
    assert not relaxed[lin]
    assert relaxed[staleness] > 0
    # Session tokens restore the session guarantees at ~local latency.
    assert session[sess] and not session[lin]
    assert session[read] < strong[read] / 5
    # Every observed staleness sits below the analytic bound.
    bound = float(result.notes[0].split("= ")[1].split(" ms")[0])
    assert relaxed[staleness] <= bound
    assert session[staleness] <= bound
