"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation toggles one mechanism and checks the direction and rough
magnitude of its effect:

- thrifty vs full-replication MultiPaxos (Eq. 3 assumes thrifty);
- the piggybacked-commit watermark (followers' execution freshness);
- EPaxos fast-quorum size (latency vs availability-of-fast-path);
- WPaxos steal policy (immediate vs three-consecutive) under interleaved
  cross-zone access;
- the EPaxos message-processing penalty (the reason the implementation
  ranks below Paxos while the light-penalty model ranks above).
"""

import pytest

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import EPaxosModel, PaxosModel
from repro.core.topology import lan
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wpaxos import WPaxos


def _run(factory, duration=0.25, concurrency=64, seed=13, spec=None, **params):
    cfg = Config.lan(3, 3, seed=seed, **params)
    deployment = Deployment(cfg).start(factory)
    bench = ClosedLoopBenchmark(
        deployment, spec if spec is not None else WorkloadSpec(keys=500), concurrency
    )
    result = bench.run(duration=duration, warmup=duration * 0.2, settle=0.05)
    return deployment, result


def test_ablation_thrifty_quorums(benchmark):
    """Thrifty P2a fan-out cuts network traffic substantially and raises
    the leader's ceiling (fewer acks to absorb)."""

    def ablation():
        dep_full, res_full = _run(MultiPaxos, thrifty=False)
        dep_thrifty, res_thrifty = _run(MultiPaxos, thrifty=True)
        per_op_full = dep_full.cluster.network.stats.messages_sent / len(dep_full.history)
        per_op_thrifty = dep_thrifty.cluster.network.stats.messages_sent / len(
            dep_thrifty.history
        )
        return per_op_full, per_op_thrifty, res_full.throughput, res_thrifty.throughput

    full_msgs, thrifty_msgs, full_thr, thrifty_thr = benchmark.pedantic(
        ablation, rounds=1, iterations=1
    )
    print(f"\nmessages/op: full={full_msgs:.1f} thrifty={thrifty_msgs:.1f}; "
          f"throughput: full={full_thr:.0f} thrifty={thrifty_thr:.0f}")
    assert thrifty_msgs < 0.7 * full_msgs
    assert thrifty_thr > 1.2 * full_thr  # leader absorbs fewer P2b acks


def test_ablation_commit_piggyback_keeps_followers_fresh(benchmark):
    """With the heartbeat/watermark broadcast disabled, follower state
    machines stall at whatever the last P2a watermark said, while the
    leader keeps executing — the piggybacked commit phase is what keeps
    replicas in sync."""

    def ablation():
        freshness = {}
        for label, interval in (("with", 0.02), ("without", None)):
            dep, _res = _run(
                MultiPaxos,
                spec=WorkloadSpec(keys=5, write_ratio=1.0),
                concurrency=4,
                heartbeat_interval=interval,
            )
            # Stop the load, give watermarks time to propagate.
            dep.run_for(0.5)
            leader_len = sum(len(dep.replicas[NodeID(1, 1)].store.history(k)) for k in range(5))
            follower_len = sum(
                len(dep.replicas[NodeID(3, 3)].store.history(k)) for k in range(5)
            )
            freshness[label] = follower_len / max(1, leader_len)
        return freshness

    freshness = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print(f"\nfollower/leader executed ratio: {freshness}")
    assert freshness["with"] > 0.99
    assert freshness["without"] < freshness["with"]


def test_ablation_epaxos_fast_quorum_size(benchmark):
    """Growing the fast quorum to all N nodes makes the fast path wait for
    the slowest replica — strictly worse latency in the model and the
    implementation's quorum accounting."""

    def ablation():
        topo = lan(9)
        default = EPaxosModel(topo, conflict=0.0)
        # A model with an all-node fast quorum: emulate by measuring the
        # quorum delay directly.
        from repro.core.protocol_models import quorum_delay_ms

        return (
            quorum_delay_ms(topo, 0, default.fast_quorum_size),
            quorum_delay_ms(topo, 0, 9),
        )

    dq_default, dq_all = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print(f"\nfast-quorum delay: ceil(3N/4)={dq_default:.3f} ms, N={dq_all:.3f} ms")
    assert dq_all > dq_default


def test_ablation_wpaxos_steal_policy(benchmark):
    """Under interleaved cross-zone access, immediate stealing thrashes
    ownership (every access migrates the object over the WAN-priced
    phase-1) while the three-consecutive policy keeps it put."""

    def ablation():
        from repro.protocols.ballot import Ballot

        counters = {}
        for label, threshold in (("immediate", 1), ("three-consecutive", 3)):
            cfg = Config.lan(3, 3, seed=17, steal_threshold=threshold)
            dep = Deployment(cfg).start(WPaxos)
            a = dep.new_client()
            b = dep.new_client()
            for i in range(30):  # strictly interleaved accesses to one key
                a.put("obj", f"a{i}", target=NodeID(1, 1))
                dep.run_for(0.02)
                b.put("obj", f"b{i}", target=NodeID(2, 1))
                dep.run_for(0.02)
            # Ownership changes == ballot counter grows with each steal.
            top = max(
                dep.replicas[NodeID(z, 1)].objects["obj"].ballot.counter for z in (1, 2, 3)
            )
            counters[label] = top
        return counters

    counters = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print(f"\nsteals (ballot counter): {counters}")
    assert counters["immediate"] > 3 * counters["three-consecutive"]


def test_ablation_epaxos_processing_penalty(benchmark):
    """The model's light 1.3x penalty keeps EPaxos above Paxos in capacity
    (the paper's model result); the implementation's heavier realistic cost
    drops it below (the paper's measured result).  Both facts must hold."""

    def ablation():
        topo = lan(9)
        model_light = EPaxosModel(topo, conflict=0.3, cpu_penalty=1.3).max_throughput()
        model_heavy = EPaxosModel(topo, conflict=0.3, cpu_penalty=4.0).max_throughput()
        paxos = PaxosModel(topo).max_throughput()
        return model_light, model_heavy, paxos

    light, heavy, paxos = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print(f"\nEPaxos capacity: penalty=1.3 -> {light:.0f}/s, penalty=4.0 -> {heavy:.0f}/s, "
          f"Paxos {paxos:.0f}/s")
    assert light > paxos > heavy * 0.7
    assert heavy < light
