"""Offline correctness checkers: linearizability, consensus, and the
relaxed-consistency guarantees (bounded staleness, session)."""

from repro.checkers.linearizability import check_history, check_history_graph, CheckResult, Anomaly
from repro.checkers.consensus import check_deployment, common_prefix_violations, ConsensusResult
from repro.checkers.staleness import (
    check_bounded_staleness,
    check_session,
    observed_staleness,
    RelaxedCheckResult,
)

__all__ = [
    "check_history",
    "check_history_graph",
    "CheckResult",
    "Anomaly",
    "check_deployment",
    "common_prefix_violations",
    "ConsensusResult",
    "check_bounded_staleness",
    "check_session",
    "observed_staleness",
    "RelaxedCheckResult",
]
