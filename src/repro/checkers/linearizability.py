"""Offline read/write linearizability checker (paper section 4.2).

The paper adopts the simple offline checker from Facebook's TAO consistency
study: per key, take all operations sorted by invocation time, maintain a
graph whose vertices are operations and whose edges are ordering
constraints, and report a violation if the graph has a cycle; additionally
report the individual *anomalous reads* — reads that returned a value no
linearizable execution could return.

Assumptions (guaranteed by the workload generator): every write value is
unique per key, and keys are independent registers.

Constraint edges per key:

- **real time**: ``a -> b`` whenever ``a`` returned before ``b`` was invoked;
- **read-from**: ``w(v) -> r`` whenever read ``r`` returned ``v`` written by
  ``w(v)`` (a read of the initial value reads from a virtual write that
  precedes everything);
- **no intervening write**: ``r -> w2`` for every write ``w2`` that
  real-time-follows the write ``r`` read from — if ``w2`` were ordered
  before ``r``, ``r`` could not have returned ``v`` any more.

A cycle then corresponds exactly to a future or stale read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.errors import CheckerError
from repro.paxi.history import Operation


@dataclass(frozen=True)
class Anomaly:
    """One anomalous read, with the reason it is not linearizable."""

    read: Operation
    kind: str  # "dirty-read" | "future-read" | "stale-read" | "lost-update"
    detail: str


@dataclass
class CheckResult:
    """Outcome of a linearizability check."""

    ok: bool
    anomalies: list[Anomaly] = field(default_factory=list)
    checked_operations: int = 0
    checked_keys: int = 0

    def __bool__(self) -> bool:
        return self.ok


def check_history(operations: Iterable[Operation]) -> CheckResult:
    """Check a full multi-key history; keys are independent registers."""
    per_key: dict[Hashable, list[Operation]] = {}
    count = 0
    for op in operations:
        per_key.setdefault(op.key, []).append(op)
        count += 1
    anomalies: list[Anomaly] = []
    for ops in per_key.values():
        ops.sort(key=lambda o: (o.invoked_at, o.returned_at))
        anomalies.extend(_check_key(ops))
    return CheckResult(
        ok=not anomalies,
        anomalies=anomalies,
        checked_operations=count,
        checked_keys=len(per_key),
    )


def _check_key(ops: list[Operation]) -> list[Anomaly]:
    """Anomalous-read detection for one key (TAO-style)."""
    writes = [op for op in ops if not op.is_read]
    write_by_value: dict[Hashable, Operation] = {}
    for w in writes:
        if w.value in write_by_value:
            raise CheckerError(
                f"duplicate write value {w.value!r}; the checker needs "
                "unique write values per key"
            )
        write_by_value[w.value] = w
    anomalies: list[Anomaly] = []
    for read in ops:
        if not read.is_read:
            continue
        anomalies.extend(_check_read(read, writes, write_by_value))
    return anomalies


def _check_read(
    read: Operation,
    writes: list[Operation],
    write_by_value: dict[Hashable, Operation],
) -> list[Anomaly]:
    value = read.output
    if value is None:
        # Reading the initial value: anomalous if any write strictly
        # preceded the read in real time.
        for w in writes:
            if w.returned_at < read.invoked_at:
                return [
                    Anomaly(
                        read,
                        "stale-read",
                        f"returned initial value although write of {w.value!r} "
                        f"completed at {w.returned_at:.6f} before the read "
                        f"began at {read.invoked_at:.6f}",
                    )
                ]
        return []
    source = write_by_value.get(value)
    if source is None:
        return [
            Anomaly(read, "dirty-read", f"returned {value!r}, which no client wrote")
        ]
    if source.invoked_at > read.returned_at:
        return [
            Anomaly(
                read,
                "future-read",
                f"returned {value!r} before its write was invoked "
                f"({source.invoked_at:.6f} > {read.returned_at:.6f})",
            )
        ]
    # Stale read: some other write strictly follows the source write and
    # strictly precedes the read.
    for w2 in writes:
        if w2 is source:
            continue
        if w2.invoked_at > source.returned_at and w2.returned_at < read.invoked_at:
            return [
                Anomaly(
                    read,
                    "stale-read",
                    f"returned {value!r} although {w2.value!r} was written "
                    f"strictly in between",
                )
            ]
    return []


# ----------------------------------------------------------------------
# Graph form (cycle detection), as described in the paper
# ----------------------------------------------------------------------


def constraint_graph(ops: list[Operation]) -> dict[int, set[int]]:
    """Build the constraint graph for one key's operations.

    Vertices are indices into ``ops``; returns an adjacency mapping.
    """
    ops = sorted(ops, key=lambda o: (o.invoked_at, o.returned_at))
    writes = [(i, op) for i, op in enumerate(ops) if not op.is_read]
    by_value = {op.value: i for i, op in writes}
    edges: dict[int, set[int]] = {i: set() for i in range(len(ops))}
    for i, a in enumerate(ops):
        for j, b in enumerate(ops):
            if i != j and a.returned_at < b.invoked_at:
                edges[i].add(j)  # real-time order
    for i, op in enumerate(ops):
        if not op.is_read:
            continue
        if op.output is None:
            # Reads-from the virtual initial write: must precede every write.
            for j, _w in writes:
                edges[i].add(j)
            continue
        source = by_value.get(op.output)
        if source is None:
            continue  # dirty read; caught by check_history
        edges[source].add(i)  # read-from
        for j, w2 in writes:
            if j != source and w2.invoked_at > ops[source].returned_at:
                edges[i].add(j)  # no intervening write
    return edges


def has_cycle(edges: dict[int, set[int]]) -> bool:
    """Iterative three-color DFS cycle detection."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in edges}
    for root in edges:
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, Iterable[int]]] = [(root, iter(edges[root]))]
        color[root] = GRAY
        while stack:
            vertex, neighbors = stack[-1]
            advanced = False
            for nxt in neighbors:
                if color[nxt] == GRAY:
                    return True
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(edges[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[vertex] = BLACK
                stack.pop()
    return False


def check_history_graph(operations: Iterable[Operation]) -> bool:
    """Graph/cycle formulation of the same check: True iff linearizable."""
    per_key: dict[Hashable, list[Operation]] = {}
    for op in operations:
        per_key.setdefault(op.key, []).append(op)
    return all(not has_cycle(constraint_graph(ops)) for ops in per_key.values())
