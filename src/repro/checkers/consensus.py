"""Consensus checker (paper section 4.2).

Client-observed linearizability can hold even when the replicated state
machines diverge, so Paxi additionally validates *consensus*: for every
data record, the per-node version histories must share a common prefix.
We collect each replica's multi-version chain per key and verify that any
two chains agree on their overlapping prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID


@dataclass(frozen=True)
class PrefixViolation:
    """Two nodes disagree on the committed history of one key."""

    key: Hashable
    node_a: NodeID
    node_b: NodeID
    position: int
    value_a: Any
    value_b: Any


@dataclass
class ConsensusResult:
    ok: bool
    violations: list[PrefixViolation] = field(default_factory=list)
    checked_keys: int = 0

    def __bool__(self) -> bool:
        return self.ok


def common_prefix_violations(
    histories: dict[NodeID, list[Any]], key: Hashable = None
) -> list[PrefixViolation]:
    """Pairwise common-prefix check over per-node value histories."""
    violations: list[PrefixViolation] = []
    nodes = sorted(histories)
    for index, node_a in enumerate(nodes):
        for node_b in nodes[index + 1 :]:
            chain_a = histories[node_a]
            chain_b = histories[node_b]
            for position in range(min(len(chain_a), len(chain_b))):
                if chain_a[position] != chain_b[position]:
                    violations.append(
                        PrefixViolation(
                            key=key,
                            node_a=node_a,
                            node_b=node_b,
                            position=position,
                            value_a=chain_a[position],
                            value_b=chain_b[position],
                        )
                    )
                    break
    return violations


def check_deployment(deployment: Deployment) -> ConsensusResult:
    """Check every key across every replica of a deployment."""
    keys: set[Hashable] = set()
    for replica in deployment.replicas.values():
        keys.update(replica.store.keys())
    violations: list[PrefixViolation] = []
    for key in keys:
        histories = {
            node_id: replica.store.history(key)
            for node_id, replica in deployment.replicas.items()
        }
        violations.extend(common_prefix_violations(histories, key))
    return ConsensusResult(ok=not violations, violations=violations, checked_keys=len(keys))
