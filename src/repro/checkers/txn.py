"""Transaction atomicity checker for the 2PC layer (``repro.shard.txn``).

Complements the per-key linearizability checker: linearizability says each
individual GET/PUT is a correct register operation, this checker says the
*grouping* held — a committed transaction's writes all became durable state
in their owning groups, an aborted transaction's writes never surfaced
anywhere, and no transaction left a lock behind.

The check reads the coordinator WALs (``cluster.txn_wal``) and inspects
replica stores directly — it is an offline whole-cluster audit, like the
consensus checker, not an online client-side property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.shard.placement import lock_key

if TYPE_CHECKING:
    from repro.shard.cluster import ShardedCluster


@dataclass(frozen=True)
class TxnViolation:
    txn_id: str
    kind: str  # "lost-write" | "leaked-write" | "leaked-lock" | "unresolved"
    detail: str


@dataclass
class TxnCheckResult:
    ok: bool
    violations: list[TxnViolation] = field(default_factory=list)
    checked: int = 0


def _visible_anywhere(cluster: "ShardedCluster", key: Hashable, value) -> bool:
    """Is ``value`` in ``key``'s committed chain on any replica of any
    group?  (After a rebalance the chain lives in the new owner, but stale
    copies in the old group are fine — hence "anywhere" for presence and
    for absence checks alike.)"""
    for group in cluster.groups:
        for replica in group.replicas.values():
            if value in replica.store.history(key):
                return True
    return False


def _lock_holder(cluster: "ShardedCluster", key: Hashable):
    """Current value of ``key``'s lock cell in its owning group (None when
    unlocked or never locked)."""
    group = cluster.group(cluster.shard_of(key))
    for replica in group.replicas.values():
        value = replica.store.read(lock_key(key))
        if value is not None:
            return value
    return None


def check_txn_atomicity(cluster: "ShardedCluster") -> TxnCheckResult:
    """Audit every transaction in the coordinator WALs.

    - **committed** (COMMIT logged): every write value must be present in
      its key's committed chain — all-or-nothing, the "all" half;
    - **aborted** (no COMMIT): no write value may appear in any chain —
      the "nothing" half (aborts happen before any data write is issued);
    - **resolved** (END logged, possibly via ``recover_txns``): the
      transaction may hold no lock;
    - a WAL entry without END is flagged ``unresolved`` — run
      ``cluster.recover_txns()`` before checking.
    """
    violations: list[TxnViolation] = []
    checked = 0
    for txn_id, records in cluster.txn_wal.items():
        if not records:
            continue  # id allocated, transaction never started
        checked += 1
        kinds = [r[0] for r in records]
        begin = records[0]
        writes: dict = begin[2]
        committed = "commit" in kinds
        if "end" not in kinds:
            violations.append(
                TxnViolation(
                    txn_id,
                    "unresolved",
                    "WAL has no END record; run cluster.recover_txns() first",
                )
            )
            continue
        for key, value in writes.items():
            visible = _visible_anywhere(cluster, key, value)
            if committed and not visible:
                violations.append(
                    TxnViolation(
                        txn_id,
                        "lost-write",
                        f"committed write {key!r}={value!r} is in no replica's chain",
                    )
                )
            if not committed and visible:
                violations.append(
                    TxnViolation(
                        txn_id,
                        "leaked-write",
                        f"aborted write {key!r}={value!r} surfaced in a chain",
                    )
                )
        for record in records:
            if record[0] != "locked":
                continue
            holder = _lock_holder(cluster, record[1])
            if holder == txn_id:
                violations.append(
                    TxnViolation(
                        txn_id,
                        "leaked-lock",
                        f"lock on {record[1]!r} still held after END",
                    )
                )
    return TxnCheckResult(ok=not violations, violations=violations, checked=checked)
