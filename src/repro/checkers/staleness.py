"""Relaxed-consistency checkers: bounded staleness and session guarantees.

The paper closes by naming its future work: "we aim to extend our
analytical model to cover replication protocols with relaxed consistency
guarantees, such as bounded-consistency and session consistency"
(section 7).  These checkers make those guarantees testable on the same
operation histories the linearizability checker consumes:

- **bounded staleness**: every read must return a value that was current
  no more than ``delta`` seconds before the read was invoked.  At
  ``delta = 0`` this is exactly the linearizability stale-read rule.
- **session guarantees** (per client): *read-your-writes* — a read must
  never return a value older than the client's own latest completed write
  to that key — and *monotonic reads* — successive reads must never go
  backwards in (provable) write order.

As with the linearizability checker, write values must be unique per key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.paxi.history import Operation


@dataclass(frozen=True)
class StalenessViolation:
    read: Operation
    overwritten_by: Operation
    staleness: float  # seconds beyond the allowed bound

    def __str__(self) -> str:
        return (
            f"read of {self.read.output!r} on {self.read.key!r} was "
            f"overwritten by {self.overwritten_by.value!r} "
            f"{self.staleness:.4f}s beyond the bound"
        )


@dataclass(frozen=True)
class SessionViolation:
    kind: str  # "read-your-writes" | "monotonic-reads"
    client: Hashable
    read: Operation
    detail: str


@dataclass
class RelaxedCheckResult:
    ok: bool
    staleness_violations: list[StalenessViolation] = field(default_factory=list)
    session_violations: list[SessionViolation] = field(default_factory=list)
    max_staleness: float = 0.0  # worst observed provable staleness (s)

    def __bool__(self) -> bool:
        return self.ok


def _group(operations: Iterable[Operation]) -> dict[Hashable, list[Operation]]:
    grouped: dict[Hashable, list[Operation]] = {}
    for op in operations:
        grouped.setdefault(op.key, []).append(op)
    for ops in grouped.values():
        ops.sort(key=lambda o: (o.invoked_at, o.returned_at))
    return grouped


def observed_staleness(read: Operation, writes: list[Operation]) -> float:
    """Provable staleness of one read, in seconds.

    If the read returned ``v`` and some other write strictly followed
    ``w(v)`` and completed at time ``t < read.invoked_at``, the value was
    provably stale for at least ``read.invoked_at - t`` seconds.  Returns
    0.0 for a read no one can prove stale.
    """
    if not read.is_read:
        raise ValueError("staleness is defined for reads")
    if read.output is None:
        overwrite_times = [w.returned_at for w in writes if w.returned_at < read.invoked_at]
        return read.invoked_at - min(overwrite_times) if overwrite_times else 0.0
    source = next((w for w in writes if w.value == read.output), None)
    if source is None:
        return 0.0  # dirty read; the linearizability checker's department
    staleness = 0.0
    for w2 in writes:
        if w2 is source:
            continue
        if w2.invoked_at > source.returned_at and w2.returned_at < read.invoked_at:
            staleness = max(staleness, read.invoked_at - w2.returned_at)
    return staleness


def check_bounded_staleness(
    operations: Iterable[Operation], delta: float
) -> RelaxedCheckResult:
    """Every read must be at most ``delta`` seconds stale."""
    if delta < 0:
        raise ValueError(f"staleness bound must be non-negative, got {delta}")
    result = RelaxedCheckResult(ok=True)
    for ops in _group(operations).values():
        writes = [op for op in ops if not op.is_read]
        for read in ops:
            if not read.is_read:
                continue
            staleness = observed_staleness(read, writes)
            result.max_staleness = max(result.max_staleness, staleness)
            if staleness > delta:
                overwriter = max(
                    (
                        w
                        for w in writes
                        if w.returned_at < read.invoked_at
                    ),
                    key=lambda w: w.returned_at,
                )
                result.staleness_violations.append(
                    StalenessViolation(read, overwriter, staleness - delta)
                )
    result.ok = not result.staleness_violations
    return result


def check_session(operations: Iterable[Operation]) -> RelaxedCheckResult:
    """Read-your-writes and monotonic reads, per client and key."""
    result = RelaxedCheckResult(ok=True)
    ops = sorted(operations, key=lambda o: (o.invoked_at, o.returned_at))
    grouped = _group(ops)
    for key, key_ops in grouped.items():
        writes = [op for op in key_ops if not op.is_read]
        write_index = {w.value: i for i, w in enumerate(writes)}
        write_op = {w.value: w for w in writes}
        per_client_last_write: dict[Hashable, Operation] = {}
        per_client_last_read_value: dict[Hashable, object] = {}
        for op in key_ops:
            client = op.client
            if not op.is_read:
                per_client_last_write[client] = op
                continue
            # Read-your-writes: the client's own completed write must be
            # visible (the read can return it, or anything that provably
            # followed it — never something that provably preceded it).
            own = per_client_last_write.get(client)
            if own is not None and own.returned_at < op.invoked_at:
                if op.output is None:
                    result.session_violations.append(
                        SessionViolation(
                            "read-your-writes",
                            client,
                            op,
                            f"returned initial value after own write {own.value!r}",
                        )
                    )
                else:
                    seen = write_op.get(op.output)
                    if (
                        seen is not None
                        and seen.returned_at < own.invoked_at
                    ):
                        result.session_violations.append(
                            SessionViolation(
                                "read-your-writes",
                                client,
                                op,
                                f"returned {op.output!r}, which precedes own "
                                f"write {own.value!r}",
                            )
                        )
            # Monotonic reads: cannot go provably backwards.
            previous = per_client_last_read_value.get(client)
            if previous is not None and op.output is not None and previous != op.output:
                prev_write = write_op.get(previous)
                this_write = write_op.get(op.output)
                if (
                    prev_write is not None
                    and this_write is not None
                    and this_write.returned_at < prev_write.invoked_at
                ):
                    result.session_violations.append(
                        SessionViolation(
                            "monotonic-reads",
                            client,
                            op,
                            f"read {op.output!r} after having read the "
                            f"strictly newer {previous!r}",
                        )
                    )
            if op.output is not None and op.output in write_index:
                per_client_last_read_value[client] = op.output
    result.ok = not result.session_violations
    return result
