"""Same-seed equivalence fingerprints: the optimization guard.

The simulator's hot paths are aggressively optimized (local bindings, heap
compaction, cached delay distributions, interned type names, fast-path
sampling — see ``docs/PERFORMANCE.md``).  None of that is allowed to change
a single simulated outcome: a fixed seed must keep producing a bit-for-bit
identical run.  This module pins that contract.

Each scenario — every protocol, in-memory and durable, with and without an
injected fault schedule — runs a short closed-loop benchmark and reduces
the full :class:`~repro.bench.benchmarker.BenchmarkResult` (completed and
failed op counts, the exact latency series, per-site splits, network
message/byte/link counters, per-node metric snapshots, event counts, and —
for traced scenarios — every request span) to a fingerprint of exact
``repr`` strings and SHA-256 digests.  The committed golden file
``tests/golden/equivalence.json`` holds the fingerprints from before the
optimizations; ``tests/test_equivalence_golden.py`` asserts every scenario
still matches.

Regenerate (only after an *intentional* semantic change, with a PR note
explaining why)::

    PYTHONPATH=src python -m repro.bench.equivalence --update
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass

from repro.bench.benchmarker import BenchmarkResult, ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.epaxos import EPaxos
from repro.protocols.fpaxos import FPaxos
from repro.protocols.mencius import Mencius
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

PROTOCOLS = {
    "paxos": MultiPaxos,
    "fpaxos": FPaxos,
    "raft": Raft,
    "epaxos": EPaxos,
    "mencius": Mencius,
    "wpaxos": WPaxos,
    "wankeeper": WanKeeper,
    "vpaxos": VPaxos,
}

SEED = 101
CONCURRENCY = 4
DURATION = 0.4
WARMUP = 0.1
SETTLE = 0.2
GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(__file__)))),
    "tests",
    "golden",
    "equivalence.json",
)


@dataclass(frozen=True)
class Scenario:
    """One cell of the equivalence matrix."""

    name: str
    protocol: str
    durable: bool
    faulty: bool

    @property
    def traced(self) -> bool:
        # Fault-free scenarios run with request tracing on so the span
        # stream is pinned too; faulty ones run the untraced fast path.
        return not self.faulty


def scenarios() -> list[Scenario]:
    out = []
    for protocol in PROTOCOLS:
        for durable in (False, True):
            for faulty in (False, True):
                name = (
                    f"{protocol}:{'durable' if durable else 'memory'}:"
                    f"{'faulty' if faulty else 'clean'}"
                )
                out.append(Scenario(name, protocol, durable, faulty))
    return out


def _config(scenario: Scenario) -> Config:
    params: dict = {"election_timeout": 0.15}
    if scenario.durable:
        params.update(durability="fsync", snapshot_interval=25, catchup_snapshot_gap=16)
    return Config.lan(3, 3, seed=SEED, **params)


def _inject_faults(deployment: Deployment, start: float) -> None:
    """A fixed, seed-independent fault schedule: one follower freeze plus
    drop/slow/flaky windows on specific links (reboot/wipe intentionally
    excluded — restart scheduling is pinned by the recovery suites)."""
    ids = deployment.config.node_ids
    deployment.crash(ids[4], duration=0.12, at=start + 0.05)
    # Wildcard dst/src so every protocol's traffic pattern hits the rules.
    deployment.drop(None, ids[5], duration=0.06, at=start + 0.08)
    deployment.slow(ids[5], None, duration=0.08, at=start + 0.15)
    deployment.flaky(None, ids[7], duration=0.08, probability=0.3, at=start + 0.24)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _span_fingerprint(tracer) -> dict:
    lines = []
    for span in tracer.finished:
        events = ";".join(
            f"{e.name}@{e.t!r}/{e.actor}"
            + (f"/{e.service!r}" if e.service is not None else "")
            for e in span.events
        )
        lines.append(
            f"{span.client}#{span.request_id}:{span.op}:{span.key}:"
            f"{span.submitted_at!r}:{int(span.failed)}:{events}"
        )
    lines.sort()
    return {
        "finished": len(tracer.finished),
        "open": len(tracer.open),
        "unmatched": tracer.unmatched_events,
        "digest": _digest("\n".join(lines)),
    }


def _result_fingerprint(result: BenchmarkResult) -> dict:
    per_site = {
        site: [len(ls), _digest(",".join(repr(x) for x in ls))]
        for site, ls in sorted(result.per_site_latencies.items())
    }
    return {
        "completed": result.completed,
        "failed": result.failed,
        "throughput": repr(result.throughput),
        "latency_mean": repr(result.latency.mean),
        "latency_p50": repr(result.latency.p50),
        "latency_p99": repr(result.latency.p99),
        "latencies": [
            len(result.latencies_ms),
            _digest(",".join(repr(x) for x in result.latencies_ms)),
        ],
        "per_site": per_site,
        "metrics_digest": _digest(
            json.dumps(result.metrics, sort_keys=True, default=str)
        ),
    }


def run_scenario(scenario: Scenario) -> dict:
    """Run one scenario and return its fingerprint dict."""
    deployment = Deployment(_config(scenario)).start(PROTOCOLS[scenario.protocol])
    if scenario.traced:
        deployment.cluster.obs.tracer.enabled = True
    spec = WorkloadSpec(keys=40, write_ratio=0.5)
    bench = ClosedLoopBenchmark(
        deployment, spec, CONCURRENCY, retry_timeout=0.3 if scenario.faulty else None
    )
    if scenario.faulty:
        _inject_faults(deployment, start=SETTLE)
    result = bench.run(duration=DURATION, warmup=WARMUP, settle=SETTLE)
    stats = deployment.cluster.network.stats
    fingerprint = _result_fingerprint(result)
    fingerprint["network"] = {
        "messages_sent": stats.messages_sent,
        "messages_dropped": stats.messages_dropped,
        "bytes_sent": stats.bytes_sent,
        "per_link": {f"{a}|{b}": n for (a, b), n in sorted(stats.per_link.items())},
    }
    fingerprint["events_fired"] = deployment.cluster.loop.events_fired
    if scenario.traced:
        fingerprint["spans"] = _span_fingerprint(deployment.cluster.obs.tracer)
    return fingerprint


def run_all() -> dict[str, dict]:
    out: dict[str, dict] = {}
    for scenario in scenarios():
        out[scenario.name] = run_scenario(scenario)
    return out


def load_golden(path: str = GOLDEN_PATH) -> dict:
    with open(path) as f:
        return json.load(f)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.equivalence",
        description="Regenerate the same-seed equivalence golden file.",
    )
    parser.add_argument(
        "--update", action="store_true", help="overwrite tests/golden/equivalence.json"
    )
    parser.add_argument("--only", default=None, help="run a single scenario by name")
    args = parser.parse_args(argv)
    if args.only:
        print(json.dumps({args.only: run_scenario(
            next(s for s in scenarios() if s.name == args.only)
        )}, indent=1, sort_keys=True))
        return 0
    fingerprints = run_all()
    if args.update:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as f:
            json.dump(fingerprints, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {len(fingerprints)} scenario fingerprints -> {GOLDEN_PATH}")
        return 0
    golden = load_golden()
    bad = [name for name, fp in fingerprints.items() if golden.get(name) != fp]
    if bad:
        print("MISMATCH: " + ", ".join(bad))
        return 1
    print(f"all {len(fingerprints)} scenarios match the golden fingerprints")
    return 0


if __name__ == "__main__":
    sys.exit(main())
