"""Saturation sweeps: latency-vs-throughput curves.

The paper's performance tier "increases the benchmark throughput (via
increasing the concurrency level of the workload generator) until the
system is saturated and throughput stops increasing or latency starts to
climb" (section 4.2).  :func:`closed_loop_sweep` implements exactly that and
returns one point per concurrency level; :func:`max_throughput` extracts the
knee of the curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bench.benchmarker import ClosedLoopBenchmark, SpecBySite
from repro.paxi.deployment import Deployment

DEFAULT_CONCURRENCIES = (1, 2, 4, 8, 16, 32, 64, 96, 128)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a latency-throughput curve."""

    concurrency: int
    throughput: float  # ops per virtual second
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    completed: int


def _sweep_point(
    make_deployment: Callable[[], Deployment],
    spec: SpecBySite,
    concurrency: int,
    duration: float,
    warmup: float,
    settle: float,
    sites: list[str] | None,
) -> SweepPoint:
    """One fresh deployment + one closed-loop run (module-level so it can
    ship to a :func:`repro.bench.parallel.run_grid` worker process)."""
    deployment = make_deployment()
    bench = ClosedLoopBenchmark(deployment, spec, concurrency, sites)
    result = bench.run(duration, warmup, settle)
    return SweepPoint(
        concurrency=concurrency,
        throughput=result.throughput,
        mean_latency_ms=result.latency.mean,
        p50_latency_ms=result.latency.p50,
        p99_latency_ms=result.latency.p99,
        completed=result.completed,
    )


def closed_loop_sweep(
    make_deployment: Callable[[], Deployment],
    spec: SpecBySite,
    concurrencies: Sequence[int] = DEFAULT_CONCURRENCIES,
    duration: float = 1.0,
    warmup: float = 0.2,
    settle: float = 0.5,
    sites: list[str] | None = None,
    workers: int = 1,
) -> list[SweepPoint]:
    """One fresh deployment + run per concurrency level.

    With ``workers > 1`` the levels run in parallel worker processes (each
    level is an independent simulation); ``make_deployment`` must then be
    picklable — use :class:`repro.bench.parallel.DeploymentFactory` rather
    than a closure.  Results are ordered by concurrency level either way,
    and each level's simulation is identical to a serial run's.
    """
    from repro.bench.parallel import run_grid

    jobs = [
        (_sweep_point, (make_deployment, spec, concurrency, duration, warmup, settle, sites))
        for concurrency in concurrencies
    ]
    return run_grid(jobs, workers=workers)


@dataclass(frozen=True)
class OpenLoopPoint:
    """One point of an offered-load-vs-goodput curve."""

    offered_rate: float  # requests injected per virtual second (nominal)
    goodput: float  # successful completions per virtual second
    mean_latency_ms: float
    p50_latency_ms: float
    p99_latency_ms: float
    completed: int
    offered: int
    rejected: int
    overloaded: int
    abandoned: int


def _open_loop_point(
    make_deployment: Callable[[], Deployment],
    spec: SpecBySite,
    rate: float,
    duration: float,
    warmup: float,
    settle: float,
    sites: list[str] | None,
    engine_kwargs: dict,
) -> OpenLoopPoint:
    """One fresh deployment + one open-loop run (module-level so it can
    ship to a :func:`repro.bench.parallel.run_grid` worker process)."""
    from repro.bench.openloop import OpenLoopEngine, PoissonArrivals

    deployment = make_deployment()
    engine = OpenLoopEngine(
        deployment, spec, PoissonArrivals(rate), sites=sites, **engine_kwargs
    )
    result = engine.run(duration, warmup, settle)
    return OpenLoopPoint(
        offered_rate=rate,
        goodput=result.goodput,
        mean_latency_ms=result.latency.mean,
        p50_latency_ms=result.latency.p50,
        p99_latency_ms=result.latency.p99,
        completed=result.completed,
        offered=result.offered,
        rejected=result.rejected,
        overloaded=result.overloaded,
        abandoned=result.abandoned,
    )


def open_loop_sweep(
    make_deployment: Callable[[], Deployment],
    spec: SpecBySite,
    rates: Sequence[float],
    duration: float = 1.0,
    warmup: float = 0.2,
    settle: float = 0.5,
    sites: list[str] | None = None,
    workers: int = 1,
    **engine_kwargs,
) -> list[OpenLoopPoint]:
    """Goodput vs offered load: one fresh deployment + Poisson run per rate.

    The open-loop counterpart of :func:`closed_loop_sweep`: rather than
    adding clients until saturation, it pushes fixed arrival rates — which
    may exceed capacity — and reports what survives.  Extra keyword
    arguments (``request_timeout``, ``retry_timeout``, ``max_attempts``,
    ``retry_budget``, ``breaker_threshold``, ...) are forwarded to
    :class:`repro.bench.openloop.OpenLoopEngine`, so the same grid can be
    run with and without client-side overload defenses.  Parallelism rules
    match :func:`closed_loop_sweep` (``make_deployment`` must be picklable
    for ``workers > 1``).
    """
    from repro.bench.parallel import run_grid

    jobs = [
        (
            _open_loop_point,
            (make_deployment, spec, rate, duration, warmup, settle, sites, engine_kwargs),
        )
        for rate in rates
    ]
    return run_grid(jobs, workers=workers)


def max_throughput(points: Sequence[SweepPoint]) -> float:
    """The highest observed throughput across the sweep."""
    return max((p.throughput for p in points), default=0.0)


def format_curve(points: Sequence[SweepPoint], label: str = "") -> str:
    """A printable table of the curve (one row per concurrency level)."""
    header = f"{'clients':>8} {'ops/s':>10} {'mean ms':>9} {'p50 ms':>8} {'p99 ms':>8}"
    if label:
        header = f"-- {label} --\n" + header
    rows = [
        f"{p.concurrency:>8} {p.throughput:>10.0f} {p.mean_latency_ms:>9.3f} "
        f"{p.p50_latency_ms:>8.3f} {p.p99_latency_ms:>8.3f}"
        for p in points
    ]
    return "\n".join([header, *rows])
