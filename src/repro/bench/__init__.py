"""Benchmark harness: workload generation and latency/throughput drivers."""
