"""Benchmark CLI, in the spirit of Paxi's benchmark runner.

Examples::

    python -m repro.bench --protocol paxos --zones 3 --nodes-per-zone 3 \\
        --clients 16 --duration 1.0
    python -m repro.bench --protocol wpaxos --wan VA OH CA --distribution normal
    python -m repro.bench --protocol epaxos --conflicts 40 --check

Workload flags follow the paper's Table 3 names (K, W, Distribution,
Conflicts, Mu/Sigma/Move/Speed, Zipfian s/v).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.epaxos import EPaxos
from repro.protocols.fpaxos import FPaxos
from repro.protocols.mencius import Mencius
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

PROTOCOLS = {
    "paxos": MultiPaxos,
    "fpaxos": FPaxos,
    "raft": Raft,
    "epaxos": EPaxos,
    "mencius": Mencius,
    "wpaxos": WPaxos,
    "wankeeper": WanKeeper,
    "vpaxos": VPaxos,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description="Run a Paxi-style benchmark."
    )
    parser.add_argument("--protocol", choices=sorted(PROTOCOLS), default="paxos")
    parser.add_argument("--zones", type=int, default=3)
    parser.add_argument("--nodes-per-zone", type=int, default=3)
    parser.add_argument("--wan", nargs="+", metavar="REGION", default=None,
                        help="deploy zones across these AWS regions instead of a LAN")
    parser.add_argument("--seed", type=int, default=0)
    # Table 3 workload parameters.
    parser.add_argument("--keys", "-K", type=int, default=1000)
    parser.add_argument("--write-ratio", "-W", type=float, default=0.5)
    parser.add_argument(
        "--distribution", choices=["uniform", "normal", "zipfian", "exponential"],
        default="uniform",
    )
    parser.add_argument("--conflicts", type=float, default=0.0,
                        help="percentage of requests aimed at the hot key")
    parser.add_argument("--mu", type=float, default=0.0)
    parser.add_argument("--sigma", type=float, default=60.0)
    parser.add_argument("--move", action="store_true")
    parser.add_argument("--speed", type=float, default=500.0, help="hotspot speed (ms/key)")
    parser.add_argument("--zipfian-s", type=float, default=2.0)
    parser.add_argument("--zipfian-v", type=float, default=1.0)
    # Batching / pipelining knobs.
    parser.add_argument("--batch-size", type=int, default=1,
                        help="max commands coalesced into one log entry (1 = off)")
    parser.add_argument("--batch-window", type=float, default=None, metavar="SECONDS",
                        help="virtual seconds the leader waits to fill a batch")
    parser.add_argument("--pipeline-depth", type=int, default=None,
                        help="max consensus instances in flight at the leader")
    # Run shape.
    parser.add_argument("--clients", type=int, default=16, help="closed-loop concurrency")
    parser.add_argument("--duration", "-T", type=float, default=1.0, help="virtual seconds")
    parser.add_argument("--warmup", type=float, default=0.2)
    parser.add_argument("--check", action="store_true",
                        help="run the linearizability + consensus checkers at the end")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the hottest functions "
                             "plus event-loop counters")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile:
        from repro.bench.profiling import maybe_profiled

        with maybe_profiled(True, label=f"bench:{args.protocol}"):
            return _execute(args)
    return _execute(args)


def _execute(args: argparse.Namespace) -> int:
    batching = dict(
        batch_size=args.batch_size,
        batch_window=args.batch_window,
        pipeline_depth=args.pipeline_depth,
    )
    if args.wan is not None:
        config = Config.wan(tuple(args.wan), args.nodes_per_zone, seed=args.seed, **batching)
    else:
        config = Config.lan(args.zones, args.nodes_per_zone, seed=args.seed, **batching)
    deployment = Deployment(config).start(PROTOCOLS[args.protocol])
    spec = WorkloadSpec(
        keys=args.keys,
        write_ratio=args.write_ratio,
        distribution=args.distribution,
        conflict_ratio=args.conflicts / 100.0 if args.conflicts > 1 else args.conflicts,
        mu=args.mu,
        sigma=args.sigma,
        move=args.move,
        speed_ms=args.speed,
        zipfian_s=args.zipfian_s,
        zipfian_v=args.zipfian_v,
    )
    bench = ClosedLoopBenchmark(deployment, spec, args.clients)
    result = bench.run(duration=args.duration, warmup=args.warmup)
    latency = result.latency
    print(f"protocol:    {args.protocol} on {config.n} nodes "
          f"({'WAN ' + '/'.join(args.wan) if args.wan else 'LAN'})")
    if config.batching_enabled:
        window = "off" if config.batch_window is None else f"{config.batch_window * 1e3:g}ms"
        depth = "unbounded" if config.pipeline_depth is None else str(config.pipeline_depth)
        print(f"batching:    B={config.batch_size} window={window} pipeline={depth}")
    print(f"throughput:  {result.throughput:.0f} ops/s ({result.completed} ops)")
    print(f"latency ms:  mean={latency.mean:.3f} p50={latency.p50:.3f} "
          f"p95={latency.p95:.3f} p99={latency.p99:.3f}")
    for site, summary in sorted(result.per_site.items()):
        print(f"  {site}: mean={summary.mean:.3f} ms ({summary.count} ops)")
    if args.check:
        deployment.run_for(0.5)
        linearizable, consensus = deployment.verify()
        print(f"linearizable: {linearizable}")
        print(f"consensus:    {consensus}")
        if not (linearizable and consensus):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
