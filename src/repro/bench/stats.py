"""Latency statistics: summaries, percentiles, CDFs, histograms."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LatencySummary:
    """Summary of a latency sample, in the sample's own unit."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    @staticmethod
    def of(samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, math.nan, math.nan, math.nan, math.nan, math.nan, math.nan)
        ordered = sorted(samples)
        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            minimum=ordered[0],
            maximum=ordered[-1],
        )


def percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not ordered:
        return math.nan
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile {q} outside [0, 1]")
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def cdf(samples: Sequence[float], points: int = 100) -> list[tuple[float, float]]:
    """An empirical CDF as (value, cumulative probability) pairs."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    step = max(1, n // points)
    curve = [(ordered[i], (i + 1) / n) for i in range(0, n, step)]
    if curve[-1][0] != ordered[-1]:
        curve.append((ordered[-1], 1.0))
    return curve


def histogram(
    samples: Sequence[float], bins: int = 20
) -> list[tuple[float, float, int]]:
    """Equal-width histogram as (bin_low, bin_high, count) triples."""
    if not samples:
        return []
    lo, hi = min(samples), max(samples)
    if hi == lo:
        return [(lo, hi, len(samples))]
    width = (hi - lo) / bins
    counts = [0] * bins
    for sample in samples:
        index = min(int((sample - lo) / width), bins - 1)
        counts[index] += 1
    return [(lo + i * width, lo + (i + 1) * width, counts[i]) for i in range(bins)]


def mean(samples: Sequence[float]) -> float:
    return sum(samples) / len(samples) if samples else math.nan


def stddev(samples: Sequence[float]) -> float:
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((s - mu) ** 2 for s in samples) / (len(samples) - 1))
