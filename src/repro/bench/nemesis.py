"""Nemesis: seeded, composable fault schedules (paper section 4.2).

The paper motivates Paxi's fault injection by how laborious tools like
Jepsen and Chaos Monkey are to drive: "testing for availability ... requires
laborious manual work to simulate all combinations of failures".  A
:class:`Nemesis` automates that combination search — it draws a random
schedule of crashes, drops, slow links, flaky links, and partitions from a
seed, applies it to a deployment, and reports the schedule so any failing
combination replays exactly.

Used by the property-based safety tests and available to users::

    nemesis = Nemesis(seed=7, horizon=2.0)
    schedule = nemesis.unleash(deployment)   # returns the applied events
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID

KINDS = ("crash", "drop", "slow", "flaky", "partition")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fully describing how to replay it."""

    kind: str
    start: float
    duration: float
    victim: NodeID | None = None  # crash
    src: NodeID | None = None  # drop / slow / flaky
    dst: NodeID | None = None
    probability: float = 0.5  # flaky
    group: tuple[NodeID, ...] = ()  # partition minority

    def __str__(self) -> str:
        target = self.victim or (f"{self.src}->{self.dst}" if self.src else self.group)
        return f"{self.kind}({target}) @{self.start:.2f}s for {self.duration:.2f}s"


@dataclass
class Nemesis:
    """Draws and applies a random fault schedule.

    Parameters
    ----------
    seed:
        Schedule seed; the same seed over the same node set produces the
        same schedule.
    horizon:
        Time window (virtual seconds) the events are scattered over.
    events:
        How many faults to draw.
    kinds:
        Fault classes to draw from; restrict e.g. to ``("drop", "flaky")``
        for protocols without crash recovery.
    spare:
        Nodes never crashed or isolated (e.g. a leader whose failover is
        out of scope, or enough nodes to preserve quorums).
    max_partition_size:
        Largest minority a partition may cut off.
    """

    seed: int = 0
    horizon: float = 1.0
    events: int = 3
    kinds: Sequence[str] = KINDS
    spare: Sequence[NodeID] = ()
    max_partition_size: int = 2
    max_duration: float = 0.4

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds {unknown!r}")

    def schedule(self, nodes: Sequence[NodeID]) -> list[FaultEvent]:
        """Draw the fault schedule for ``nodes`` without applying it."""
        rng = random.Random(self.seed)
        eligible = [n for n in nodes if n not in set(self.spare)]
        if not eligible:
            return []
        out: list[FaultEvent] = []
        for _ in range(self.events):
            kind = rng.choice(list(self.kinds))
            start = rng.uniform(0.0, self.horizon)
            duration = rng.uniform(0.05, self.max_duration)
            if kind == "crash":
                out.append(FaultEvent(kind, start, duration, victim=rng.choice(eligible)))
            elif kind == "partition":
                size = rng.randint(1, min(self.max_partition_size, len(eligible)))
                minority = tuple(rng.sample(eligible, size))
                out.append(FaultEvent(kind, start, duration, group=minority))
            else:
                src = rng.choice(list(nodes))
                dst = rng.choice([n for n in nodes if n != src])
                out.append(
                    FaultEvent(
                        kind,
                        start,
                        duration,
                        src=src,
                        dst=dst,
                        probability=rng.uniform(0.2, 0.8),
                    )
                )
        out.sort(key=lambda e: e.start)
        return out

    def unleash(self, deployment: Deployment, at: float | None = None) -> list[FaultEvent]:
        """Draw a schedule and inject it into ``deployment``.

        ``at`` offsets every event (default: the deployment's current
        time).  Returns the applied events for logging/replay.
        """
        base = deployment.now if at is None else at
        events = self.schedule(list(deployment.config.node_ids))
        for event in events:
            start = base + event.start
            if event.kind == "crash":
                deployment.crash(event.victim, event.duration, at=start)
            elif event.kind == "drop":
                deployment.drop(event.src, event.dst, event.duration, at=start)
            elif event.kind == "slow":
                deployment.slow(event.src, event.dst, event.duration, at=start)
            elif event.kind == "flaky":
                deployment.flaky(
                    event.src, event.dst, event.duration, event.probability, at=start
                )
            else:  # partition
                everyone = set(deployment.config.node_ids) | {
                    client.address for client in deployment.clients
                }
                minority = set(event.group)
                deployment.cluster.partition(
                    [minority, everyone - minority], event.duration, at=start
                )
        return events
