"""Nemesis: seeded, composable fault schedules (paper section 4.2).

The paper motivates Paxi's fault injection by how laborious tools like
Jepsen and Chaos Monkey are to drive: "testing for availability ... requires
laborious manual work to simulate all combinations of failures".  A
:class:`Nemesis` automates that combination search — it draws a random
schedule of crashes, drops, slow links, flaky links, and partitions from a
seed, applies it to a deployment, and reports the schedule so any failing
combination replays exactly.

Used by the property-based safety tests and available to users::

    nemesis = Nemesis(seed=7, horizon=2.0)
    schedule = nemesis.unleash(deployment)   # returns the applied events
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID

KINDS = ("crash", "drop", "slow", "flaky", "partition")

#: Every kind a Nemesis understands.  ``KINDS`` (the default draw) keeps
#: its historical value so seeded schedules replay unchanged; the rest are
#: opt-in: ``reboot`` power-cycles the victim (volatile state lost, disk
#: survives), ``wipe`` destroys the disk too (full state transfer on
#: rejoin), ``skew`` steps the victim's clock by ``delta`` seconds (aimed
#: at leader-lease safety margins), and ``lease_expiry_during_partition``
#: isolates one node for longer than ``lease_duration`` so any lease it
#: holds or granted expires while it is cut off — the classic stale-read
#: window for broken lease implementations.  ``rebalance`` moves a random
#: placement bucket between shards mid-run; only meaningful on a sharded
#: cluster, where :class:`repro.shard.nemesis.ShardNemesis` draws and
#: applies it (a plain single-group :meth:`Nemesis.unleash` skips it).
#: ``burst`` multiplies the arrival rate of every registered open-loop
#: workload engine (``Deployment.rate_controllers``) by a seeded
#: ``multiplier`` over its window — the load-side fault that triggers
#: retry storms and metastable collapse; it is not an outage, so it
#: composes freely with ``preserve_quorum=True``.  ``fail_slow`` degrades
#: one node (CPU service-rate multiplier plus optional NIC loss/jitter)
#: without taking it down — the gray failure that feeds every fixed
#: timeout just in time; it is not an outage either.
#: ``partial_partition`` is the asymmetric network fault: a subset of
#: peers loses the path *to* the victim while the victim's outbound
#: traffic still flows; conservatively bookkept as an outage of the
#: victim so ``preserve_quorum`` stays honest.
ALL_KINDS = KINDS + (
    "reboot",
    "wipe",
    "skew",
    "lease_expiry_during_partition",
    "rebalance",
    "burst",
    "fail_slow",
    "partial_partition",
)

#: Fault kinds that take a node fully out of service while they last.
_OUTAGE_KINDS = frozenset({"crash", "reboot", "wipe"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, fully describing how to replay it."""

    kind: str
    start: float
    duration: float
    victim: NodeID | None = None  # crash
    src: NodeID | None = None  # drop / slow / flaky
    dst: NodeID | None = None
    probability: float = 0.5  # flaky
    group: tuple[NodeID, ...] = ()  # partition minority
    delta: float = 0.0  # skew: clock step in seconds (may be negative)
    shard: int | None = None  # which consensus group a fault targets
    bucket: int | None = None  # rebalance: placement bucket to move
    to_shard: int | None = None  # rebalance: destination group
    multiplier: float = 1.0  # burst: arrival-rate scale over the window
    cpu_factor: float = 1.0  # fail_slow: service-cost multiplier
    nic_loss: float = 0.0  # fail_slow: per-packet drop probability
    nic_jitter: float = 0.0  # fail_slow: mean extra per-packet delay (s)

    def __str__(self) -> str:
        if self.kind == "fail_slow":
            return (
                f"fail_slow({self.victim}, cpu x{self.cpu_factor:.1f}, "
                f"loss {self.nic_loss:.2f}) @{self.start:.2f}s for {self.duration:.2f}s"
            )
        if self.kind == "partial_partition":
            return (
                f"partial_partition({list(self.group)} -/-> {self.victim}) "
                f"@{self.start:.2f}s for {self.duration:.2f}s"
            )
        if self.kind == "rebalance":
            return (
                f"rebalance(bucket {self.bucket} -> shard {self.to_shard}) "
                f"@{self.start:.2f}s"
            )
        if self.kind == "burst":
            return (
                f"burst(x{self.multiplier:.2f}) "
                f"@{self.start:.2f}s for {self.duration:.2f}s"
            )
        target = self.victim or (f"{self.src}->{self.dst}" if self.src else self.group)
        where = f" [shard {self.shard}]" if self.shard is not None else ""
        return f"{self.kind}({target}){where} @{self.start:.2f}s for {self.duration:.2f}s"


@dataclass
class Nemesis:
    """Draws and applies a random fault schedule.

    Parameters
    ----------
    seed:
        Schedule seed; the same seed over the same node set produces the
        same schedule.
    horizon:
        Time window (virtual seconds) the events are scattered over.
    events:
        How many faults to draw.
    kinds:
        Fault classes to draw from; restrict e.g. to ``("drop", "flaky")``
        for protocols without crash recovery.
    spare:
        Nodes never crashed or isolated (e.g. a leader whose failover is
        out of scope, or enough nodes to preserve quorums).
    max_partition_size:
        Largest minority a partition may cut off.
    preserve_quorum:
        When True (the default) the scheduler never lets more than a
        minority of nodes be simultaneously down (crashed, rebooting,
        wiped) or isolated by a partition, so a live majority always
        exists and progress remains possible.  Set to False to probe
        availability loss deliberately.
    """

    seed: int = 0
    horizon: float = 1.0
    events: int = 3
    kinds: Sequence[str] = KINDS
    spare: Sequence[NodeID] = ()
    max_partition_size: int = 2
    max_duration: float = 0.4
    preserve_quorum: bool = True
    #: Lease window assumed by ``lease_expiry_during_partition`` draws:
    #: the victim's isolation lasts 1.5-2.5x this, guaranteeing expiry
    #: mid-partition.  Match it to the deployment's ``lease_duration``.
    lease_duration: float = 0.5
    #: Largest clock step (seconds, either sign) a ``skew`` draw applies.
    #: Set it above the deployment's ``max_clock_skew`` to probe outside
    #: the lease safety envelope.
    skew_magnitude: float = 0.05
    #: ``burst`` draws multiply the open-loop arrival rate by a uniform
    #: value in [burst_min, burst_max] over the event window.
    burst_min: float = 1.5
    burst_max: float = 4.0
    #: ``fail_slow`` draws degrade the victim's CPU by a uniform factor in
    #: [fail_slow_min, fail_slow_max] and drop its packets with a uniform
    #: probability in [0, fail_slow_loss].
    fail_slow_min: float = 3.0
    fail_slow_max: float = 10.0
    fail_slow_loss: float = 0.15

    def __post_init__(self) -> None:
        unknown = set(self.kinds) - set(ALL_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kinds {sorted(unknown)!r}; "
                f"valid kinds are {list(ALL_KINDS)}"
            )

    def schedule(self, nodes: Sequence[NodeID]) -> list[FaultEvent]:
        """Draw the fault schedule for ``nodes`` without applying it."""
        rng = random.Random(self.seed)
        eligible = [n for n in nodes if n not in set(self.spare)]
        if not eligible:
            return []
        max_down = (len(nodes) - 1) // 2  # largest minority: a majority stays up
        outages: list[tuple[float, float, frozenset[NodeID]]] = []

        def breaks_quorum(start: float, end: float, victims: set[NodeID]) -> bool:
            """Would downing ``victims`` over [start, end) ever leave fewer
            than a majority of nodes up?  Checked at every instant the
            down-set changes inside the window (its composition only shifts
            at outage starts), so overlapping-but-disjoint-in-time faults
            are not double counted."""
            points = [start] + [s for s, e, _ in outages if start < s < end]
            for t in points:
                down = set(victims)
                for s, e, vs in outages:
                    if s <= t < e:
                        down |= vs
                if len(down) > max_down:
                    return True
            return False

        out: list[FaultEvent] = []
        for _ in range(self.events):
            kind = rng.choice(list(self.kinds))
            start = rng.uniform(0.0, self.horizon)
            duration = rng.uniform(0.05, self.max_duration)
            if kind in _OUTAGE_KINDS:
                victim = rng.choice(eligible)
                if self.preserve_quorum and breaks_quorum(
                    start, start + duration, {victim}
                ):
                    continue  # would take a majority out: drop this draw
                outages.append((start, start + duration, frozenset({victim})))
                out.append(FaultEvent(kind, start, duration, victim=victim))
            elif kind == "partition":
                size = rng.randint(1, min(self.max_partition_size, len(eligible)))
                minority = tuple(rng.sample(eligible, size))
                if self.preserve_quorum and breaks_quorum(
                    start, start + duration, set(minority)
                ):
                    continue
                outages.append((start, start + duration, frozenset(minority)))
                out.append(FaultEvent(kind, start, duration, group=minority))
            elif kind == "rebalance":
                # Needs placement knowledge a plain node-set schedule does
                # not have; ShardNemesis draws these itself.
                continue
            elif kind == "burst":
                # A load surge is not an outage: no node goes down, so it
                # never interacts with the quorum-preservation bookkeeping.
                multiplier = rng.uniform(self.burst_min, self.burst_max)
                out.append(FaultEvent(kind, start, duration, multiplier=multiplier))
            elif kind == "skew":
                # A clock step is not an outage: the node keeps serving,
                # only its lease arithmetic is (possibly) compromised.
                victim = rng.choice(eligible)
                delta = rng.uniform(-self.skew_magnitude, self.skew_magnitude)
                out.append(FaultEvent(kind, start, 0.0, victim=victim, delta=delta))
            elif kind == "fail_slow":
                # A gray failure is not an outage: the victim keeps serving
                # (and heartbeating), just slowly, so quorum bookkeeping
                # never sees it — which is precisely what makes it nasty.
                victim = rng.choice(eligible)
                cpu_factor = rng.uniform(self.fail_slow_min, self.fail_slow_max)
                nic_loss = rng.uniform(0.0, self.fail_slow_loss)
                out.append(
                    FaultEvent(
                        kind,
                        start,
                        duration,
                        victim=victim,
                        cpu_factor=cpu_factor,
                        nic_loss=nic_loss,
                    )
                )
            elif kind == "partial_partition":
                victim = rng.choice(eligible)
                others = [n for n in nodes if n != victim]
                size = rng.randint(1, min(self.max_partition_size, len(others)))
                sources = tuple(rng.sample(others, size))
                # One-way cut, but bookkept as an outage of the victim: if
                # the unreachable subset mattered for quorum the victim is
                # effectively down, so stay conservative.
                if self.preserve_quorum and breaks_quorum(
                    start, start + duration, {victim}
                ):
                    continue
                outages.append((start, start + duration, frozenset({victim})))
                out.append(
                    FaultEvent(kind, start, duration, victim=victim, group=sources)
                )
            elif kind == "lease_expiry_during_partition":
                victim = rng.choice(eligible)
                duration = self.lease_duration * rng.uniform(1.5, 2.5)
                if self.preserve_quorum and breaks_quorum(
                    start, start + duration, {victim}
                ):
                    continue
                outages.append((start, start + duration, frozenset({victim})))
                out.append(
                    FaultEvent(kind, start, duration, victim=victim, group=(victim,))
                )
            else:
                src = rng.choice(list(nodes))
                dst = rng.choice([n for n in nodes if n != src])
                out.append(
                    FaultEvent(
                        kind,
                        start,
                        duration,
                        src=src,
                        dst=dst,
                        probability=rng.uniform(0.2, 0.8),
                    )
                )
        out.sort(key=lambda e: e.start)
        return out

    def unleash(self, deployment: Deployment, at: float | None = None) -> list[FaultEvent]:
        """Draw a schedule and inject it into ``deployment``.

        ``at`` offsets every event (default: the deployment's current
        time).  Returns the applied events for logging/replay.
        """
        base = deployment.now if at is None else at
        events = self.schedule(list(deployment.config.node_ids))
        for event in events:
            start = base + event.start
            if event.kind == "crash":
                deployment.crash(event.victim, event.duration, at=start)
            elif event.kind == "reboot":
                deployment.reboot(event.victim, event.duration, at=start)
            elif event.kind == "wipe":
                deployment.wipe(event.victim, event.duration, at=start)
            elif event.kind == "drop":
                deployment.drop(event.src, event.dst, event.duration, at=start)
            elif event.kind == "slow":
                deployment.slow(event.src, event.dst, event.duration, at=start)
            elif event.kind == "flaky":
                deployment.flaky(
                    event.src, event.dst, event.duration, event.probability, at=start
                )
            elif event.kind == "skew":
                deployment.skew(event.victim, event.delta, at=start)
            elif event.kind == "fail_slow":
                deployment.fail_slow(
                    event.victim,
                    event.duration,
                    cpu_factor=event.cpu_factor,
                    nic_loss=event.nic_loss,
                    nic_jitter=event.nic_jitter,
                    at=start,
                )
            elif event.kind == "partial_partition":
                deployment.partial_partition(
                    event.victim, event.group, event.duration, at=start
                )
            elif event.kind == "rebalance":
                continue  # sharded-cluster fault; see repro.shard.nemesis
            elif event.kind == "burst":
                # Applied to whatever open-loop engines registered with the
                # deployment; a closed-loop run has none and skips it.
                for controller in deployment.rate_controllers:
                    controller.apply_burst(start, event.duration, event.multiplier)
            else:  # partition / lease_expiry_during_partition
                everyone = set(deployment.config.node_ids) | {
                    client.address for client in deployment.clients
                }
                minority = set(event.group)
                deployment.cluster.partition(
                    [minority, everyone - minority], event.duration, at=start
                )
        return events
