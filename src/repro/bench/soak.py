"""Seeded chaos soak, shardable across worker processes.

The CI chaos job (and ``tests/test_recovery_safety.py``'s
``TestRecoveryChaos``) soaks the recovery-capable protocols under seeded
:class:`~repro.bench.nemesis.Nemesis` schedules drawn from the full fault
matrix.  Each (protocol, seed) cell is one independent simulation, so the
matrix shards cleanly over :func:`repro.bench.parallel.run_grid`::

    PYTHONPATH=src python -m repro.bench.soak --seeds 7,19,101 --jobs 4

Any failing cell replays exactly: ``Nemesis(seed=S)`` over
``Config.lan(3, 3, seed=S)`` reproduces the schedule bit-for-bit.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.nemesis import Nemesis
from repro.bench.parallel import run_grid
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

PROTOCOLS = {"paxos": MultiPaxos, "fpaxos": FPaxos, "raft": Raft}
#: The full fault matrix, gray failures included: ``fail_slow`` degrades a
#: node (CPU/disk/NIC) without killing it and ``partial_partition`` cuts
#: an asymmetric subset of links — the faults the φ-accrual detector and
#: planned handoff exist for.
KINDS = (
    "crash",
    "reboot",
    "wipe",
    "drop",
    "slow",
    "flaky",
    "partition",
    "fail_slow",
    "partial_partition",
)
DEFAULT_SEEDS = (7, 19, 101)


def _durable_lan(seed: int) -> Config:
    # detector=True: failover runs on the φ-accrual detector with the
    # adaptive election timeout, and planned handoff is armed — so the
    # soak exercises the gray-failure reaction path, not just elections.
    return Config.lan(
        3,
        3,
        seed=seed,
        durability="fsync",
        snapshot_interval=25,
        detector=True,
        catchup_snapshot_gap=16,
    )


def soak_cell(name: str, seed: int) -> dict:
    """Run one (protocol, seed) chaos cell; return a picklable verdict.

    Mirrors ``TestRecoveryChaos.test_survives_full_fault_matrix``: a seeded
    Nemesis schedule over a durable 9-node LAN, closed-loop load, then the
    linearizability + consensus checkers.
    """
    from repro.checkers.consensus import check_deployment
    from repro.checkers.linearizability import check_history

    deployment = Deployment(_durable_lan(seed)).start(PROTOCOLS[name])
    nemesis = Nemesis(
        seed=seed, horizon=1.2, events=6, kinds=KINDS, max_partition_size=3
    )
    events = nemesis.unleash(deployment, at=0.1)
    bench = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=15), concurrency=4, retry_timeout=0.4
    )
    result = bench.run(duration=1.8, warmup=0.0, settle=0.05)
    deployment.run_for(3.0)
    linearizable = check_history(deployment.history.snapshot()).ok
    consensus_ok = check_deployment(deployment).ok
    return {
        "protocol": name,
        "seed": seed,
        "events": [str(e) for e in events],
        "completed": result.completed,
        "failed": result.failed,
        "linearizable": linearizable,
        "consensus_ok": consensus_ok,
        "ok": bool(linearizable and consensus_ok and events),
    }


def run_soak(
    seeds, protocols=None, jobs: int = 1
) -> list[dict]:
    """The full (protocol x seed) matrix through :func:`run_grid`."""
    names = sorted(protocols or PROTOCOLS)
    grid = [(name, seed) for name in names for seed in seeds]
    return run_grid([(soak_cell, cell) for cell in grid], workers=jobs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.soak",
        description="Shardable seeded chaos soak over the recovery protocols.",
    )
    parser.add_argument(
        "--seeds",
        default=os.environ.get("CHAOS_SEEDS", ",".join(map(str, DEFAULT_SEEDS))),
        help="comma-separated Nemesis seeds (default: $CHAOS_SEEDS or 7,19,101)",
    )
    parser.add_argument(
        "--protocols", default=None, help="comma-separated subset of " + ",".join(sorted(PROTOCOLS))
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    protocols = args.protocols.split(",") if args.protocols else None
    verdicts = run_soak(seeds, protocols, jobs=args.jobs)
    bad = [v for v in verdicts if not v["ok"]]
    for v in verdicts:
        status = "ok" if v["ok"] else "FAIL"
        print(
            f"{status:4} {v['protocol']:>7} seed={v['seed']:<5} "
            f"completed={v['completed']} lin={v['linearizable']} cons={v['consensus_ok']}"
        )
    if bad:
        print(f"{len(bad)}/{len(verdicts)} cells failed")
        return 1
    print(f"all {len(verdicts)} chaos cells passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
