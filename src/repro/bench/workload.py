"""Workload generation (paper Table 3 and Figure 6).

The Paxi benchmarker generates tunable workloads over a pool of ``K`` keys:

- key popularity follows a **uniform**, **normal**, **zipfian**, or
  **exponential** distribution (Figure 6);
- ``write_ratio`` splits reads from writes;
- a **conflict** knob sends a fraction of requests to one designated hot
  key that every region shares (the paper's WAN conflict experiments,
  section 5.3);
- **locality** is produced by giving each region its own mean ``mu`` for the
  normal distribution, optionally drifting over time (``move``/``speed``),
  so regions mostly touch their own keys with overlapping tails.

Write values are unique per generator so that history checkers can
distinguish every write.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError
from repro.paxi.message import Command

DISTRIBUTIONS = ("uniform", "normal", "zipfian", "exponential")


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one workload, mirroring the paper's Table 3."""

    keys: int = 1000  # K: total number of keys
    write_ratio: float = 0.5  # W
    distribution: str = "uniform"
    min_key: int = 0  # Random: minimum key number
    conflict_ratio: float = 0.0  # fraction of requests aimed at the hot key
    conflict_key: int | None = None  # defaults to min_key
    mu: float = 0.0  # Normal: mean
    sigma: float = 60.0  # Normal: standard deviation
    move: bool = False  # Normal: moving average
    speed_ms: float = 500.0  # Normal: moving speed in milliseconds
    zipfian_s: float = 2.0
    zipfian_v: float = 1.0
    exponential_scale: float | None = None  # defaults to keys / 10
    #: Read path for generated GETs: None (leader round), "lease",
    #: "quorum", or "local" — see ``docs/READS.md``.
    read_mode: str | None = None

    def __post_init__(self) -> None:
        if self.keys < 1:
            raise WorkloadError(f"need at least one key, got {self.keys}")
        if self.read_mode not in Command.READ_MODES:
            raise WorkloadError(
                f"unknown read_mode {self.read_mode!r}; "
                f"expected one of {Command.READ_MODES}"
            )
        if not 0.0 <= self.write_ratio <= 1.0:
            raise WorkloadError(f"write_ratio {self.write_ratio} outside [0, 1]")
        if self.distribution not in DISTRIBUTIONS:
            raise WorkloadError(
                f"unknown distribution {self.distribution!r}; "
                f"expected one of {DISTRIBUTIONS}"
            )
        if not 0.0 <= self.conflict_ratio <= 1.0:
            raise WorkloadError(
                f"conflict_ratio {self.conflict_ratio} outside [0, 1]"
            )

    def with_locality(self, mu: float) -> "WorkloadSpec":
        """A copy whose normal distribution is centered at ``mu`` — the
        paper's per-region locality control."""
        return replace(self, distribution="normal", mu=mu)


@dataclass
class WorkloadGenerator:
    """Draws commands for one client/region from a :class:`WorkloadSpec`."""

    spec: WorkloadSpec
    rng: random.Random
    name: str = "wl"
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)
    _zipf_cdf: list[float] | None = field(default=None, repr=False)

    def next_command(self, now: float = 0.0) -> Command:
        """Generate the next command; ``now`` (seconds) drives the moving
        hotspot when ``spec.move`` is set."""
        key = self._next_key(now)
        if self.rng.random() < self.spec.write_ratio:
            value = f"{self.name}#{next(self._counter)}"
            return Command.put(key, value)
        return Command.get(key, read_mode=self.spec.read_mode)

    # ------------------------------------------------------------------
    # Key selection
    # ------------------------------------------------------------------

    def _next_key(self, now: float) -> int:
        spec = self.spec
        if spec.conflict_ratio > 0.0 and self.rng.random() < spec.conflict_ratio:
            hot = spec.conflict_key if spec.conflict_key is not None else spec.min_key
            return hot
        if spec.distribution == "uniform":
            return spec.min_key + self.rng.randrange(spec.keys)
        if spec.distribution == "normal":
            return self._normal_key(now)
        if spec.distribution == "zipfian":
            return self._zipfian_key()
        return self._exponential_key()

    def _normal_key(self, now: float) -> int:
        spec = self.spec
        mu = spec.mu
        if spec.move:
            # The hotspot mean drifts one key every `speed_ms` milliseconds,
            # wrapping around the key space (paper Table 3: Move/Speed).
            mu = (mu + (now * 1e3) / spec.speed_ms) % spec.keys
        offset = int(round(self.rng.gauss(mu, spec.sigma)))
        return spec.min_key + offset % spec.keys

    def _zipfian_key(self) -> int:
        spec = self.spec
        if self._zipf_cdf is None:
            weights = [
                1.0 / math.pow(rank + spec.zipfian_v, spec.zipfian_s)
                for rank in range(spec.keys)
            ]
            total = sum(weights)
            cumulative = 0.0
            cdf: list[float] = []
            for w in weights:
                cumulative += w / total
                cdf.append(cumulative)
            self._zipf_cdf = cdf
        index = bisect.bisect_left(self._zipf_cdf, self.rng.random())
        return self.spec.min_key + min(index, self.spec.keys - 1)

    def _exponential_key(self) -> int:
        spec = self.spec
        scale = spec.exponential_scale if spec.exponential_scale is not None else spec.keys / 10.0
        offset = int(self.rng.expovariate(1.0 / scale))
        return spec.min_key + min(offset, spec.keys - 1)
