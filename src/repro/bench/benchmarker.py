"""Benchmark drivers (paper section 4.2, "Benchmarker").

Two load modes:

- :class:`ClosedLoopBenchmark` — ``concurrency`` clients each keep exactly
  one request outstanding; raising concurrency pushes the system toward
  saturation.  This is how the paper finds maximum throughput ("increasing
  the concurrency level of the workload generator until the system is
  saturated").
- :class:`OpenLoopBenchmark` — Poisson arrivals at a fixed rate,
  independent of completions; this matches the analytic model's arrival
  assumption and is used for the model cross-validation (Figure 4).

Latencies are recorded in milliseconds of virtual time; throughput is
completed operations per virtual second within the measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.bench.stats import LatencySummary
from repro.bench.workload import WorkloadGenerator, WorkloadSpec
from repro.errors import WorkloadError
from repro.obs import WindowObservation
from repro.paxi.client import Client
from repro.paxi.deployment import Deployment

SpecBySite = WorkloadSpec | Mapping[str, WorkloadSpec]


def _arm_observation(deployment: Deployment, warmup_end: float, end: float) -> WindowObservation:
    """Window-scope the cluster's metrics: baseline busy-time at warmup end,
    periodic queue sampling only when tracing is on (it costs events)."""
    obs = deployment.cluster.obs
    samples = 64 if obs.tracer.enabled else 0
    return WindowObservation(
        obs.metrics, deployment.cluster.loop, warmup_end, end, samples=samples
    )


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark run."""

    throughput: float  # completed ops / virtual second (measurement window)
    latency: LatencySummary  # milliseconds
    latencies_ms: list[float] = field(repr=False, default_factory=list)
    per_site: dict[str, LatencySummary] = field(default_factory=dict)
    per_site_latencies: dict[str, list[float]] = field(repr=False, default_factory=dict)
    completed: int = 0
    failed: int = 0
    window: float = 0.0
    # Per-node observability snapshot for the measurement window: message
    # counters by type, bytes, utilization rho, mean queue depth (see
    # repro.obs.metrics).  Populated by the benchmark drivers.
    metrics: dict | None = field(repr=False, default=None)


def _spec_for_site(spec: SpecBySite, site: str) -> WorkloadSpec:
    if isinstance(spec, WorkloadSpec):
        return spec
    try:
        return spec[site]
    except KeyError:
        raise WorkloadError(f"no workload spec for site {site!r}") from None


class _RunState:
    """Shared bookkeeping for one benchmark run."""

    def __init__(self) -> None:
        self.records: list[tuple[float, float, str]] = []  # (done_at, latency_s, site)
        self.end_time = float("inf")

    def result(self, warmup_end: float, end: float, failed: int) -> BenchmarkResult:
        in_window = [
            (latency, site)
            for done_at, latency, site in self.records
            if warmup_end <= done_at <= end
        ]
        latencies_ms = [latency * 1e3 for latency, _site in in_window]
        per_site_lat: dict[str, list[float]] = {}
        for latency, site in in_window:
            per_site_lat.setdefault(site, []).append(latency * 1e3)
        window = max(end - warmup_end, 1e-12)
        return BenchmarkResult(
            throughput=len(in_window) / window,
            latency=LatencySummary.of(latencies_ms),
            latencies_ms=latencies_ms,
            per_site={site: LatencySummary.of(ls) for site, ls in per_site_lat.items()},
            per_site_latencies=per_site_lat,
            completed=len(in_window),
            failed=failed,
            window=window,
        )


class ClosedLoopBenchmark:
    """Fixed number of clients, one outstanding request each."""

    def __init__(
        self,
        deployment: Deployment,
        spec: SpecBySite,
        concurrency: int = 1,
        sites: list[str] | None = None,
        retry_timeout: float | None = None,
    ) -> None:
        if concurrency < 1:
            raise WorkloadError(f"concurrency must be >= 1, got {concurrency}")
        self.deployment = deployment
        self._state = _RunState()
        self._drivers: list[tuple[Client, WorkloadGenerator]] = []
        chosen_sites = sites if sites is not None else list(deployment.config.topology.sites)
        streams = deployment.cluster.streams
        for index in range(concurrency):
            site = chosen_sites[index % len(chosen_sites)]
            client = deployment.new_client(site=site)
            client.retry_timeout = retry_timeout
            generator = WorkloadGenerator(
                _spec_for_site(spec, site),
                streams.stream(f"workload-{index}"),
                name=f"c{index}",
            )
            self._drivers.append((client, generator))

    def run(self, duration: float = 1.0, warmup: float = 0.2, settle: float = 0.5) -> BenchmarkResult:
        """Run the workload and return windowed results.

        ``settle`` runs the cluster idle first so leader election /
        phase-1 completes before any load arrives.
        """
        deployment = self.deployment
        deployment.run_for(settle)
        start = deployment.now
        warmup_end = start + warmup
        end = start + warmup + duration
        self._state.end_time = end
        observation = _arm_observation(deployment, warmup_end, end)
        for client, generator in self._drivers:
            self._issue(client, generator)
        deployment.run_until(end)
        failed = sum(client.failed for client, _gen in self._drivers)
        result = self._state.result(warmup_end, end, failed)
        result.metrics = observation.snapshot()
        return result

    def _issue(self, client: Client, generator: WorkloadGenerator) -> None:
        command = generator.next_command(self.deployment.now)

        def done(_reply, latency: float) -> None:
            now = self.deployment.now
            self._state.records.append((now, latency, client.site))
            if now < self._state.end_time:
                self._issue(client, generator)

        client.invoke(command, on_done=done)


class OpenLoopBenchmark:
    """Poisson arrivals at ``rate`` requests per virtual second.

    A thin facade over :class:`repro.bench.openloop.OpenLoopEngine` with
    the engine's defaults (memoryless arrivals, no patience timeout, no
    retries) — kept because "Poisson at rate R" is the shape the model
    cross-validation (Figure 4) and most call sites want.  The richer
    arrival processes, robustness knobs, and goodput accounting live on
    the engine itself.
    """

    def __init__(
        self,
        deployment: Deployment,
        spec: SpecBySite,
        rate: float,
        sites: list[str] | None = None,
    ) -> None:
        from repro.bench.openloop import OpenLoopEngine, PoissonArrivals

        self.deployment = deployment
        self.rate = rate
        self._engine = OpenLoopEngine(
            deployment, spec, PoissonArrivals(rate), sites=sites
        )

    def run(self, duration: float = 1.0, warmup: float = 0.2, settle: float = 0.5) -> BenchmarkResult:
        return self._engine.run(duration, warmup, settle)


def run_closed_loop(
    make_deployment: Callable[[], Deployment],
    spec: SpecBySite,
    concurrency: int,
    duration: float = 1.0,
    warmup: float = 0.2,
    settle: float = 0.5,
    sites: list[str] | None = None,
) -> BenchmarkResult:
    """Convenience wrapper: fresh deployment, one closed-loop run."""
    deployment = make_deployment()
    bench = ClosedLoopBenchmark(deployment, spec, concurrency, sites)
    return bench.run(duration, warmup, settle)
