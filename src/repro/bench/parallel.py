"""Parallel experiment sweeps over worker processes.

Simulations on virtual time are embarrassingly parallel across *runs*: each
benchmark point builds its own deployment, seeds its own RNG streams, and
never shares state with its neighbors.  :func:`run_grid` exploits that — it
takes a list of (picklable) jobs and fans them out over a
``ProcessPoolExecutor``, returning results **in job order** regardless of
completion order, so a parallel sweep is byte-identical to a serial one.

Determinism contract:

- every job must be self-contained: a module-level callable plus picklable
  arguments, constructing its own deployment from an explicit seed;
- results are collected by job index, never by completion order;
- ``workers=1`` (the default everywhere) bypasses the pool entirely and
  runs jobs inline — exactly the pre-parallelism behavior, with no
  subprocess or pickling overhead.

:class:`DeploymentFactory` is the picklable stand-in for the ad-hoc
``lambda: Deployment(config).start(protocol)`` closures the experiments
used to build (closures don't pickle; a frozen dataclass of a protocol
class and a config does).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import SimulationError
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment

# A unit of work: (module-level callable, positional args).
Job = tuple[Callable[..., Any], tuple]


@dataclass(frozen=True)
class DeploymentFactory:
    """Picklable ``make_deployment`` callable: protocol class + config.

    Protocol classes double as replica factories (``Replica.__init__`` has
    the ``(deployment, node_id)`` factory signature), and :class:`Config`
    is a plain dataclass, so this pickles cleanly into worker processes.
    """

    protocol: type
    config: Config

    def __call__(self) -> Deployment:
        return Deployment(self.config).start(self.protocol)


def _run_job(job: Job) -> Any:
    fn, args = job
    return fn(*args)


def run_grid(jobs: Sequence[Job], workers: int = 1) -> list[Any]:
    """Run every job; return their results ordered by job index.

    ``workers=1`` executes inline (serial, zero overhead).  ``workers > 1``
    distributes over that many processes; each worker imports the job's
    function fresh, so only module-level callables and picklable arguments
    are accepted.  Job order — not completion order — determines result
    order, which is what keeps parallel output byte-identical to serial.
    """
    if workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    jobs = list(jobs)
    if workers == 1 or len(jobs) <= 1:
        return [fn(*args) for fn, args in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        futures = [pool.submit(_run_job, job) for job in jobs]
        return [f.result() for f in futures]
