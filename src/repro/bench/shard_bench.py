"""Benchmark driver for sharded clusters.

:class:`~repro.bench.benchmarker.ClosedLoopBenchmark` already runs against
a :class:`~repro.shard.cluster.ShardedCluster` unchanged — the cluster
hands out routing clients and quacks like a deployment.  This module adds
the two pieces sharding benchmarks need on top:

- :class:`ShardedClosedLoopBenchmark` — mixes cross-shard transactions
  into the closed loop (``txn_ratio`` of the issues run a ``txn_keys``-key
  2PC write instead of a single command), so the coordination tax of
  :class:`repro.core.sharding.ShardedCapacityModel` is measurable;
- :class:`ShardedDeploymentFactory` + :func:`sharded_closed_loop_sweep` —
  the picklable factory/sweep pair that lets sharded saturation sweeps fan
  out over worker processes exactly like the single-group ones.

A completed ``k``-key transaction contributes ``k`` records to the latency/
throughput bookkeeping (each carrying the whole transaction's latency):
throughput stays "logical operations per second", directly comparable
between the mixed and pure workloads and to the analytic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bench.benchmarker import ClosedLoopBenchmark, SpecBySite
from repro.bench.sweep import SweepPoint
from repro.bench.workload import WorkloadGenerator
from repro.errors import WorkloadError
from repro.paxi.client import Client
from repro.paxi.config import Config
from repro.shard.cluster import ShardedCluster
from repro.shard.placement import ShardSpec
from repro.shard.txn import ShardedTxnRuntime, TxnResult


class ShardedClosedLoopBenchmark(ClosedLoopBenchmark):
    """Closed-loop load over a sharded cluster with a 2PC transaction mix.

    Each driver keeps one *logical operation* outstanding; with probability
    ``txn_ratio`` that operation is a cross-shard transaction writing
    ``txn_keys`` distinct keys through the two-phase commit layer, otherwise
    it is an ordinary single-key command.  Aborted transactions (lock
    conflicts) are counted in :attr:`txns_aborted` and re-issued like any
    failed closed-loop op.
    """

    def __init__(
        self,
        cluster: ShardedCluster,
        spec: SpecBySite,
        concurrency: int = 1,
        sites: list[str] | None = None,
        retry_timeout: float | None = None,
        txn_ratio: float = 0.0,
        txn_keys: int = 2,
    ) -> None:
        if not 0.0 <= txn_ratio <= 1.0:
            raise WorkloadError(f"txn_ratio must be in [0, 1], got {txn_ratio}")
        if txn_keys < 2:
            raise WorkloadError(f"txn_keys must be >= 2, got {txn_keys}")
        super().__init__(cluster, spec, concurrency, sites, retry_timeout)
        self.cluster = cluster
        self.txn_ratio = txn_ratio
        self.txn_keys = txn_keys
        self.txns_committed = 0
        self.txns_aborted = 0
        self.singles_completed = 0
        self._txn_rng = cluster.cluster.streams.stream("shard-bench-txn-mix")
        # One runtime per driver, sharing the driver's routing client.
        self._runtimes: dict[int, ShardedTxnRuntime] = {
            id(client): ShardedTxnRuntime(cluster, client=client)
            for client, _gen in self._drivers
        }

    def cross_shard_fraction(self) -> float:
        """Measured ``f``: fraction of completed logical ops that ran
        inside a committed cross-shard transaction."""
        txn_ops = self.txns_committed * self.txn_keys
        total = txn_ops + self.singles_completed
        return txn_ops / total if total else 0.0

    def _issue(self, client: Client, generator: WorkloadGenerator) -> None:
        if self.txn_ratio > 0.0 and self._txn_rng.random() < self.txn_ratio:
            self._issue_txn(client, generator)
        else:
            self._issue_single(client, generator)

    def _issue_single(self, client: Client, generator: WorkloadGenerator) -> None:
        # The base class's loop body, plus the singles counter that
        # cross_shard_fraction needs (client.completed also counts the 2PC
        # layer's internal lock/write traffic, so it cannot be used).
        command = generator.next_command(self.deployment.now)

        def done(_reply, latency: float) -> None:
            now = self.deployment.now
            self.singles_completed += 1
            self._state.records.append((now, latency, client.site))
            if now < self._state.end_time:
                self._issue(client, generator)

        client.invoke(command, on_done=done)

    def _issue_txn(self, client: Client, generator: WorkloadGenerator) -> None:
        now = self.deployment.now
        keys: set = set()
        attempts = 0
        while len(keys) < self.txn_keys and attempts < 32 * self.txn_keys:
            keys.add(generator._next_key(now))
            attempts += 1
        writes = {
            key: f"{generator.name}#{next(generator._counter)}" for key in sorted(keys)
        }

        def done(result: TxnResult) -> None:
            end = self.deployment.now
            if result.ok:
                self.txns_committed += 1
                latency = result.latency_ms / 1e3
                for _ in writes:
                    self._state.records.append((end, latency, client.site))
            else:
                self.txns_aborted += 1
            if end < self._state.end_time:
                self._issue(client, generator)

        self._runtimes[id(client)].begin(writes, [], on_done=done)


@dataclass(frozen=True)
class ShardedDeploymentFactory:
    """Picklable ``make`` callable for sharded sweeps: protocol + config
    (+ optional shard-spec override), mirroring
    :class:`repro.bench.parallel.DeploymentFactory`."""

    protocol: type
    config: Config
    spec: ShardSpec | None = None

    def __call__(self) -> ShardedCluster:
        return ShardedCluster(self.config, spec=self.spec).start(self.protocol)


def _sharded_sweep_point(
    make_cluster: Callable[[], ShardedCluster],
    spec: SpecBySite,
    concurrency: int,
    duration: float,
    warmup: float,
    settle: float,
    sites: list[str] | None,
    txn_ratio: float,
    txn_keys: int,
) -> SweepPoint:
    """One fresh sharded cluster + one run (module-level for workers)."""
    cluster = make_cluster()
    bench = ShardedClosedLoopBenchmark(
        cluster, spec, concurrency, sites, txn_ratio=txn_ratio, txn_keys=txn_keys
    )
    result = bench.run(duration, warmup, settle)
    return SweepPoint(
        concurrency=concurrency,
        throughput=result.throughput,
        mean_latency_ms=result.latency.mean,
        p50_latency_ms=result.latency.p50,
        p99_latency_ms=result.latency.p99,
        completed=result.completed,
    )


def sharded_closed_loop_sweep(
    make_cluster: Callable[[], ShardedCluster],
    spec: SpecBySite,
    concurrencies: Sequence[int],
    duration: float = 1.0,
    warmup: float = 0.2,
    settle: float = 0.5,
    sites: list[str] | None = None,
    txn_ratio: float = 0.0,
    txn_keys: int = 2,
    workers: int = 1,
) -> list[SweepPoint]:
    """Saturation sweep over a sharded cluster (one fresh cluster per
    level); with ``workers > 1``, ``make_cluster`` must be picklable — use
    :class:`ShardedDeploymentFactory`."""
    from repro.bench.parallel import run_grid

    jobs = [
        (
            _sharded_sweep_point,
            (make_cluster, spec, concurrency, duration, warmup, settle, sites,
             txn_ratio, txn_keys),
        )
        for concurrency in concurrencies
    ]
    return run_grid(jobs, workers=workers)
