"""Open-loop workload engine: aggregated arrival processes (ROADMAP item 4).

Closed-loop drivers model each user as an object that waits for its reply
before issuing again, so arrivals self-throttle and the system can never be
pushed *past* its knee — the regime where production outages actually
happen.  This module replaces per-client fleets with **aggregated arrival
processes**: a single scheduler injects requests at a configured (and
possibly time-varying) rate, independent of completions, simulating a
million think-time users with O(sites) client objects.  Per-request state
stays lightweight — one history record per invoke, exactly what the
linearizability checker needs and nothing more.

Arrival processes
-----------------

- :class:`PoissonArrivals` — memoryless arrivals at a fixed rate (the
  analytic model's assumption; matches the legacy ``OpenLoopBenchmark``);
- :class:`MMPPArrivals` — a two-state Markov-modulated Poisson process:
  calm/bursty rates with exponentially distributed dwell times, the
  standard bursty-traffic model;
- :class:`DiurnalArrivals` — a sinusoidal rate curve between a trough and a
  peak (day/night load), sampled by Lewis-Shedler thinning;
- :class:`TraceArrivals` — replay of an explicit arrival schedule, loadable
  from a JSONL file (:func:`TraceArrivals.from_jsonl`).

Every process draws only from the deployment's seeded streams, so runs are
bit-reproducible; the Nemesis ``"burst"`` fault kind scales any process's
rate over a seeded window via :meth:`OpenLoopEngine.apply_burst`.

The engine measures **offered load vs goodput**: completions, typed
failures (rejected / overloaded / abandoned), and a time-bucketed goodput
series — the signal that distinguishes graceful degradation (goodput
plateaus at capacity under 2x overload) from metastable collapse (goodput
stays near zero after the burst ends, sustained by retry amplification
alone).  See ``docs/OVERLOAD.md``.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.benchmarker import (
    BenchmarkResult,
    SpecBySite,
    _arm_observation,
    _spec_for_site,
)
from repro.bench.stats import LatencySummary
from repro.bench.workload import WorkloadGenerator
from repro.errors import WorkloadError
from repro.paxi.client import Client
from repro.paxi.deployment import Deployment

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "OpenLoopEngine",
    "OpenLoopResult",
]


class ArrivalProcess:
    """Base class: a (possibly stateful) generator of inter-arrival gaps.

    ``next_gap(now, rng)`` returns the seconds until the next arrival when
    asked at virtual time ``now``, drawing randomness only from ``rng``
    (a seeded stream).  Return ``math.inf`` to stop arrivals for good
    (exhausted traces).  Processes are single-use per run: construct a
    fresh one per engine.
    """

    def next_gap(self, now: float, rng: random.Random) -> float:
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Nominal long-run arrival rate (requests/second), for reporting
        and model comparison.  ``nan`` when the process cannot say."""
        return math.nan


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` requests per virtual second."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {self.rate}")

    def next_gap(self, now: float, rng: random.Random) -> float:
        return rng.expovariate(self.rate)

    def mean_rate(self) -> float:
        return self.rate


@dataclass
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (calm / bursty).

    The process alternates between state 0 (``rates[0]``, mean dwell
    ``dwell[0]`` seconds) and state 1, with exponentially distributed
    dwell times.  Within a state, arrivals are Poisson at that state's
    rate.  This is the classic parsimonious model of bursty traffic:
    the long-run mean rate is the dwell-weighted average, but arrivals
    cluster far more than a plain Poisson stream's.
    """

    rates: tuple[float, float] = (500.0, 5000.0)
    dwell: tuple[float, float] = (0.5, 0.1)

    def __post_init__(self) -> None:
        if min(self.rates) <= 0:
            raise WorkloadError(f"MMPP rates must be positive, got {self.rates}")
        if min(self.dwell) <= 0:
            raise WorkloadError(f"MMPP dwell times must be positive, got {self.dwell}")
        self._state = 0
        self._switch_at: float | None = None

    def next_gap(self, now: float, rng: random.Random) -> float:
        t = now
        while True:
            if self._switch_at is None:
                self._switch_at = t + rng.expovariate(1.0 / self.dwell[self._state])
            gap = rng.expovariate(self.rates[self._state])
            if t + gap <= self._switch_at:
                return (t + gap) - now
            # The state flips before the candidate arrival: restart the
            # (memoryless) draw from the switch instant in the new state.
            t = self._switch_at
            self._state = 1 - self._state
            self._switch_at = None

    def mean_rate(self) -> float:
        total = self.dwell[0] + self.dwell[1]
        return (self.rates[0] * self.dwell[0] + self.rates[1] * self.dwell[1]) / total


@dataclass
class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal rate curve: trough-to-peak over ``period`` seconds.

    ``rate_at(t)`` traces ``trough + (peak - trough) * (1 - cos(2*pi*(t /
    period + phase))) / 2`` — it starts at the trough for ``phase=0``.
    Arrivals are drawn by Lewis-Shedler thinning against the peak rate,
    which is exact for any bounded rate function.
    """

    trough: float = 500.0
    peak: float = 5000.0
    period: float = 10.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.trough <= 0 or self.peak < self.trough:
            raise WorkloadError(
                f"need 0 < trough <= peak, got trough={self.trough} peak={self.peak}"
            )
        if self.period <= 0:
            raise WorkloadError(f"period must be positive, got {self.period}")

    def rate_at(self, t: float) -> float:
        swing = (1.0 - math.cos(2.0 * math.pi * (t / self.period + self.phase))) / 2.0
        return self.trough + (self.peak - self.trough) * swing

    def next_gap(self, now: float, rng: random.Random) -> float:
        t = now
        while True:
            t += rng.expovariate(self.peak)
            if rng.random() * self.peak <= self.rate_at(t):
                return t - now

    def mean_rate(self) -> float:
        return (self.trough + self.peak) / 2.0


@dataclass
class TraceArrivals(ArrivalProcess):
    """Replay an explicit arrival schedule.

    ``offsets`` are seconds from the first ``next_gap`` call (the engine's
    measurement start), ascending.  With ``loop=True`` the trace restarts
    when exhausted (offsets re-anchored at the wrap instant); otherwise
    arrivals simply stop.
    """

    offsets: Sequence[float]
    loop: bool = False

    def __post_init__(self) -> None:
        if any(b < a for a, b in zip(self.offsets, list(self.offsets)[1:])):
            raise WorkloadError("trace offsets must be ascending")
        if self.loop and not self.offsets:
            raise WorkloadError("cannot loop an empty trace")
        self._origin: float | None = None
        self._index = 0

    def next_gap(self, now: float, rng: random.Random) -> float:
        if self._origin is None:
            self._origin = now
        if self._index >= len(self.offsets):
            if not self.loop:
                return math.inf
            self._origin = now
            self._index = 0
        gap = max(0.0, self._origin + self.offsets[self._index] - now)
        self._index += 1
        return gap

    def mean_rate(self) -> float:
        if len(self.offsets) < 2 or self.offsets[-1] <= self.offsets[0]:
            return math.nan
        return (len(self.offsets) - 1) / (self.offsets[-1] - self.offsets[0])

    @staticmethod
    def from_jsonl(path: str, loop: bool = False) -> "TraceArrivals":
        """Load a schedule from a JSONL file.

        Two record shapes compose freely, one JSON object per line:

        - ``{"t": 1.25}`` — one arrival at that offset (seconds);
        - ``{"rate": 2000, "duration": 0.5}`` — a segment of evenly paced
          arrivals at ``rate`` for ``duration`` seconds, starting where
          the previous record ended.

        Blank lines and ``#`` comment lines are skipped.  Offsets must
        come out ascending (explicit ``t`` records may interleave with
        segments only if they respect the running clock).
        """
        offsets: list[float] = []
        cursor = 0.0
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise WorkloadError(f"{path}:{lineno}: malformed JSON: {exc}") from exc
                if not isinstance(record, dict):
                    raise WorkloadError(f"{path}:{lineno}: expected an object, got {record!r}")
                if "t" in record:
                    offsets.append(float(record["t"]))
                    cursor = max(cursor, float(record["t"]))
                elif "rate" in record and "duration" in record:
                    rate = float(record["rate"])
                    duration = float(record["duration"])
                    if rate <= 0 or duration <= 0:
                        raise WorkloadError(
                            f"{path}:{lineno}: rate and duration must be positive"
                        )
                    count = int(rate * duration)
                    step = 1.0 / rate
                    offsets.extend(cursor + i * step for i in range(count))
                    cursor += duration
                else:
                    raise WorkloadError(
                        f"{path}:{lineno}: record needs either 't' or 'rate'+'duration', "
                        f"got keys {sorted(record)}"
                    )
        return TraceArrivals(offsets, loop=loop)


@dataclass
class OpenLoopResult(BenchmarkResult):
    """A :class:`~repro.bench.benchmarker.BenchmarkResult` plus the
    offered-load accounting only an open-loop driver can produce.

    ``throughput`` (inherited) counts *successful completions* per second
    — i.e. it IS the goodput; ``goodput`` aliases it for clarity.  The
    failure counters split the shed/abandoned remainder by type, and
    ``goodput_timeline`` is a ``(window_start_offset, goodput)`` series
    over fixed sub-windows of the measurement window — the evidence for
    "collapse persists after the burst ends" claims.
    """

    offered: int = 0
    offered_rate: float = 0.0
    rejected: int = 0  # explicit Rejected replies (server-side shedding)
    overloaded: int = 0  # client-side budget / breaker give-ups
    abandoned: int = 0  # requests past their patience (engine timeout)
    goodput_timeline: list[tuple[float, float]] = field(repr=False, default_factory=list)

    @property
    def goodput(self) -> float:
        return self.throughput

    @property
    def failure_rate(self) -> float:
        """Fraction of offered requests that did not complete in-window."""
        if self.offered == 0:
            return 0.0
        return max(0.0, 1.0 - self.completed / self.offered)


class OpenLoopEngine:
    """Injects an arrival process into a deployment and measures goodput.

    One lightweight :class:`~repro.paxi.client.Client` per site carries the
    requests round-robin (the per-request session the checkers need);
    arrivals never wait for completions.  The engine registers itself in
    ``deployment.rate_controllers`` so a Nemesis ``"burst"`` event can
    scale its rate over a window.

    Client-robustness knobs (all optional, default = the docile legacy
    client): ``retry_timeout`` enables retransmission, ``max_retries`` /
    ``max_attempts`` bound it, ``retry_budget`` token-buckets it,
    ``breaker_threshold``/``breaker_cooldown`` arm the circuit breaker.
    ``request_timeout`` is the per-request patience: overdue requests are
    abandoned (typed failure) and their deadline rides on the wire for
    ``shed_policy="deadline"`` replicas.

    With the defaults (pure Poisson, no timeout, no retries) the engine's
    event sequence is identical to the legacy ``OpenLoopBenchmark``'s —
    which now delegates here.
    """

    def __init__(
        self,
        deployment: Deployment,
        spec: SpecBySite,
        process: ArrivalProcess,
        sites: list[str] | None = None,
        request_timeout: float | None = None,
        retry_timeout: float | None = None,
        max_retries: int | None = None,
        max_attempts: int | None = None,
        retry_budget: float | None = None,
        retry_refill_rate: float | None = None,
        breaker_threshold: int | None = None,
        breaker_cooldown: float | None = None,
        record_history: bool = True,
        timeline_buckets: int = 20,
    ) -> None:
        self.deployment = deployment
        self.process = process
        self.request_timeout = request_timeout
        self.record_history = record_history
        self.timeline_buckets = timeline_buckets
        self._arrival_rng = deployment.cluster.streams.stream("open-loop-arrivals")
        self._records: list[tuple[float, float, str]] = []  # (done_at, latency, site)
        self._failures: list[tuple[float, str]] = []  # (at, reason)
        self._offered = 0
        self._start = 0.0
        self._end_time = math.inf
        self._burst_windows: list[tuple[float, float, float]] = []
        chosen_sites = sites if sites is not None else list(deployment.config.topology.sites)
        streams = deployment.cluster.streams
        self._drivers: list[tuple[Client, WorkloadGenerator]] = []
        for index, site in enumerate(chosen_sites):
            client = deployment.new_client(site=site)
            if retry_timeout is not None:
                client.retry_timeout = retry_timeout
            if max_retries is not None:
                client.max_retries = max_retries
            if max_attempts is not None:
                client.max_attempts = max_attempts
            if retry_budget is not None:
                client.retry_budget = retry_budget
            if retry_refill_rate is not None:
                client.retry_refill_rate = retry_refill_rate
            if breaker_threshold is not None:
                client.breaker_threshold = breaker_threshold
            if breaker_cooldown is not None:
                client.breaker_cooldown = breaker_cooldown
            generator = WorkloadGenerator(
                _spec_for_site(spec, site),
                streams.stream(f"workload-{index}"),
                name=f"o{index}",
            )
            self._drivers.append((client, generator))
        self._next_driver = 0
        deployment.rate_controllers.append(self)

    # ------------------------------------------------------------------
    # Rate control (Nemesis "burst" target)
    # ------------------------------------------------------------------

    def apply_burst(self, at: float, duration: float, multiplier: float) -> None:
        """Scale the arrival rate by ``multiplier`` over ``[at, at +
        duration)`` (absolute virtual time).  Overlapping windows multiply.

        Gaps are divided by the multiplier active at scheduling time —
        exact for Poisson arrivals (memorylessness), a uniform time
        compression for the other processes.
        """
        if duration <= 0 or multiplier <= 0:
            raise WorkloadError(
                f"burst needs positive duration and multiplier, got "
                f"duration={duration!r} multiplier={multiplier!r}"
            )
        self._burst_windows.append((at, at + duration, multiplier))

    def multiplier_at(self, t: float) -> float:
        scale = 1.0
        for start, end, multiplier in self._burst_windows:
            if start <= t < end:
                scale *= multiplier
        return scale

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(
        self, duration: float = 1.0, warmup: float = 0.2, settle: float = 0.5
    ) -> OpenLoopResult:
        deployment = self.deployment
        deployment.run_for(settle)
        start = deployment.now
        warmup_end = start + warmup
        end = start + warmup + duration
        self._start = start
        self._end_time = end
        observation = _arm_observation(deployment, warmup_end, end)
        self._schedule_arrival()
        deployment.run_until(end)
        return self._result(warmup_end, end, observation)

    def _schedule_arrival(self) -> None:
        now = self.deployment.now
        gap = self.process.next_gap(now, self._arrival_rng)
        if math.isinf(gap):
            return  # trace exhausted: arrivals stop
        scale = self.multiplier_at(now)
        if scale != 1.0:
            gap /= scale
        self.deployment.cluster.loop.call_after(gap, self._arrive)

    def _arrive(self) -> None:
        now = self.deployment.now
        if now >= self._end_time:
            return
        client, generator = self._drivers[self._next_driver]
        self._next_driver = (self._next_driver + 1) % len(self._drivers)
        command = generator.next_command(now)
        self._offered += 1

        def done(_reply, latency: float) -> None:
            self._records.append((self.deployment.now, latency, client.site))

        def fail(reason: str, _elapsed: float) -> None:
            self._failures.append((self.deployment.now, reason))

        timeout = self.request_timeout
        request_id = client.invoke(
            command,
            on_done=done,
            record=self.record_history,
            on_fail=fail,
            deadline=(now + timeout) if timeout is not None else None,
        )
        if timeout is not None:
            self.deployment.cluster.loop.call_after(
                timeout, self._expire, client, request_id
            )
        self._schedule_arrival()

    def _expire(self, client: Client, request_id: int) -> None:
        # Patience ran out: a late reply is now worthless to the issuer.
        # abandon() is a no-op if the request already finished either way.
        client.abandon(request_id)

    def _result(
        self, warmup_end: float, end: float, observation
    ) -> OpenLoopResult:
        in_window = [
            (done_at, latency, site)
            for done_at, latency, site in self._records
            if warmup_end <= done_at <= end
        ]
        latencies_ms = [latency * 1e3 for _at, latency, _site in in_window]
        per_site_lat: dict[str, list[float]] = {}
        for _at, latency, site in in_window:
            per_site_lat.setdefault(site, []).append(latency * 1e3)
        window = max(end - warmup_end, 1e-12)
        fails_in_window = [r for at, r in self._failures if warmup_end <= at <= end]
        buckets = max(1, self.timeline_buckets)
        width = window / buckets
        counts = [0] * buckets
        for done_at, _latency, _site in in_window:
            index = min(buckets - 1, int((done_at - warmup_end) / width))
            counts[index] += 1
        timeline = [(i * width, count / width) for i, count in enumerate(counts)]
        result = OpenLoopResult(
            throughput=len(in_window) / window,
            latency=LatencySummary.of(latencies_ms),
            latencies_ms=latencies_ms,
            per_site={site: LatencySummary.of(ls) for site, ls in per_site_lat.items()},
            per_site_latencies=per_site_lat,
            completed=len(in_window),
            failed=sum(client.failed for client, _gen in self._drivers),
            window=window,
            offered=self._offered,
            offered_rate=self._offered / max(end - self._start, 1e-12),
            rejected=sum(1 for r in fails_in_window if r == "rejected"),
            overloaded=sum(1 for r in fails_in_window if r == "overloaded"),
            abandoned=sum(1 for r in fails_in_window if r in ("abandoned", "retries_exhausted")),
            goodput_timeline=timeline,
        )
        result.metrics = observation.snapshot()
        return result

    @property
    def clients(self) -> list[Client]:
        return [client for client, _gen in self._drivers]
