"""``--profile`` support for the benchmark and experiment CLIs.

Wraps a run in :mod:`cProfile` and prints the top functions by total time
alongside the event-loop hot counters (simulated events fired, heap
compactions), which contextualize the profile: the loop's events/sec is
the simulator's core speed metric (see ``docs/PERFORMANCE.md`` and the
``bench_simspeed`` baseline).

Worker processes spawned with ``--jobs N`` are not profiled — the profile
covers the parent process only, so profile with ``--jobs 1`` (the
default) when hunting hot spots.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from contextlib import contextmanager
from typing import Iterator

from repro.sim.clock import EventLoop


@contextmanager
def maybe_profiled(enabled: bool, label: str = "run", top: int = 20) -> Iterator[None]:
    """Profile the enclosed block when ``enabled``; no-op otherwise."""
    if not enabled:
        yield
        return
    events_before = EventLoop.total_events_fired
    compactions_before = EventLoop.total_compactions
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        wall = time.perf_counter() - started
        events = EventLoop.total_events_fired - events_before
        compactions = EventLoop.total_compactions - compactions_before
        print()
        print(f"--- profile: {label} ---")
        print(
            f"wall {wall:.2f}s | {events:,} simulated events "
            f"({events / wall:,.0f} events/s) | {compactions} heap compaction(s)"
        )
        stats = pstats.Stats(profiler)
        stats.sort_stats("tottime").print_stats(top)
