"""Availability tier (paper section 4.2): behaviour under leader failure.

One of the Paxi benchmarker's four tiers.  The paper's argument
(section 1.2): "In Paxos, failure of the single leader leads to
unavailability until a new leader is elected, but in multi-leader protocols
most requests do not experience any disruption in availability, as the
failed leader is not in their critical path."

Setup: 9 nodes, keys partitioned per zone (each zone's leader owns its
range), 4 clients per zone driving only their zone's keys.  We crash zone
1's leader — which is also the MultiPaxos leader — and plot the per-100 ms
completed-operations timeline:

- MultiPaxos: *global* outage until the election completes;
- WPaxos: zone 1's keys stall until the leader thaws, but zones 2 and 3
  keep committing throughout (~2/3 throughput).

MultiPaxos failover uses the φ-accrual detector with the Jacobson
adaptive election timeout (``params: detector=True``, see
``repro.paxi.detector``): the election delay is learned from observed
heartbeat intervals instead of a hand-tuned ``election_timeout``, so the
measured outage reflects detection latency rather than a lucky constant.
"""

from __future__ import annotations

from repro.bench.workload import WorkloadGenerator, WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.message import Command
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wpaxos import WPaxos

CRASH_AT = 0.6
CRASH_FOR = 1.2
BUCKET = 0.1
KEYS_PER_ZONE = 50
CLIENTS_PER_ZONE = 4


def _drive(factory, params: dict, run_for: float, seed: int) -> dict[int, int]:
    """Run the partitioned workload with a leader crash; return the
    completed-ops timeline in BUCKET-second buckets."""
    cfg = Config.lan(3, 3, seed=seed, **params)
    deployment = Deployment(cfg).start(factory)
    deployment.run_for(0.05)
    # Prime: each zone's key range is written once via that zone's leader,
    # so WPaxos ownership lands with the zone leaders.
    for zone in (1, 2, 3):
        primer = deployment.new_client()
        for key in range(zone * 1000, zone * 1000 + KEYS_PER_ZONE):
            primer.invoke(Command.put(key, "seed"), NodeID(zone, 1))
    deployment.run_for(0.5)
    start = deployment.now

    buckets: dict[int, int] = {}
    streams = deployment.cluster.streams
    for zone in (1, 2, 3):
        spec = WorkloadSpec(keys=KEYS_PER_ZONE, min_key=zone * 1000)
        for index in range(CLIENTS_PER_ZONE):
            client = deployment.new_client()
            client.retry_timeout = 0.25
            generator = WorkloadGenerator(
                spec, streams.stream(f"avail-{zone}-{index}"), name=f"z{zone}c{index}"
            )
            _loop(deployment, client, generator, NodeID(zone, 1), start, run_for, buckets)
    deployment.crash(NodeID(1, 1), duration=CRASH_FOR, at=start + CRASH_AT)
    deployment.run_until(start + run_for)
    return buckets


def _loop(deployment, client, generator, target, start, run_for, buckets) -> None:
    def issue() -> None:
        command = generator.next_command(deployment.now)

        def done(_reply, _latency: float) -> None:
            elapsed = deployment.now - start
            if elapsed < run_for:
                buckets[int(elapsed / BUCKET)] = buckets.get(int(elapsed / BUCKET), 0) + 1
                issue()

        client.invoke(command, target=target, on_done=done)

    issue()


def run(fast: bool = False) -> ExperimentResult:
    run_for = 2.4 if fast else 3.6
    result = ExperimentResult(
        experiment="extra_availability",
        title="Throughput timeline around a leader crash (ops per 100 ms)",
        headers=["t_s", "Paxos", "WPaxos"],
    )
    timelines = {
        # Failover via the φ-accrual detector + adaptive election timeout
        # (learned from the observed heartbeat cadence) rather than a
        # hand-tuned election_timeout constant.
        "Paxos": _drive(MultiPaxos, {"detector": True}, run_for, seed=91),
        "WPaxos": _drive(WPaxos, {}, run_for, seed=91),
    }
    crash_buckets = range(int(CRASH_AT / BUCKET), int((CRASH_AT + CRASH_FOR) / BUCKET))
    healthy = {
        name: max(t.get(b, 0) for b in range(int(CRASH_AT / BUCKET)))
        for name, t in timelines.items()
    }
    for bucket in range(int(run_for / BUCKET)):
        result.rows.append(
            [
                round(bucket * BUCKET, 1),
                timelines["Paxos"].get(bucket, 0),
                timelines["WPaxos"].get(bucket, 0),
            ]
        )
        for name in ("Paxos", "WPaxos"):
            result.series.setdefault(name, []).append(
                (bucket * BUCKET, float(timelines[name].get(bucket, 0)))
            )
    # Worst 100 ms during the crash window, relative to healthy throughput:
    # Paxos shows a total outage until its election completes; WPaxos's
    # floor stays near 2/3 (zones 2 and 3 never notice).
    floor = {
        name: min(t.get(b, 0) for b in crash_buckets) / healthy[name]
        for name, t in timelines.items()
    }
    mean_retained = {
        name: sum(t.get(b, 0) for b in crash_buckets) / len(crash_buckets) / healthy[name]
        for name, t in timelines.items()
    }
    result.notes.append(
        f"worst 100 ms during the outage: Paxos={floor['Paxos'] * 100:.0f}% of healthy, "
        f"WPaxos={floor['WPaxos'] * 100:.0f}% (multi-leader: the failed leader is only "
        "in zone 1's critical path)"
    )
    result.notes.append(
        f"mean throughput retained: Paxos={mean_retained['Paxos'] * 100:.0f}%, "
        f"WPaxos={mean_retained['WPaxos'] * 100:.0f}%"
    )
    return result
