"""Terminal ASCII charts for experiment series.

The experiment CLI can render each result's (x, y) series as a small
scatter chart (``python -m repro.experiments fig09 --plot``), which is how
the figures read without a graphics stack.
"""

from __future__ import annotations

import math

from repro.experiments.common import ExperimentResult

MARKS = "ox+*#@%&$ABCDEFGH"


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one shared-axis ASCII canvas."""
    points = [
        (x, y)
        for values in series.values()
        for x, y in values
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        return "(no finite data)"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, values) in enumerate(series.items()):
        mark = MARKS[index % len(MARKS)]
        legend.append(f"{mark}={name}")
        for x, y in values:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = [f"{y_label} [{y_lo:.3g} .. {y_hi:.3g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:.3g} .. {x_hi:.3g}]    " + "  ".join(legend))
    return "\n".join(lines)


def plot_result(result: ExperimentResult, width: int = 72, height: int = 20) -> str:
    """Chart all of a result's series (capped to the first 8 for legibility)."""
    series = dict(list(result.series.items())[:8])
    if not series:
        return "(no series to plot)"
    return ascii_chart(series, width=width, height=height)
