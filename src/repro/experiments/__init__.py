"""Per-figure/table experiment drivers and their registry.

Each module exposes ``run(fast=False) -> ExperimentResult``.  Run one from
the command line with::

    python -m repro.experiments fig09 [--fast]
    python -m repro.experiments all --fast
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.common import ExperimentResult


def _registry() -> dict[str, Callable[[bool], ExperimentResult]]:
    from repro.experiments import (
        bench_batching,
        bench_faults,
        bench_grayfail,
        bench_overload,
        bench_reads,
        bench_sharding,
        bench_simspeed,
        extra_availability,
        extra_dynamic,
        extra_mencius,
        extra_relaxed,
        extra_scalability,
        fig03_rtt,
        fig04_models,
        fig06_distributions,
        fig07_raft,
        fig08_lan_model,
        fig09_lan_paxi,
        fig10_wan_model,
        fig11_conflict,
        fig12_epaxos_conflict,
        fig13_locality,
        fig14_advisor,
        formulas,
        table1_queues,
        table4_params,
    )

    return {
        "fig03": fig03_rtt.run,
        "table1": table1_queues.run,
        "fig04": fig04_models.run,
        "fig06": fig06_distributions.run,
        "fig07": fig07_raft.run,
        "fig08": fig08_lan_model.run,
        "fig09": fig09_lan_paxi.run,
        "fig10": fig10_wan_model.run,
        "fig11": fig11_conflict.run,
        "fig12": fig12_epaxos_conflict.run,
        "fig13": fig13_locality.run,
        "table4": table4_params.run,
        "fig14": fig14_advisor.run,
        "formulas": formulas.run,
        "extra_scalability": extra_scalability.run,
        "extra_availability": extra_availability.run,
        "extra_relaxed": extra_relaxed.run,
        "extra_dynamic": extra_dynamic.run,
        "extra_mencius": extra_mencius.run,
        "bench_batching": bench_batching.run,
        "bench_faults": bench_faults.run,
        "bench_grayfail": bench_grayfail.run,
        "bench_overload": bench_overload.run,
        "bench_reads": bench_reads.run,
        "bench_sharding": bench_sharding.run,
        "bench_simspeed": bench_simspeed.run,
    }


EXPERIMENTS = _registry()

__all__ = ["EXPERIMENTS", "ExperimentResult"]
