"""Figure 3: histogram of local-area RTTs within one AWS region.

The paper measures ping RTTs inside an EC2 region and finds them
approximately normal with mu = 0.4271 ms, sigma = 0.0476 ms — the
assumption underlying the whole LAN model.  We reproduce it by measuring
round trips across the simulated network and fitting mean/sigma, verifying
the simulator was calibrated to the paper's measurement.
"""

from __future__ import annotations

from repro.bench.stats import histogram, mean, stddev
from repro.core.topology import LOCAL_RTT_MEAN_MS, LOCAL_RTT_SIGMA_MS, lan
from repro.experiments.common import ExperimentResult
from repro.sim.cluster import Cluster


def run(fast: bool = False) -> ExperimentResult:
    samples = 2_000 if fast else 20_000
    cluster = Cluster(lan(2), seed=3)
    rtts_ms: list[float] = []
    # Measure request/response round trips between two endpoints, exactly
    # how ping sees them.
    pending = {}

    def on_b(src, msg, size):
        cluster.network.transit("b", "a", ("pong", msg[1]), size)

    def on_a(src, msg, size):
        started = pending.pop(msg[1])
        rtts_ms.append((cluster.loop.now - started) * 1e3)

    cluster.add_lightweight_endpoint("a", "LAN", on_a)
    cluster.add_lightweight_endpoint("b", "LAN", on_b)
    for i in range(samples):
        # Space the pings out so each RTT is measured in isolation.
        cluster.loop.call_at(i * 1e-3, _ping, cluster, pending, i)
    cluster.drain()

    mu = mean(rtts_ms)
    sigma = stddev(rtts_ms)
    result = ExperimentResult(
        experiment="fig03",
        title="Local-area RTT distribution (AWS region)",
        headers=["bin_low_ms", "bin_high_ms", "count"],
    )
    for lo, hi, count in histogram(rtts_ms, bins=20):
        result.rows.append([round(lo, 4), round(hi, 4), count])
    result.series["rtt_ms"] = [(float(i), value) for i, value in enumerate(rtts_ms[:1000])]
    result.notes.append(
        f"fitted mu={mu:.4f} ms sigma={sigma:.4f} ms; "
        f"paper: mu={LOCAL_RTT_MEAN_MS} ms sigma={LOCAL_RTT_SIGMA_MS} ms"
    )
    result.notes.append(f"samples={len(rtts_ms)}")
    return result


def _ping(cluster: Cluster, pending: dict, index: int) -> None:
    pending[index] = cluster.loop.now
    cluster.network.transit("a", "b", ("ping", index), 64)
