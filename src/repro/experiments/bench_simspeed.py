"""Simulator speed baseline: events/sec on the MultiPaxos saturation run.

The empirical prong's cost is dominated by the event loop, so this bench
tracks the simulator's core speed metric — **simulated events executed
per wall-clock second** — on a fixed saturation workload (MultiPaxos,
9-node LAN, 64 closed-loop clients over 1000 keys, the ``fig09`` sweep's
hottest cell).  Because the fast paths are pinned bit-identical by the
golden equivalence suite (``tests/test_equivalence_golden.py``), the
event *count* for a given seed is a constant; only the wall clock moves.

It also times a small sweep grid twice through
:func:`repro.bench.parallel.run_grid` — serially and with worker
processes — and asserts the two produce byte-identical results, the
determinism contract that makes ``--jobs N`` safe to use anywhere.

The results land in ``BENCH_simspeed.json``::

    python -m repro.experiments bench_simspeed [--fast]

``check_no_regression()`` is the CI gate: events/sec must stay above
half the committed post-optimization floor, the parallel grid must match
the serial grid exactly, and (on multi-core machines) fanning out must
not be slower than running serially.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.parallel import run_grid
from repro.bench.workload import WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos
from repro.sim.clock import EventLoop

SEED = 55
CONCURRENCY = 64
OUTPUT_FILE = "BENCH_simspeed.json"

# Measured at commit ad6dbfd (before the fast-path work) on the reference
# 1-CPU container, exact same workload: 1,989,306 events in 572.4s.  The
# optimized loop must stay >= 3x this (measured: ~35x).
PREOPT_EVENTS_PER_SEC = 3475.0
TARGET_SPEEDUP = 3.0
# Post-optimization measurement on the same reference container was
# ~121,600 events/s; the gate allows a 2x machine-speed cushion below it.
FLOOR_EVENTS_PER_SEC = 60000.0


def _saturation_cell(duration: float) -> dict:
    """The timed cell: MultiPaxos at saturation, fixed seed."""
    deployment = Deployment(Config.lan(3, 3, seed=SEED)).start(MultiPaxos)
    bench = ClosedLoopBenchmark(
        deployment,
        WorkloadSpec(keys=1000, write_ratio=0.5),
        concurrency=CONCURRENCY,
    )
    events_before = EventLoop.total_events_fired
    started = time.perf_counter()
    result = bench.run(duration=duration, warmup=0.1 * duration, settle=0.1 * duration)
    wall = time.perf_counter() - started
    events = EventLoop.total_events_fired - events_before
    return {
        "duration_virtual_s": duration,
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "completed_ops": result.completed,
        "throughput_ops_s": round(result.throughput, 1),
    }


def _grid_cell(seed: int) -> dict:
    """One job of the parallelism grid (module-level: picklable)."""
    deployment = Deployment(Config.lan(3, 3, seed=seed)).start(MultiPaxos)
    result = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=100, write_ratio=0.5), concurrency=8
    ).run(duration=0.5, warmup=0.1, settle=0.05)
    return {
        "seed": seed,
        "completed": result.completed,
        "throughput": repr(result.throughput),
        "mean_ms": repr(result.latency.mean),
    }


def _timed_grid(seeds, workers: int) -> tuple[float, list[dict]]:
    started = time.perf_counter()
    results = run_grid([(_grid_cell, (seed,)) for seed in seeds], workers=workers)
    return time.perf_counter() - started, results


def run(fast: bool = False, output: str = OUTPUT_FILE, jobs: int = 1) -> ExperimentResult:
    duration = 1.5 if fast else 5.0
    cpu_count = os.cpu_count() or 1
    workers = jobs if jobs > 1 else min(4, cpu_count)
    cell = _saturation_cell(duration)
    speedup = cell["events_per_sec"] / PREOPT_EVENTS_PER_SEC

    seeds = (7, 19, 101, 211)
    serial_wall, serial_results = _timed_grid(seeds, workers=1)
    parallel_wall, parallel_results = _timed_grid(seeds, workers=workers)
    identical = serial_results == parallel_results

    payload = {
        "experiment": "bench_simspeed",
        "mode": "fast" if fast else "full",
        "seed": SEED,
        "concurrency": CONCURRENCY,
        "cpu_count": cpu_count,
        "saturation": cell,
        "preopt_events_per_sec": PREOPT_EVENTS_PER_SEC,
        "speedup_vs_preopt": round(speedup, 2),
        "parallel": {
            "grid_jobs": len(seeds),
            "workers": workers,
            "serial_wall_s": round(serial_wall, 3),
            "parallel_wall_s": round(parallel_wall, 3),
            "parallel_speedup": round(serial_wall / parallel_wall, 2)
            if parallel_wall
            else None,
            "results_identical": identical,
        },
    }
    with open(output, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")

    result = ExperimentResult(
        experiment="bench_simspeed",
        title=(
            f"Simulator speed baseline (MultiPaxos saturation, "
            f"{CONCURRENCY} clients, {duration:g}s virtual)"
        ),
        headers=["metric", "value"],
    )
    result.rows.append(["events/s", cell["events_per_sec"]])
    result.rows.append(["speedup vs pre-opt", round(speedup, 2)])
    result.rows.append(["simulated events", cell["events"]])
    result.rows.append(["ops/s (virtual)", cell["throughput_ops_s"]])
    result.rows.append(["wall (s)", cell["wall_s"]])
    result.rows.append(["grid serial wall (s)", round(serial_wall, 3)])
    result.rows.append([f"grid wall, {workers} workers (s)", round(parallel_wall, 3)])
    result.rows.append(["cpu_count", cpu_count])
    result.notes.append(
        f"{cell['events_per_sec']:,.0f} events/s = {speedup:.1f}x the pre-optimization "
        f"baseline ({PREOPT_EVENTS_PER_SEC:,.0f} events/s at the same workload)"
    )
    result.notes.append(
        "parallel grid results identical to serial: " + str(identical)
    )
    if cpu_count == 1:
        result.notes.append(
            "single-CPU machine: worker processes cannot beat serial wall "
            "clock here; the parallel numbers above measure pool overhead only"
        )
    result.notes.append(f"wrote {output}")
    return result


def check_no_regression(path: str = OUTPUT_FILE) -> None:
    """CI gate for the simulator-speed baseline.

    Fails (``SystemExit``) if events/sec fell below the floor, if the
    parallel grid diverged from the serial grid, or — on a multi-core
    machine — if fanning out was slower than running serially.  Runs as
    ``python -c "from repro.experiments.bench_simspeed import check_no_regression; check_no_regression()"``.
    """
    if not os.path.exists(path):
        raise SystemExit(f"simspeed baseline {path!r} not found — run the bench first")
    with open(path) as f:
        payload = json.load(f)
    cell = payload.get("saturation") or {}
    parallel = payload.get("parallel") or {}
    failures = []
    events_per_sec = cell.get("events_per_sec", 0.0)
    if events_per_sec < FLOOR_EVENTS_PER_SEC:
        failures.append(
            f"events/s {events_per_sec:,.0f} < floor {FLOOR_EVENTS_PER_SEC:,.0f} "
            f"(pre-opt baseline {PREOPT_EVENTS_PER_SEC:,.0f} x target "
            f"{TARGET_SPEEDUP:g}x, halved for machine-speed cushion)"
        )
    if not parallel.get("results_identical"):
        failures.append("parallel grid results diverged from the serial run")
    if payload.get("cpu_count", 1) > 1:
        serial = parallel.get("serial_wall_s") or 0.0
        fanned = parallel.get("parallel_wall_s") or 0.0
        if fanned > serial * 1.1:
            failures.append(
                f"parallel grid wall {fanned:.2f}s > 1.1x serial {serial:.2f}s "
                f"on a {payload['cpu_count']}-CPU machine"
            )
    if failures:
        raise SystemExit("simspeed regression: " + "; ".join(failures))
    print(
        f"simspeed baseline ok: {events_per_sec:,.0f} events/s "
        f"({payload.get('speedup_vs_preopt')}x pre-opt), parallel grid identical"
    )
