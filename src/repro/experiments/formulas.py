"""Section 6: the distilled load/capacity/latency formulas, cross-checked.

Prints the paper's worked corollaries at N = 9 (Equations 4-6) and
cross-validates Equation 3's capacity *ratios* against the measured
saturation throughputs of the Paxi implementations — the formulas predict
relative capacity, and the simulator should agree on who wins and by
roughly what factor.
"""

from __future__ import annotations

from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.core.load import capacity, load_epaxos, load_paxos, load_wpaxos
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wpaxos import WPaxos

N = 9


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="formulas",
        title="Unified theory: load L(S) and capacity at N=9 (Eq. 1-6)",
        headers=["protocol", "load", "capacity", "paper_load"],
    )
    loads = {
        "Paxos": (load_paxos(N), "4"),
        "EPaxos c=0": (load_epaxos(N, 0.0), "4/3"),
        "EPaxos c=0.5": (load_epaxos(N, 0.5), "2"),
        "EPaxos c=1": (load_epaxos(N, 1.0), "8/3"),
        "WPaxos (3x3 grid)": (load_wpaxos(N, 3), "4/3"),
    }
    for name, (value, paper) in loads.items():
        result.rows.append([name, round(value, 4), round(1 / value, 4), paper])

    formula_ratio = (1 / load_wpaxos(N, 3)) / (1 / load_paxos(N))
    result.notes.append(
        f"Eq.3 predicts WPaxos/Paxos capacity ratio = {formula_ratio:.2f} (thrifty quorums)"
    )

    # Cross-check against measured saturation (full replication, so the
    # measured ratio is lower than the thrifty formula's 3.0).
    concurrencies = (96,) if fast else (96, 160)
    duration = 0.25 if fast else 0.6
    measured = {}
    for name, factory in (("Paxos", MultiPaxos), ("WPaxos", WPaxos)):
        def make(f=factory):
            return Deployment(Config.lan(3, 3, seed=71)).start(f)

        points = closed_loop_sweep(
            make, WorkloadSpec(keys=1000), concurrencies, duration=duration, warmup=duration * 0.2, settle=0.05
        )
        measured[name] = max_throughput(points)
    measured_ratio = measured["WPaxos"] / measured["Paxos"]
    result.notes.append(
        f"measured (full replication): Paxos={measured['Paxos']:.0f}/s, "
        f"WPaxos={measured['WPaxos']:.0f}/s, ratio={measured_ratio:.2f} "
        "(paper's measured/modelled improvement ~1.55x; both sub-linear in L=3)"
    )
    return result
