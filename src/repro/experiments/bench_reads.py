"""Read-path benchmark baseline: knee throughput per read mode.

Closed-loop saturation sweeps for the single-leader protocols (Paxos,
FPaxos, Raft) on a 9-node LAN under a read-heavy workload (W = 0.1), once
per read path: ``leader`` (every read is a full consensus round — the
seed's behavior), ``lease`` (leader leases), ``quorum`` (read-quorum
polls), and ``local`` (bounded staleness; the only non-linearizable mode).
The headline numbers this baseline tracks:

- the **knee lift** of each optimized mode over the leader-read baseline
  (lease and quorum reads stay linearizable yet approach the relaxed-read
  ceiling ``1 / (W * ts)``);
- the **leader-load reduction**: the busiest node's share of cluster busy
  time shrinks as reads leave the leader's queue;
- **sim-vs-model conformance**: each mode's knee against the matching
  formula in :mod:`repro.core.reads` / :mod:`repro.core.relaxed`.

The results land in ``BENCH_reads.json`` so CI can diff the baseline::

    python -m repro.experiments bench_reads [--fast]

``check_no_regression()`` is the CI gate: it fails if any protocol's lease
or quorum knee falls below its leader-read knee, or if a linearizable mode
drifts more than 25% from its model.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.parallel import DeploymentFactory
from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import PaxosModel
from repro.core.reads import LeaseReadPaxosModel, QuorumReadPaxosModel
from repro.core.relaxed import RelaxedPaxosModel
from repro.core.topology import lan
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

PROTOCOLS = {
    "paxos": MultiPaxos,
    "fpaxos": FPaxos,
    "raft": Raft,
}

#: Sweep modes: payload key -> WorkloadSpec.read_mode.
MODES = {
    "leader": None,
    "lease": "lease",
    "quorum": "quorum",
    "local": "local",
}

WRITE_RATIO = 0.1  # read-heavy: where the read path dominates the knee
LEASE_DURATION = 0.5
MAX_CLOCK_SKEW = 0.01
SEED = 77
OUTPUT_FILE = "BENCH_reads.json"

#: CI gate: linearizable-mode knees must sit within this fraction of the
#: model's prediction (the conformance band recorded in the payload).
MODEL_BAND = 0.25


def _config(mode: str) -> Config:
    params = {}
    if mode == "lease":
        params = {"lease_duration": LEASE_DURATION, "max_clock_skew": MAX_CLOCK_SKEW}
    return Config.lan(3, 3, seed=SEED, **params)


def _model_knees() -> dict[str, float]:
    topo = lan(9)
    return {
        "leader": PaxosModel(topo).max_throughput(),
        "lease": LeaseReadPaxosModel(topo, write_ratio=WRITE_RATIO).max_throughput(),
        "quorum": QuorumReadPaxosModel(topo, write_ratio=WRITE_RATIO).max_throughput(),
        "local": RelaxedPaxosModel(topo, write_ratio=WRITE_RATIO).max_throughput(),
    }


def _leader_share(factory: type, config: Config, spec: WorkloadSpec, duration: float) -> float:
    """Busiest node's share of cluster busy time under moderate load —
    the leader-load-reduction observable."""
    deployment = DeploymentFactory(factory, config)()
    bench = ClosedLoopBenchmark(deployment, spec, concurrency=24)
    bench.run(duration, warmup=duration * 0.2, settle=0.05)
    busy = [
        deployment.replica(nid)._server.stats.busy_seconds
        for nid in deployment.config.node_ids
    ]
    total = sum(busy)
    return max(busy) / total if total else 0.0


def run(fast: bool = False, output: str = OUTPUT_FILE, jobs: int = 1) -> ExperimentResult:
    concurrencies = (16, 96) if fast else (8, 32, 64, 128, 192)
    duration = 0.25 if fast else 0.6
    base_spec = WorkloadSpec(keys=1000, write_ratio=WRITE_RATIO)
    result = ExperimentResult(
        experiment="bench_reads",
        title=(
            f"Read-path baseline (9-node LAN, W={WRITE_RATIO}, "
            f"lease={LEASE_DURATION}s, skew<={MAX_CLOCK_SKEW}s)"
        ),
        headers=["protocol", "mode", "clients", "ops/s", "mean_ms", "p99_ms"],
    )
    payload: dict = {
        "experiment": "bench_reads",
        "mode": "fast" if fast else "full",
        "write_ratio": WRITE_RATIO,
        "lease_duration_s": LEASE_DURATION,
        "max_clock_skew_s": MAX_CLOCK_SKEW,
        "model_band": MODEL_BAND,
        "seed": SEED,
        "protocols": {},
    }
    model = _model_knees()
    for name, factory in PROTOCOLS.items():
        knees: dict[str, float] = {}
        shares: dict[str, float] = {}
        curves: dict[str, list[dict]] = {}
        for mode, read_mode in MODES.items():
            spec = replace(base_spec, read_mode=read_mode)
            config = _config(mode)
            make = DeploymentFactory(factory, config)
            points = closed_loop_sweep(
                make,
                spec,
                concurrencies,
                duration=duration,
                warmup=duration * 0.2,
                settle=0.05,
                workers=jobs,
            )
            knees[mode] = max_throughput(points)
            shares[mode] = _leader_share(factory, config, spec, duration)
            curves[mode] = [
                {
                    "clients": p.concurrency,
                    "throughput": round(p.throughput, 1),
                    "mean_ms": round(p.mean_latency_ms, 3),
                    "p99_ms": round(p.p99_latency_ms, 3),
                }
                for p in points
            ]
            for p in points:
                result.rows.append(
                    [name, mode, p.concurrency, round(p.throughput), p.mean_latency_ms, p.p99_latency_ms]
                )
            result.series[f"{name}:{mode}"] = [
                (p.throughput, p.mean_latency_ms) for p in points
            ]
        entry: dict = {"curves": curves}
        for mode in MODES:
            lift = knees[mode] / knees["leader"] if knees["leader"] else 0.0
            conformance = knees[mode] / model[mode] if model[mode] else 0.0
            entry[mode] = {
                "knee": round(knees[mode], 1),
                "lift": round(lift, 3),
                "leader_share": round(shares[mode], 3),
                "model_knee": round(model[mode], 1),
                "model_conformance": round(conformance, 3),
            }
        payload["protocols"][name] = entry
        result.notes.append(
            f"{name}: knee leader {knees['leader']:.0f} -> lease {knees['lease']:.0f} "
            f"({knees['lease'] / knees['leader']:.2f}x), quorum {knees['quorum']:.0f} "
            f"({knees['quorum'] / knees['leader']:.2f}x), local {knees['local']:.0f}; "
            f"leader busy share {shares['leader']:.2f} -> lease {shares['lease']:.2f}, "
            f"quorum {shares['quorum']:.2f}"
        )
    payload["model"] = {mode: round(knee, 1) for mode, knee in model.items()}
    result.notes.append(
        "model knees: "
        + ", ".join(f"{mode} {knee:.0f}" for mode, knee in model.items())
    )
    with open(output, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    result.notes.append(f"wrote {output}")
    return result


def check_no_regression(path: str = OUTPUT_FILE) -> None:
    """CI gate over ``BENCH_reads.json``.

    Fails (``SystemExit``) when a lease or quorum knee drops below the
    leader-read knee, when quorum reads stop reducing the leader's busy
    share (lease reads deliberately keep reads at the leader — their gate
    is the knee lift), or when a linearizable mode's knee drifts outside
    the model conformance band (full runs only — fast runs are too short
    to hold the band).
    """
    if not os.path.exists(path):
        raise SystemExit(f"reads baseline {path!r} not found — run the bench first")
    with open(path) as f:
        payload = json.load(f)
    protocols = payload.get("protocols") or {}
    if not protocols:
        raise SystemExit(f"reads baseline {path!r} has no protocol entries")
    band = payload.get("model_band", MODEL_BAND)
    strict = payload.get("mode") == "full"
    failures = []
    for name, entry in sorted(protocols.items()):
        leader = entry.get("leader", {})
        for mode in ("lease", "quorum"):
            stats = entry.get(mode, {})
            if stats.get("knee", 0.0) < leader.get("knee", 0.0):
                failures.append(
                    f"{name}: {mode} knee {stats.get('knee', 0):.0f} < "
                    f"leader knee {leader.get('knee', 0):.0f}"
                )
            if mode == "quorum" and stats.get("leader_share", 1.0) > leader.get(
                "leader_share", 0.0
            ):
                failures.append(
                    f"{name}: {mode} leader share {stats.get('leader_share', 1.0):.2f} "
                    f"exceeds leader-mode share {leader.get('leader_share', 0.0):.2f}"
                )
            if strict:
                conformance = stats.get("model_conformance", 0.0)
                if not (1.0 - band) <= conformance <= (1.0 + band):
                    failures.append(
                        f"{name}: {mode} knee is {conformance:.2f}x the model "
                        f"(band {1.0 - band:.2f}-{1.0 + band:.2f})"
                    )
    if failures:
        raise SystemExit("read-path regression: " + "; ".join(failures))
    print(
        "reads baseline ok: "
        + ", ".join(
            f"{name} lease {entry['lease']['lift']:.2f}x / quorum {entry['quorum']['lift']:.2f}x"
            for name, entry in sorted(protocols.items())
        )
    )
