"""Overload baseline: goodput past the knee, with and without defenses.

The paper's performance tier stops at the saturation knee; this benchmark
pushes *through* it with the open-loop engine and pins three behaviors:

1. **Graceful degradation (defended).**  A 3-node Paxos LAN with
   admission control (bounded ingress queue, explicit ``Rejected``
   replies) and patient clients, offered 2x its knee: goodput must hold
   at >= 70% of the knee (in practice it plateaus *at* the knee — shed
   requests are cheap), and the surviving history must stay linearizable
   (rejected != lost).

2. **Model conformance.**  The simulated goodput-vs-offered-load curve
   must track :class:`repro.core.overload.FiniteQueueModel` (M/M/1/K
   truncated-geometric loss) within ``MODEL_BAND`` at every point — the
   past-the-knee extension of the paper's Figure 4 cross-validation.

3. **Metastable collapse (undefended).**  The same cluster with no
   admission control and naive clients (tight retransmit timer, huge
   retry cap), offered a *sustainable* 0.8x knee, hit with a transient
   3x arrival burst: retry amplification must drive goodput below 30% of
   the knee and *keep* it there after the burst ends — the
   Bronson-et-al. metastable failure state, predicted by
   :class:`repro.core.overload.RetryAmplificationModel`'s hysteresis
   bound ``mu / max_attempts``.

Results land in ``BENCH_overload.json``; ``check_no_regression()`` is the
CI gate::

    python -m repro.experiments bench_overload [--fast]
    python -c "from repro.experiments.bench_overload import check_no_regression; check_no_regression()"

The cluster is deliberately slowed (``t_in = t_out = 100us``, knee around
1,900 rounds/s) so overload runs stay cheap: what matters here is the
*shape* of the curves, not absolute throughput.
"""

from __future__ import annotations

import json
import os

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.openloop import OpenLoopEngine, PoissonArrivals
from repro.bench.parallel import DeploymentFactory
from repro.bench.sweep import open_loop_sweep
from repro.bench.workload import WorkloadSpec
from repro.core.overload import FiniteQueueModel, RetryAmplificationModel
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.protocols.paxos import MultiPaxos
from repro.sim.server import ServiceProfile

SEED = 42
OUTPUT_FILE = "BENCH_overload.json"

#: Slowed per-node costs: ~1,900 rounds/s knee on 3 nodes keeps the
#: overload runs (which by construction push 2x past the knee) cheap.
PROFILE = ServiceProfile(t_in=100e-6, t_out=100e-6)

#: Admission control for the defended runs.
QUEUE_LIMIT = 32
SHED_POLICY = "reject"
#: Defended clients' patience; also rides on the wire as the deadline.
REQUEST_TIMEOUT = 0.1

#: The naive anti-pattern for the collapse run: retransmit every 20 ms,
#: effectively forever.  Hysteresis bound mu/100 ~ 19 req/s, so ANY
#: realistic offered load is in the metastable region.
NAIVE_RETRY_TIMEOUT = 0.02
NAIVE_MAX_RETRIES = 100

#: The transient trigger: 3x arrivals for half a second.
BURST_MULTIPLIER = 3.0
BURST_DURATION = 0.5

#: Gates (recorded in the payload so the CI check and the JSON agree).
DEFENDED_FLOOR = 0.70  # goodput at 2x knee, as a fraction of the knee
COLLAPSE_CEILING = 0.30  # post-burst goodput without defenses
MODEL_BAND = 0.10  # sim-vs-model relative error, full runs
MODEL_BAND_FAST = 0.15  # short windows are noisier

SETTLE = 0.2
WARMUP = 0.2


def _config(**admission) -> Config:
    return Config.lan(1, 3, seed=SEED, profile=PROFILE, **admission)


def _measure_knee(duration: float) -> float:
    """Empirical capacity: closed-loop saturation on the slowed cluster."""
    deployment = DeploymentFactory(MultiPaxos, _config())()
    bench = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=100), concurrency=48, sites=["LAN"]
    )
    return bench.run(duration, warmup=WARMUP, settle=SETTLE).throughput


def _defended_run(rate: float, duration: float) -> tuple:
    """Open-loop at ``rate`` against the admission-controlled cluster."""
    deployment = DeploymentFactory(
        MultiPaxos, _config(queue_limit=QUEUE_LIMIT, shed_policy=SHED_POLICY)
    )()
    engine = OpenLoopEngine(
        deployment,
        WorkloadSpec(keys=100),
        PoissonArrivals(rate),
        sites=["LAN"],
        request_timeout=REQUEST_TIMEOUT,
    )
    result = engine.run(duration, warmup=WARMUP, settle=SETTLE)
    linearizable, consensus_ok = deployment.verify()
    return result, linearizable, consensus_ok


def _collapse_run(rate: float, duration: float) -> tuple:
    """No admission control, naive retries, one burst; returns the result
    plus the absolute burst window for timeline bookkeeping."""
    deployment = DeploymentFactory(MultiPaxos, _config())()
    engine = OpenLoopEngine(
        deployment,
        WorkloadSpec(keys=100),
        PoissonArrivals(rate),
        sites=["LAN"],
        retry_timeout=NAIVE_RETRY_TIMEOUT,
        max_retries=NAIVE_MAX_RETRIES,
    )
    # Fresh deployment => virtual time starts at 0, so absolute time =
    # settle + warmup + offset-into-measurement.  Burst early enough that
    # most of the window observes the aftermath.
    burst_start = SETTLE + WARMUP + 0.2 * duration
    engine.apply_burst(burst_start, BURST_DURATION, BURST_MULTIPLIER)
    result = engine.run(duration, warmup=WARMUP, settle=SETTLE)
    return result, burst_start, burst_start + BURST_DURATION


def _tail_goodput(result, burst_end: float, measure_start: float) -> float:
    """Mean goodput over timeline buckets that start after the burst ended
    (plus one bucket of slack for in-flight drain)."""
    cutoff = burst_end - measure_start
    tail = [g for t, g in result.goodput_timeline if t > cutoff]
    # Skip the first post-burst bucket: it still drains burst-era work.
    if len(tail) > 1:
        tail = tail[1:]
    return sum(tail) / len(tail) if tail else 0.0


def run(fast: bool = False, output: str = OUTPUT_FILE, jobs: int = 1) -> ExperimentResult:
    knee_duration = 0.3 if fast else 0.5
    curve_duration = 0.5 if fast else 0.8
    defended_duration = 0.6 if fast else 1.0
    collapse_duration = 2.0 if fast else 3.0
    fractions = (0.5, 1.0, 2.0) if fast else (0.5, 0.8, 1.0, 1.5, 2.0)
    band = MODEL_BAND_FAST if fast else MODEL_BAND

    result = ExperimentResult(
        experiment="bench_overload",
        title=(
            f"Overload baseline (3-node LAN, queue_limit={QUEUE_LIMIT}, "
            f"burst x{BURST_MULTIPLIER} for {BURST_DURATION}s)"
        ),
        headers=["run", "offered/knee", "goodput/knee", "rejected", "note"],
    )

    knee = _measure_knee(knee_duration)
    queue_model = FiniteQueueModel(mu=knee, capacity=QUEUE_LIMIT)
    retry_model = RetryAmplificationModel(mu=knee, max_attempts=NAIVE_MAX_RETRIES)

    # -- model conformance curve (defended cluster, sweep of rates) -----
    rates = [fraction * knee for fraction in fractions]
    points = open_loop_sweep(
        DeploymentFactory(
            MultiPaxos, _config(queue_limit=QUEUE_LIMIT, shed_policy=SHED_POLICY)
        ),
        WorkloadSpec(keys=100),
        rates,
        duration=curve_duration,
        warmup=WARMUP,
        settle=SETTLE,
        sites=["LAN"],
        workers=jobs,
        request_timeout=REQUEST_TIMEOUT,
    )
    curve = []
    worst_error = 0.0
    for fraction, point in zip(fractions, points):
        predicted = queue_model.goodput(point.offered_rate)
        error = abs(point.goodput - predicted) / predicted if predicted else 0.0
        worst_error = max(worst_error, error)
        curve.append(
            {
                "offered_over_knee": fraction,
                "offered_rate": round(point.offered_rate, 1),
                "goodput": round(point.goodput, 1),
                "model_goodput": round(predicted, 1),
                "model_error": round(error, 4),
                "rejected": point.rejected,
                "p99_ms": round(point.p99_latency_ms, 3),
            }
        )
        result.rows.append(
            ["curve", fraction, round(point.goodput / knee, 3), point.rejected,
             f"model err {error:.1%}"]
        )
    result.series["goodput_curve"] = [
        (entry["offered_rate"], entry["goodput"]) for entry in curve
    ]
    result.series["model_curve"] = [
        (entry["offered_rate"], entry["model_goodput"]) for entry in curve
    ]

    # -- defended: 2x knee must degrade gracefully and stay safe --------
    defended, linearizable, consensus_ok = _defended_run(2.0 * knee, defended_duration)
    defended_ratio = defended.goodput / knee if knee else 0.0
    result.rows.append(
        ["defended-2x", 2.0, round(defended_ratio, 3), defended.rejected,
         f"linearizable={linearizable}"]
    )

    # -- undefended: sustainable load + burst must collapse and stay ----
    collapse_rate = 0.8 * knee
    collapse, burst_start, burst_end = _collapse_run(collapse_rate, collapse_duration)
    measure_start = SETTLE + WARMUP
    tail = _tail_goodput(collapse, burst_end, measure_start)
    collapse_ratio = tail / knee if knee else 0.0
    result.rows.append(
        ["undefended-burst", 0.8, round(collapse_ratio, 3), collapse.rejected,
         f"post-burst tail (burst {burst_start:.1f}-{burst_end:.1f}s)"]
    )
    result.series["collapse_timeline"] = list(collapse.goodput_timeline)

    payload = {
        "experiment": "bench_overload",
        "mode": "fast" if fast else "full",
        "seed": SEED,
        "knee": round(knee, 1),
        "queue_limit": QUEUE_LIMIT,
        "shed_policy": SHED_POLICY,
        "request_timeout_s": REQUEST_TIMEOUT,
        "burst": {"multiplier": BURST_MULTIPLIER, "duration_s": BURST_DURATION},
        "gates": {
            "defended_floor": DEFENDED_FLOOR,
            "collapse_ceiling": COLLAPSE_CEILING,
            "model_band": band,
        },
        "curve": curve,
        "defended": {
            "offered_over_knee": 2.0,
            "goodput": round(defended.goodput, 1),
            "goodput_over_knee": round(defended_ratio, 3),
            "offered": defended.offered,
            "completed": defended.completed,
            "rejected": defended.rejected,
            "linearizable": linearizable,
            "consensus_ok": consensus_ok,
        },
        "undefended": {
            "offered_over_knee": 0.8,
            "naive_retry_timeout_s": NAIVE_RETRY_TIMEOUT,
            "naive_max_retries": NAIVE_MAX_RETRIES,
            "hysteresis_bound": round(retry_model.hysteresis_bound(), 1),
            "metastable_region": retry_model.is_metastable(collapse_rate),
            "post_burst_goodput": round(tail, 1),
            "post_burst_over_knee": round(collapse_ratio, 3),
            "timeline": [
                {"t": round(t, 3), "goodput": round(g, 1)}
                for t, g in collapse.goodput_timeline
            ],
        },
    }
    with open(output, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")

    result.notes.append(
        f"knee {knee:.0f}/s; defended 2x goodput {defended.goodput:.0f} "
        f"({defended_ratio:.2f}x knee, floor {DEFENDED_FLOOR}), "
        f"linearizable={linearizable}"
    )
    result.notes.append(
        f"undefended 0.8x + burst: post-burst goodput {tail:.0f} "
        f"({collapse_ratio:.2f}x knee, ceiling {COLLAPSE_CEILING}) — "
        f"hysteresis bound {retry_model.hysteresis_bound():.0f}/s"
    )
    result.notes.append(f"worst model error {worst_error:.1%} (band {band:.0%})")
    result.notes.append(f"wrote {output}")
    return result


def check_no_regression(path: str = OUTPUT_FILE) -> None:
    """CI gate over ``BENCH_overload.json``.

    Fails (``SystemExit``) when the defended cluster's goodput at 2x the
    knee drops below ``defended_floor`` of the knee, when the defended
    history stops being linearizable, when the *undefended* cluster fails
    to exhibit metastable collapse (post-burst goodput above
    ``collapse_ceiling`` — the failure mode this benchmark exists to
    demonstrate), or when any curve point drifts outside the model band.
    """
    if not os.path.exists(path):
        raise SystemExit(f"overload baseline {path!r} not found — run the bench first")
    with open(path) as f:
        payload = json.load(f)
    gates = payload.get("gates") or {}
    knee = payload.get("knee") or 0.0
    failures = []

    defended = payload.get("defended") or {}
    floor = gates.get("defended_floor", DEFENDED_FLOOR)
    if defended.get("goodput_over_knee", 0.0) < floor:
        failures.append(
            f"defended goodput {defended.get('goodput_over_knee', 0.0):.2f}x knee "
            f"below floor {floor:.2f}"
        )
    if not defended.get("linearizable", False):
        failures.append("defended run is not linearizable (rejected != lost broken)")

    undefended = payload.get("undefended") or {}
    ceiling = gates.get("collapse_ceiling", COLLAPSE_CEILING)
    if undefended.get("post_burst_over_knee", 1.0) > ceiling:
        failures.append(
            f"undefended post-burst goodput {undefended.get('post_burst_over_knee', 1.0):.2f}x "
            f"knee above ceiling {ceiling:.2f} — metastable collapse not reproduced"
        )

    band = gates.get("model_band", MODEL_BAND)
    for entry in payload.get("curve") or []:
        if entry.get("model_error", 0.0) > band:
            failures.append(
                f"curve point {entry.get('offered_over_knee')}x knee: model error "
                f"{entry.get('model_error', 0.0):.1%} outside band {band:.0%}"
            )

    if failures:
        raise SystemExit("overload regression: " + "; ".join(failures))
    print(
        f"overload baseline ok: knee {knee:.0f}/s, defended 2x "
        f"{defended.get('goodput_over_knee', 0.0):.2f}x, undefended post-burst "
        f"{undefended.get('post_burst_over_knee', 0.0):.2f}x"
    )
