"""Figure 10: modeled performance in WANs.

The analytic models over the paper's 5-region AWS topology (VA, OH, CA,
IR, JP) with clients in every region:

- MultiPaxos and FPaxos with the leader pinned in California;
- EPaxos at conflict 0.3, plus its conflict band [0.02, 0.70];
- WPaxos with locality 0.7.

Headline shape: over 100 ms separates the slowest (Paxos) from the fastest
(WPaxos), and flexible quorums pull FPaxos well below Paxos.
"""

from __future__ import annotations

from repro.core.protocol_models import EPaxosModel, FPaxosModel, PaxosModel, WPaxosModel
from repro.core.topology import aws_wan
from repro.experiments.common import ExperimentResult


def models():
    wan5 = aws_wan()  # one node per region
    wan5x3 = aws_wan(nodes_per_region=3)  # grid for WPaxos
    ca = 2  # index of the California node
    return {
        "MultiPaxos (CA leader)": PaxosModel(wan5, leader=ca),
        "FPaxos (CA leader)": FPaxosModel(wan5, q2=2, leader=ca),
        "EPaxos (conflict=0.3)": EPaxosModel(wan5, conflict=0.3),
        "EPaxos (conflict=0.02)": EPaxosModel(wan5, conflict=0.02),
        "EPaxos (conflict=0.70)": EPaxosModel(wan5, conflict=0.70),
        "WPaxos (locality=0.7)": WPaxosModel(
            wan5x3, zones=5, nodes_per_zone=3, locality=0.7
        ),
    }


def run(fast: bool = False) -> ExperimentResult:
    points = 6 if fast else 25
    result = ExperimentResult(
        experiment="fig10",
        title="Modeled WAN performance, 5 AWS regions (latency ms vs rounds/s)",
        headers=["protocol", "throughput", "latency_ms"],
    )
    all_models = models()
    lows: dict[str, float] = {}
    for name, model in all_models.items():
        curve = model.curve(points=points, max_fraction=0.95)
        for p in curve:
            result.rows.append([name, round(p.throughput), round(p.latency_ms, 2)])
        result.series[name] = [(p.throughput, p.latency_ms) for p in curve]
        lows[name] = curve[0].latency_ms
    spread = lows["MultiPaxos (CA leader)"] - lows["WPaxos (locality=0.7)"]
    result.notes.append(
        "low-load latency: " + ", ".join(f"{n}={v:.1f}ms" for n, v in lows.items())
    )
    result.notes.append(
        f"Paxos - WPaxos latency spread = {spread:.1f} ms (paper: >100 ms)"
    )
    return result
