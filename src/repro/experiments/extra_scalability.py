"""Scalability tier (paper section 4.2): throughput vs cluster size and
dataset size.

Not a numbered figure in the paper, but one of the four benchmark tiers the
Paxi benchmarker supports: "we support benchmarking scalability by adding
more nodes into system configuration and by increasing the size of the
dataset (K)".  We sweep N for MultiPaxos and WPaxos (model + measured) and
K for WPaxos (per-object state grows, throughput should not collapse).
"""

from __future__ import annotations

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import PaxosModel, WPaxosModel
from repro.core.topology import lan
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wpaxos import WPaxos


def run(fast: bool = False) -> ExperimentResult:
    sizes = ((1, 3), (3, 3)) if fast else ((1, 3), (1, 5), (3, 3), (3, 5), (5, 5))
    duration = 0.25 if fast else 0.6
    result = ExperimentResult(
        experiment="extra_scalability",
        title="Scalability: saturation throughput vs cluster size (LAN)",
        headers=["N", "paxos_model", "paxos_measured", "wpaxos_model", "wpaxos_measured"],
    )
    for zones, per_zone in sizes:
        n = zones * per_zone
        paxos_model = PaxosModel(lan(n)).max_throughput()
        wpaxos_model = (
            WPaxosModel(lan(n), zones=zones, nodes_per_zone=per_zone, locality=1 / zones).max_throughput()
            if zones > 1
            else float("nan")
        )
        paxos_measured = _measure(MultiPaxos, zones, per_zone, duration)
        wpaxos_measured = _measure(WPaxos, zones, per_zone, duration) if zones > 1 else float("nan")
        result.rows.append(
            [n, round(paxos_model), round(paxos_measured), _maybe_round(wpaxos_model), _maybe_round(wpaxos_measured)]
        )
        result.series.setdefault("Paxos model", []).append((n, paxos_model))
        result.series.setdefault("Paxos measured", []).append((n, paxos_measured))
    # Dataset-size sweep: K should not change throughput materially.
    key_counts = (100, 10_000) if fast else (100, 1_000, 10_000, 50_000)
    for keys in key_counts:
        measured = _measure(WPaxos, 3, 3, duration, keys=keys)
        result.series.setdefault("WPaxos vs K", []).append((keys, measured))
        result.notes.append(f"WPaxos 3x3 with K={keys}: {measured:.0f} ops/s")
    return result


def _measure(factory, zones: int, per_zone: int, duration: float, keys: int = 1000) -> float:
    deployment = Deployment(Config.lan(zones, per_zone, seed=81)).start(factory)
    bench = ClosedLoopBenchmark(deployment, WorkloadSpec(keys=keys), concurrency=128)
    return bench.run(duration=duration, warmup=duration * 0.2, settle=0.05).throughput


def _maybe_round(value: float):
    return value if value != value else round(value)  # NaN-safe
