"""Table 4: the distilled parameter each protocol family explores."""

from __future__ import annotations

from repro.core.advisor import PARAMETERS_EXPLORED
from repro.experiments.common import ExperimentResult


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table4",
        title="Parameters explored by the protocols",
        headers=["parameter", "protocols"],
    )
    for parameter, protocols in PARAMETERS_EXPLORED.items():
        result.rows.append([parameter, ", ".join(protocols)])
    return result
