"""Figure 12: modeled EPaxos maximum throughput vs conflict ratio.

Five nodes in five regions.  EPaxos capacity falls as the conflict ratio
grows — "as much as 40% degradation in capacity between no conflict and
full conflict" — while single-leader Paxos is a flat line that EPaxos
approaches around c = 1.
"""

from __future__ import annotations

from repro.core.protocol_models import EPaxosModel, PaxosModel
from repro.core.topology import aws_wan
from repro.experiments.common import ExperimentResult


def run(fast: bool = False) -> ExperimentResult:
    wan5 = aws_wan()
    conflicts = (0.0, 0.5, 1.0) if fast else tuple(c / 10 for c in range(11))
    paxos_cap = PaxosModel(wan5).max_throughput()
    result = ExperimentResult(
        experiment="fig12",
        title="EPaxos max throughput vs conflict (5 nodes / 5 regions)",
        headers=["conflict_%", "epaxos_rounds_per_s", "paxos_rounds_per_s"],
    )
    caps = []
    for conflict in conflicts:
        cap = EPaxosModel(wan5, conflict=conflict).max_throughput()
        caps.append(cap)
        result.rows.append([round(conflict * 100), round(cap), round(paxos_cap)])
        result.series.setdefault("EPaxos", []).append((conflict * 100, cap))
        result.series.setdefault("Paxos", []).append((conflict * 100, paxos_cap))
    degradation = 1 - caps[-1] / caps[0]
    result.notes.append(
        f"degradation c=0 -> c=1: {degradation * 100:.0f}% (paper: ~40%)"
    )
    result.notes.append(
        f"EPaxos(c=1)/Paxos = {caps[-1] / paxos_cap:.2f} "
        "(paper: EPaxos stays at/above the Paxos line)"
    )
    return result
