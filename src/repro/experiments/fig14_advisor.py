"""Figure 14: the protocol-selection flowchart, exercised end to end."""

from __future__ import annotations

from repro.core.advisor import all_paths
from repro.experiments.common import ExperimentResult


def run(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig14",
        title="Consensus protocol selection flowchart (all paths)",
        headers=["consensus", "wan", "locality", "read-heavy", "dynamic", "dc-failure", "recommendation"],
    )
    for profile, rec in all_paths():
        result.rows.append(
            [
                profile.needs_consensus,
                profile.wan,
                profile.workload_has_locality,
                profile.read_heavy,
                profile.locality_is_dynamic,
                profile.datacenter_failure_is_concern,
                " / ".join(rec.protocols),
            ]
        )
    return result
