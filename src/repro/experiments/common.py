"""Shared infrastructure for the per-figure experiment drivers.

Every driver exposes ``run(fast=False) -> ExperimentResult``.  ``fast``
shrinks durations/sweeps so the driver doubles as a pytest-benchmark
target; the full mode reproduces the paper-scale sweep.  Results carry
printable rows plus named (x, y) series and can be dumped to CSV.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bench.benchmarker import BenchmarkResult, ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.message import Command

Factory = Callable[[Deployment, Any], Any]


@dataclass
class ExperimentResult:
    """Printable outcome of one table/figure reproduction."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def to_text(self) -> str:
        widths = [
            max(len(str(h)), *(len(_fmt(row[i])) for row in self.rows)) if self.rows else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(str(h).rjust(w) for h, w in zip(self.headers, widths)))
        for row in self.rows:
            lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def write_csv(self, directory: str = "results") -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment}.csv")
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(self.headers)
            writer.writerows(self.rows)
        return path


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def run_sim_benchmark(
    factory,
    config: Config,
    spec,
    concurrency: int,
    duration: float,
    warmup: float,
    settle: float = 0.5,
    sites: list[str] | None = None,
    retry_timeout: float | None = None,
    prime: Callable[[Deployment], None] | None = None,
) -> tuple[Deployment, BenchmarkResult]:
    """One fresh deployment + closed-loop run, with optional priming
    (e.g. seeding hot-key ownership at a particular region)."""
    deployment = Deployment(config).start(factory)
    if prime is not None:
        prime(deployment)
    bench = ClosedLoopBenchmark(deployment, spec, concurrency, sites, retry_timeout)
    result = bench.run(duration, warmup, settle)
    return deployment, result


def prime_key_at(deployment: Deployment, site: str, key, settle: float = 0.5) -> None:
    """Write ``key`` once from ``site`` so its ownership/token starts there
    (the paper pins the conflict object and the initial object placement
    to the Ohio region)."""
    client = deployment.new_client(site=site)
    client.invoke(Command.put(key, f"prime-{site}"))
    deployment.run_for(settle)


def region_spec(
    region_index: int,
    keys_per_region: int = 100,
    conflict_ratio: float = 0.0,
    conflict_key=777_777,
    write_ratio: float = 0.5,
) -> WorkloadSpec:
    """Per-region key ranges with an optional shared hot key — the paper's
    WAN conflict workload (section 5.3)."""
    return WorkloadSpec(
        keys=keys_per_region,
        min_key=1_000_000 * (region_index + 1),
        write_ratio=write_ratio,
        conflict_ratio=conflict_ratio,
        conflict_key=conflict_key,
    )


def locality_spec(
    region_index: int,
    keys_total: int = 180,
    sigma: float | None = None,
    write_ratio: float = 0.5,
) -> WorkloadSpec:
    """The paper's locality workload: one shared key pool, per-region
    normal popularity with distinct means (Figure 6).

    The default sigma puts region means one third of the key space apart
    with visibly overlapping tails, like the paper's Figure 6: most keys
    are region-local, a boundary band is shared between neighbours."""
    if sigma is None:
        sigma = keys_total / 9.0
    mu = keys_total * (2 * region_index + 1) / 6.0  # evenly spaced means
    return WorkloadSpec(
        keys=keys_total,
        write_ratio=write_ratio,
        distribution="normal",
        mu=mu,
        sigma=sigma,
    )
