"""Table 1: queue types, assumptions, and their waiting times.

Evaluates all four queue approximations — M/M/1, M/D/1, M/G/1, G/G/1 —
over a utilization sweep at the calibrated Paxos service rate, printing the
Wq each formula yields (the quantitative content behind Table 1).
"""

from __future__ import annotations

from repro.core.queueing import ALL_MODELS, make_model
from repro.core.service import paxos_service_time
from repro.experiments.common import ExperimentResult

ASSUMPTIONS = {
    "M/M/1": ("Poisson process rate lambda", "Exponential distribution rate mu"),
    "M/D/1": ("Poisson process", "Constant s, rate mu = 1/s"),
    "M/G/1": ("Poisson process", "General distribution"),
    "G/G/1": ("General distribution", "General distribution"),
}


def run(fast: bool = False) -> ExperimentResult:
    service_time = paxos_service_time(9)
    service_sigma = service_time * 0.2  # moderate service-time variability
    utilizations = (0.3, 0.6, 0.9) if fast else (0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99)
    result = ExperimentResult(
        experiment="table1",
        title="Queue types and waiting times (Wq, ms) at mu=1/ts(Paxos, N=9)",
        headers=["model", "arrivals", "service", *[f"rho={u}" for u in utilizations]],
    )
    mu = 1.0 / service_time
    for name in ALL_MODELS:
        model = make_model(name, service_time, service_sigma)
        waits = [model.wait_time(u * mu) * 1e3 for u in utilizations]
        arrivals, service = ASSUMPTIONS[name]
        result.rows.append([name, arrivals, service, *[round(w, 4) for w in waits]])
        result.series[name] = [(u, w) for u, w in zip(utilizations, waits)]
    result.notes.append(f"service time ts = {service_time * 1e6:.1f} us, mu = {mu:.0f}/s")
    return result
