"""Evaluating a NEW protocol on the framework: Mencius.

The paper's conclusion: "We anticipate that the simple exposition and
analysis we provide will lead the way to the development of new protocols."
This experiment demonstrates the full loop for a protocol the paper did
not evaluate — Mencius, implemented in ~250 lines on the Paxi port — using
the same two-pronged method:

1. place it in the unified theory (Eq. 3: L = (Q + L - 2)/L with L = N);
2. run the analytic model and the implementation side by side in LAN and
   WAN, against the paper's protocols.

Expected shape: Mencius clears the single-leader bottleneck like EPaxos but
without the dependency penalty (high LAN throughput), yet in WANs every
command waits for the farthest replica's skips — slower than WPaxos's
local commits and even than EPaxos's fast quorum.
"""

from __future__ import annotations

from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.core.load import load, majority
from repro.core.protocol_models import MenciusModel, PaxosModel
from repro.core.topology import lan
from repro.experiments.common import ExperimentResult, run_sim_benchmark
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.epaxos import EPaxos
from repro.protocols.mencius import Mencius
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wpaxos import WPaxos

REGIONS = ("VA", "OH", "CA")


def run(fast: bool = False) -> ExperimentResult:
    concurrencies = (16, 128) if fast else (4, 16, 64, 128, 192)
    duration = 0.25 if fast else 0.6
    result = ExperimentResult(
        experiment="extra_mencius",
        title="A new protocol on the framework: Mencius vs the paper's protocols",
        headers=["protocol", "setting", "metric", "value"],
    )
    # 1. The unified theory (Eq. 3, thrifty): L = N leaders, majority quorum.
    n = 9
    mencius_load = load(n, majority(n), 0.0)
    result.rows.append(["Mencius", "Eq. 3 (N=9)", "load", round(mencius_load, 3)])
    result.rows.append(["Paxos", "Eq. 3 (N=9)", "load", round(load(1, majority(n)), 3)])
    # 2. Model: capacity and LAN latency.
    model = MenciusModel(lan(9))
    result.rows.append(["Mencius", "model LAN", "max ops/s", round(model.max_throughput())])
    result.rows.append(
        ["Paxos", "model LAN", "max ops/s", round(PaxosModel(lan(9)).max_throughput())]
    )
    # 3. Measured LAN saturation, Mencius vs Paxos and EPaxos.
    peaks = {}
    for name, factory in (("Mencius", Mencius), ("Paxos", MultiPaxos), ("EPaxos", EPaxos)):
        def make(f=factory):
            return Deployment(Config.lan(3, 3, seed=85)).start(f)

        points = closed_loop_sweep(
            make, WorkloadSpec(keys=1000), concurrencies, duration=duration,
            warmup=duration * 0.2, settle=0.05,
        )
        peaks[name] = max_throughput(points)
        result.rows.append([name, "measured LAN", "max ops/s", round(peaks[name])])
        result.series[name] = [(p.throughput, p.mean_latency_ms) for p in points]
    # 4. Measured WAN latency, Mencius vs WPaxos (the trade-off).
    wan_duration = 1.0 if fast else 2.0
    for name, factory in (("Mencius", Mencius), ("WPaxos fz=0", WPaxos)):
        cfg = Config.wan(REGIONS, 3, seed=86)
        _dep, bench = run_sim_benchmark(
            factory, cfg, WorkloadSpec(keys=60), concurrency=6,
            duration=wan_duration, warmup=wan_duration / 2, settle=0.5,
        )
        result.rows.append([name, "measured WAN", "mean ms", round(bench.latency.mean, 2)])
    result.notes.append(
        f"model vs measured capacity: {model.max_throughput():.0f} vs {peaks['Mencius']:.0f} "
        "(the framework's two prongs agree on the new protocol too)"
    )
    result.notes.append(
        "Mencius clears the single-leader bottleneck without EPaxos's "
        "dependency penalty, but pays the farthest replica's delay in WANs"
    )
    return result
