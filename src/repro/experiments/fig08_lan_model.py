"""Figure 8: modeled performance in LANs.

Two panels from the analytic model at N = 9:

- (a) latency vs throughput up to each protocol's saturation point;
- (b) the low-throughput zoom, where network delay and service time —
  not queueing — dominate.

Protocols, as in the paper's figure: MultiPaxos, FPaxos (|q2| = 3), EPaxos
(moderate conflict), WPaxos (3 leaders, uniform workload -> locality 1/3).
"""

from __future__ import annotations

from repro.core.protocol_models import EPaxosModel, FPaxosModel, PaxosModel, WPaxosModel
from repro.core.topology import lan
from repro.experiments.common import ExperimentResult

EPAXOS_CONFLICT = 0.3


def models():
    topo = lan(9)
    return {
        "MultiPaxos": PaxosModel(topo),
        "FPaxos |q2|=3": FPaxosModel(topo, q2=3),
        f"EPaxos c={EPAXOS_CONFLICT}": EPaxosModel(topo, conflict=EPAXOS_CONFLICT),
        "WPaxos": WPaxosModel(topo, zones=3, nodes_per_zone=3, locality=1 / 3),
    }


def run(fast: bool = False) -> ExperimentResult:
    points = 6 if fast else 25
    result = ExperimentResult(
        experiment="fig08",
        title="Modeled LAN performance, N=9 (latency ms vs rounds/s)",
        headers=["protocol", "throughput", "latency_ms", "panel"],
    )
    all_models = models()
    for name, model in all_models.items():
        curve = model.curve(points=points, max_fraction=0.97)
        for p in curve:
            result.rows.append([name, round(p.throughput), round(p.latency_ms, 3), "a"])
        result.series[name] = [(p.throughput, p.latency_ms) for p in curve]
        # Panel (b): latency at low-to-moderate load only.
        zoom = model.curve(points=points, max_fraction=0.60)
        for p in zoom:
            result.rows.append([name, round(p.throughput), round(p.latency_ms, 3), "b"])
        result.series[f"{name} (zoom)"] = [(p.throughput, p.latency_ms) for p in zoom]

    paxos_peak = all_models["MultiPaxos"].max_throughput()
    wpaxos_peak = all_models["WPaxos"].max_throughput()
    result.notes.append(
        f"max throughput: "
        + ", ".join(f"{n}={m.max_throughput():.0f}/s" for n, m in all_models.items())
    )
    result.notes.append(
        f"WPaxos/MultiPaxos capacity ratio = {wpaxos_peak / paxos_peak:.2f} "
        "(paper model: ~1.55x; sub-linear in 3 leaders either way)"
    )
    result.notes.append(
        "FPaxos - MultiPaxos latency at low load = "
        f"{all_models['MultiPaxos'].latency_ms(1000) - all_models['FPaxos |q2|=3'].latency_ms(1000):.3f} ms "
        "(paper: ~0.03 ms)"
    )
    return result
