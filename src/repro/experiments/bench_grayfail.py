"""Gray-failure resilience: fail-slow leader, detection, planned handoff.

A crashed leader is the *easy* failure — followers stop hearing from it,
elect, and move on.  A **gray** failure is the hard one: the leader keeps
answering, just six times slower, so naive timeout-based failover never
fires while the whole group runs at the degraded node's pace
(``repro.core.grayfail.degraded_leader_capacity``).  This benchmark pins
the three-way comparison on a 5-node LAN under closed-loop saturation:

1. **Healthy knee** — baseline capacity with the detector armed.  The
   run doubles as the false-positive gate: zero handoffs may occur on a
   clean cluster.

2. **Undetected fail-slow** — the leader's CPU degrades 6x mid-run with
   only the fixed election timeout watching.  Heartbeats keep flowing
   (late, but flowing), so no failover happens and throughput collapses
   to <= ``UNDETECTED_CEILING`` of the knee — tracking the window-blended
   capacity model within ``MODEL_BAND``.

3. **Detected + handoff** — same fault with the φ-accrual/slowdown
   detector enabled: followers observe stretched heartbeat emission
   delays, vote the leader degraded, and the leader hands its lease to a
   healthy successor with no availability gap.  Throughput must recover
   to >= ``RECOVERED_FLOOR`` of the knee, complete at least one planned
   handoff, and the full history must stay linearizable.

MultiPaxos is always gated; the full run repeats the matrix for Raft
(same gates — the handoff protocol is term-based there but the economics
are identical).  Results land in ``BENCH_grayfail.json``;
``check_no_regression()`` is the CI gate::

    python -m repro.experiments bench_grayfail [--fast]
    python -c "from repro.experiments.bench_grayfail import check_no_regression; check_no_regression()"

The cluster uses the slowed service profile (``t_in = t_out = 100us``,
~1,400 rounds/s knee on 5 nodes) so a 6x CPU degradation dwarfs network
latency and the runs stay cheap.
"""

from __future__ import annotations

import json
import os

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.parallel import DeploymentFactory
from repro.bench.workload import WorkloadSpec
from repro.core.grayfail import (
    degraded_leader_capacity,
    slowdown_detection_heartbeats,
)
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft
from repro.sim.server import ServiceProfile

OUTPUT_FILE = "BENCH_grayfail.json"

#: Per-protocol seeds (leader election order is seed-dependent; these
#: place the initial leader on node 1.1 so the fault targets it).
SEEDS = {"multipaxos": 21, "raft": 33}

#: Slowed per-node costs: CPU dominates the round trip, so a CPU-factor
#: fault translates almost directly into a throughput factor.
PROFILE = ServiceProfile(t_in=100e-6, t_out=100e-6)

#: The gray fault: the initial leader's CPU slows 6x at t=0.9s and stays
#: slow past the end of the measurement window.
VICTIM = NodeID(1, 1)
CPU_FACTOR = 6.0
FAULT_AT = 0.9
FAULT_DURATION = 4.0

#: Closed-loop saturation (same shape as bench_overload's knee probe).
CONCURRENCY = 48
DURATION = 2.3
WARMUP = 0.2
SETTLE = 0.2

#: Gates (recorded in the payload so the CI check and the JSON agree).
UNDETECTED_CEILING = 0.40  # fail-slow with no detector, fraction of knee
RECOVERED_FLOOR = 0.85  # fail-slow with detector + handoff
MAX_CLEAN_HANDOFFS = 0  # false-positive budget on the healthy run
MODEL_BAND = 0.25  # undetected run vs blended capacity model

#: Detector defaults the model section reports against.
SLOW_RATIO = 2.5
HEARTBEAT_INTERVAL = 0.02


def _blended_model_fraction() -> float:
    """Window-averaged capacity fraction the *undetected* run should hit:
    full speed until the fault lands, ``1/CPU_FACTOR`` after (the leader
    is the sequencer, so the group inherits its slowdown whole)."""
    measure_start = SETTLE + WARMUP
    healthy = max(0.0, FAULT_AT - measure_start) / DURATION
    degraded_capacity = degraded_leader_capacity(1.0, CPU_FACTOR)
    return healthy + (1.0 - healthy) * degraded_capacity


def _run_cell(protocol, seed: int, detector: bool, fail_slow: bool) -> dict:
    """One benchmark cell: optionally degrade the leader, saturate the
    cluster, verify, and count handoffs."""
    params = dict(lease_duration=0.2, max_clock_skew=0.005)
    if detector:
        params["detector"] = True
    else:
        params["election_timeout"] = 0.15
    deployment = DeploymentFactory(
        protocol, Config.lan(1, 5, seed=seed, profile=PROFILE, **params)
    )()
    if fail_slow:
        deployment.fail_slow(
            VICTIM, duration=FAULT_DURATION, cpu_factor=CPU_FACTOR, at=FAULT_AT
        )
    bench = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=100), concurrency=CONCURRENCY, sites=["LAN"]
    )
    result = bench.run(DURATION, warmup=WARMUP, settle=SETTLE)
    linearizable, consensus_ok = deployment.verify()
    handoffs = sum(r.handoffs_completed for r in deployment.replicas.values())
    return {
        "throughput": round(result.throughput, 1),
        "handoffs": handoffs,
        "linearizable": linearizable,
        "consensus_ok": consensus_ok,
    }


def _protocol_matrix(protocol, seed: int, result: ExperimentResult) -> dict:
    name = protocol.__name__.lower()
    clean = _run_cell(protocol, seed, detector=True, fail_slow=False)
    knee = clean["throughput"]
    undetected = _run_cell(protocol, seed, detector=False, fail_slow=True)
    detected = _run_cell(protocol, seed, detector=True, fail_slow=True)

    undetected_ratio = undetected["throughput"] / knee if knee else 0.0
    detected_ratio = detected["throughput"] / knee if knee else 0.0
    model_fraction = _blended_model_fraction()
    model_error = (
        abs(undetected_ratio - model_fraction) / model_fraction
        if model_fraction
        else 0.0
    )

    for label, cell, ratio in (
        ("healthy", clean, 1.0),
        ("fail-slow, fixed timeout", undetected, undetected_ratio),
        ("fail-slow, detector+handoff", detected, detected_ratio),
    ):
        result.rows.append(
            [
                name,
                label,
                cell["throughput"],
                round(ratio, 3),
                cell["handoffs"],
                "ok" if cell["linearizable"] and cell["consensus_ok"] else "VIOLATION",
            ]
        )

    return {
        "seed": seed,
        "knee": knee,
        "clean": clean,
        "undetected": {**undetected, "over_knee": round(undetected_ratio, 3),
                       "model_over_knee": round(model_fraction, 3),
                       "model_error": round(model_error, 4)},
        "detected": {**detected, "over_knee": round(detected_ratio, 3)},
    }


def run(fast: bool = False, output: str = OUTPUT_FILE, jobs: int = 1) -> ExperimentResult:
    del jobs  # cells share the victim node; sequential keeps them honest
    protocols = [(MultiPaxos, SEEDS["multipaxos"])]
    if not fast:
        protocols.append((Raft, SEEDS["raft"]))

    result = ExperimentResult(
        experiment="bench_grayfail",
        title=(
            f"Gray-failure resilience (5-node LAN, leader CPU x{CPU_FACTOR:.0f} "
            f"at t={FAULT_AT}s, closed-loop c={CONCURRENCY})"
        ),
        headers=["protocol", "run", "throughput", "over_knee", "handoffs", "safety"],
    )

    matrices = {}
    for protocol, seed in protocols:
        matrices[protocol.__name__.lower()] = _protocol_matrix(protocol, seed, result)

    detect_hbs = slowdown_detection_heartbeats(CPU_FACTOR, SLOW_RATIO)
    payload = {
        "experiment": "bench_grayfail",
        "mode": "fast" if fast else "full",
        "fault": {
            "victim": str(VICTIM),
            "cpu_factor": CPU_FACTOR,
            "at_s": FAULT_AT,
            "duration_s": FAULT_DURATION,
        },
        "gates": {
            "undetected_ceiling": UNDETECTED_CEILING,
            "recovered_floor": RECOVERED_FLOOR,
            "max_clean_handoffs": MAX_CLEAN_HANDOFFS,
            "model_band": MODEL_BAND,
        },
        "model": {
            "degraded_leader_fraction": round(1.0 / CPU_FACTOR, 4),
            "blended_window_fraction": round(_blended_model_fraction(), 4),
            "slowdown_detection_heartbeats": detect_hbs,
            "slowdown_detection_latency_s": round(
                detect_hbs * HEARTBEAT_INTERVAL * CPU_FACTOR, 3
            ),
        },
        "protocols": matrices,
    }
    with open(output, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")

    for name, matrix in matrices.items():
        result.notes.append(
            f"{name}: knee {matrix['knee']:.0f}/s; undetected fail-slow "
            f"{matrix['undetected']['over_knee']:.2f}x (ceiling {UNDETECTED_CEILING}); "
            f"detector+handoff {matrix['detected']['over_knee']:.2f}x "
            f"(floor {RECOVERED_FLOOR}), {matrix['detected']['handoffs']} handoff(s)"
        )
    result.notes.append(
        f"model: slowdown channel fires after ~{detect_hbs} stretched heartbeats"
    )
    result.notes.append(f"wrote {output}")
    return result


def check_no_regression(path: str = OUTPUT_FILE) -> None:
    """CI gate over ``BENCH_grayfail.json``.

    Fails (``SystemExit``) when an undetected fail-slow leader does *not*
    collapse throughput (the gray-failure hazard this bench demonstrates),
    when the detector+handoff run fails to recover to the floor, completes
    no handoff, or breaks linearizability, when the clean run hands off
    spuriously, or when the undetected collapse drifts off the capacity
    model.
    """
    if not os.path.exists(path):
        raise SystemExit(f"grayfail baseline {path!r} not found — run the bench first")
    with open(path) as f:
        payload = json.load(f)
    gates = payload.get("gates") or {}
    ceiling = gates.get("undetected_ceiling", UNDETECTED_CEILING)
    floor = gates.get("recovered_floor", RECOVERED_FLOOR)
    clean_budget = gates.get("max_clean_handoffs", MAX_CLEAN_HANDOFFS)
    band = gates.get("model_band", MODEL_BAND)
    failures = []

    protocols = payload.get("protocols") or {}
    if "multipaxos" not in protocols:
        failures.append("multipaxos matrix missing from payload")
    for name, matrix in protocols.items():
        clean = matrix.get("clean") or {}
        undetected = matrix.get("undetected") or {}
        detected = matrix.get("detected") or {}
        if clean.get("handoffs", 0) > clean_budget:
            failures.append(
                f"{name}: {clean.get('handoffs')} handoff(s) on a healthy cluster "
                f"(false-positive budget {clean_budget})"
            )
        if undetected.get("over_knee", 0.0) > ceiling:
            failures.append(
                f"{name}: undetected fail-slow at {undetected.get('over_knee', 0.0):.2f}x "
                f"knee above ceiling {ceiling:.2f} — gray failure not reproduced"
            )
        if undetected.get("model_error", 0.0) > band:
            failures.append(
                f"{name}: undetected collapse off the capacity model by "
                f"{undetected.get('model_error', 0.0):.1%} (band {band:.0%})"
            )
        if detected.get("over_knee", 0.0) < floor:
            failures.append(
                f"{name}: detector+handoff recovered only "
                f"{detected.get('over_knee', 0.0):.2f}x knee (floor {floor:.2f})"
            )
        if detected.get("handoffs", 0) < 1:
            failures.append(f"{name}: no planned handoff completed under fail-slow")
        for label, cell in (("clean", clean), ("undetected", undetected),
                            ("detected", detected)):
            if not (cell.get("linearizable", False) and cell.get("consensus_ok", False)):
                failures.append(f"{name}/{label}: safety violation")

    if failures:
        raise SystemExit("grayfail regression: " + "; ".join(failures))
    summary = ", ".join(
        f"{name} undetected {m.get('undetected', {}).get('over_knee', 0.0):.2f}x / "
        f"recovered {m.get('detected', {}).get('over_knee', 0.0):.2f}x"
        for name, m in protocols.items()
    )
    print(f"grayfail baseline ok: {summary}")
