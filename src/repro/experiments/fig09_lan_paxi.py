"""Figure 9: experimental performance in the LAN (Paxi).

Closed-loop saturation sweeps for the five protocols of the paper's LAN
experiment — Paxos, FPaxos, WPaxos, EPaxos, WanKeeper — on 9 nodes with a
uniformly random workload over 1000 keys and 50% reads.  The headline
ordering to reproduce: WanKeeper > WPaxos > Paxos >= FPaxos > EPaxos in
max throughput, with the single-leader protocols bottlenecked near 8k/s.
"""

from __future__ import annotations

from repro.bench.parallel import DeploymentFactory
from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.protocols.epaxos import EPaxos
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

PROTOCOLS = {
    "Paxos": MultiPaxos,
    "FPaxos": FPaxos,
    "WPaxos": WPaxos,
    "EPaxos": EPaxos,
    "WanKeeper": WanKeeper,
}


def run(fast: bool = False, jobs: int = 1) -> ExperimentResult:
    concurrencies = (8, 64, 160) if fast else (1, 4, 16, 48, 96, 160, 224)
    duration = 0.25 if fast else 0.8
    spec = WorkloadSpec(keys=1000, write_ratio=0.5)
    result = ExperimentResult(
        experiment="fig09",
        title="Experimental LAN performance (9 nodes, uniform 1000 keys, 50% reads)",
        headers=["protocol", "clients", "ops/s", "mean_ms", "p99_ms"],
    )
    peaks: dict[str, float] = {}
    for name, factory in PROTOCOLS.items():
        make = DeploymentFactory(factory, Config.lan(3, 3, seed=55))
        points = closed_loop_sweep(
            make,
            spec,
            concurrencies,
            duration=duration,
            warmup=duration * 0.2,
            settle=0.05,
            workers=jobs,
        )
        for p in points:
            result.rows.append(
                [name, p.concurrency, round(p.throughput), p.mean_latency_ms, p.p99_latency_ms]
            )
        result.series[name] = [(p.throughput, p.mean_latency_ms) for p in points]
        peaks[name] = max_throughput(points)
    ordering = sorted(peaks, key=peaks.get, reverse=True)
    result.notes.append(
        "max throughput: " + ", ".join(f"{n}={peaks[n]:.0f}/s" for n in ordering)
    )
    result.notes.append(
        f"ordering: {' > '.join(ordering)} "
        "(paper: WanKeeper > WPaxos > Paxos ~ FPaxos > EPaxos)"
    )
    result.notes.append(
        f"WPaxos/Paxos = {peaks['WPaxos'] / peaks['Paxos']:.2f} (paper ~1.55x, sub-linear)"
    )
    result.notes.append(_model_cross_check(peaks))
    return result


def _model_cross_check(peaks: dict[str, float]) -> str:
    """Analytic capacities next to the measured ones (the two-pronged
    cross-validation the paper's abstract promises)."""
    from repro.core.protocol_models import (
        PaxosModel,
        WanKeeperModel,
        WPaxosModel,
    )
    from repro.core.topology import lan

    topo = lan(9)
    modeled = {
        "Paxos": PaxosModel(topo).max_throughput(),
        "WPaxos": WPaxosModel(topo, 3, 3, locality=1 / 3).max_throughput(),
        "WanKeeper": WanKeeperModel(topo, 3, 3, locality=1 / 3).max_throughput(),
    }
    parts = [
        f"{name}: model {modeled[name]:.0f} vs measured {peaks[name]:.0f}"
        for name in modeled
    ]
    return "model cross-check (same ordering expected): " + "; ".join(parts)
