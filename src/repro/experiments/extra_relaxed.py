"""Relaxed consistency (paper section 7's future work), measured.

Three read policies over the same 3-region MultiPaxos deployment with the
leader in Ohio:

- **strong**: reads go through consensus (linearizable);
- **relaxed**: reads are served by the nearest replica's local state
  machine (bounded staleness);
- **session**: relaxed reads carrying version tokens (read-your-writes +
  monotonic reads).

For each policy we report read/write latency per region, which guarantees
hold (checked, not assumed), the worst observed staleness, and the
analytic staleness bound from :class:`repro.core.relaxed.RelaxedPaxosModel`.
"""

from __future__ import annotations

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.checkers.linearizability import check_history
from repro.checkers.staleness import check_bounded_staleness, check_session
from repro.core.relaxed import RelaxedPaxosModel
from repro.core.topology import aws_wan
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos

REGIONS = ("VA", "OH", "CA")


def _run_policy(policy: str, duration: float, warmup: float):
    relaxed = policy != "strong"
    cfg = Config.wan(
        REGIONS, 3, seed=29, relaxed_reads=relaxed, leader=NodeID(2, 1)
    )
    deployment = Deployment(cfg).start(MultiPaxos)
    bench = ClosedLoopBenchmark(
        deployment, WorkloadSpec(keys=5, write_ratio=0.5), concurrency=9
    )
    for client, _generator in bench._drivers:
        client.local_reads = relaxed
        client.session_reads = policy == "session"
    bench.run(duration=duration, warmup=warmup, settle=0.5)
    ops = deployment.history.snapshot()
    reads = [op for op in deployment.history.operations if op.is_read]
    writes = [op for op in deployment.history.operations if not op.is_read]
    read_ms = sum(op.latency for op in reads) / max(1, len(reads)) * 1e3
    write_ms = sum(op.latency for op in writes) / max(1, len(writes)) * 1e3
    staleness = check_bounded_staleness(ops, delta=float("inf"))
    return {
        "read_ms": read_ms,
        "write_ms": write_ms,
        "linearizable": check_history(ops).ok,
        "session_ok": check_session(ops).ok,
        "max_staleness_ms": staleness.max_staleness * 1e3,
    }


def run(fast: bool = False) -> ExperimentResult:
    duration = 1.5 if fast else 4.0
    warmup = 0.5 if fast else 1.5
    result = ExperimentResult(
        experiment="extra_relaxed",
        title="Relaxed consistency: latency vs guarantees (3 regions, OH leader)",
        headers=[
            "policy",
            "read_ms",
            "write_ms",
            "linearizable",
            "session",
            "max_staleness_ms",
        ],
    )
    for policy in ("strong", "relaxed", "session"):
        outcome = _run_policy(policy, duration, warmup)
        result.rows.append(
            [
                policy,
                round(outcome["read_ms"], 2),
                round(outcome["write_ms"], 2),
                outcome["linearizable"],
                outcome["session_ok"],
                round(outcome["max_staleness_ms"], 2),
            ]
        )
        result.series[policy] = [(0.0, outcome["read_ms"]), (1.0, outcome["max_staleness_ms"])]
    model = RelaxedPaxosModel(
        aws_wan(REGIONS, 3), write_ratio=0.5, heartbeat_interval=0.02, leader=3
    )
    bound_ms = max(model.staleness_bound(site).delta for site in REGIONS) * 1e3
    result.notes.append(
        f"model staleness bound: heartbeat + one-way delay = {bound_ms:.1f} ms "
        "(every measured staleness must sit below it)"
    )
    result.notes.append(
        f"model relaxed capacity gain: writes-only leader load -> "
        f"{model.max_throughput():.0f}/s vs strong "
        f"{model.max_throughput() * model.write_ratio:.0f}/s"
    )
    return result
