"""Figure 13: locality-aware protocols under the locality workload.

The paper's locality experiment (section 5.3): WPaxos, WanKeeper, and the
augmented Vertical Paxos across VA/OH/CA with per-region normal key
popularity, all objects initially placed in Ohio, fz=0, and the
three-consecutive access policy.  Two views:

- (a) average latency per region — WanKeeper is optimal in Ohio (the
  master keeps contested tokens) at the expense of the other regions;
  WPaxos and VPaxos are balanced and nearly identical;
- (b) the latency CDF over all requests — WanKeeper shows more WAN-priced
  requests than WPaxos/VPaxos.  The paper's panel also overlays Paxos,
  EPaxos, and WPaxos fz=2 for reference; we include them too.
"""

from __future__ import annotations

from repro.bench.stats import cdf
from repro.experiments.common import ExperimentResult, locality_spec, run_sim_benchmark
from repro.paxi.config import Config
from repro.paxi.message import Command
from repro.paxi.ids import NodeID
from repro.protocols.epaxos import EPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

REGIONS = ("VA", "OH", "CA")


def _prime_all_objects_in_ohio(deployment, keys_total: int) -> None:
    """The paper starts the experiment 'by initially placing all objects in
    the Ohio region'."""
    client = deployment.new_client(site="OH")
    for key in range(keys_total):
        client.invoke(Command.put(key, f"seed{key}"))
    deployment.run_for(1.0)


def run(fast: bool = False) -> ExperimentResult:
    keys_total = 90 if fast else 180
    duration = 2.0 if fast else 6.0
    warmup = 2.0 if fast else 4.0
    concurrency = 12
    protocols = {
        "WPaxos fz=0": (WPaxos, {"fz": 0}),
        "WanKeeper": (WanKeeper, {}),
        "VPaxos": (VPaxos, {}),
    }
    if not fast:
        protocols.update(
            {
                "Paxos": (MultiPaxos, {"leader": NodeID(2, 1)}),
                "EPaxos": (EPaxos, {}),
                "WPaxos fz=2": (WPaxos, {"fz": 2}),
            }
        )
    result = ExperimentResult(
        experiment="fig13",
        title="Locality workload: per-region mean latency (ms) and CDFs",
        headers=["protocol", *REGIONS, "global_p50", "global_p95"],
    )
    for name, (factory, params) in protocols.items():
        cfg = Config.wan(REGIONS, 3, seed=61, **params)
        spec = {
            site: locality_spec(i, keys_total=keys_total)
            for i, site in enumerate(REGIONS)
        }
        _deployment, bench = run_sim_benchmark(
            factory,
            cfg,
            spec,
            concurrency=concurrency,
            duration=duration,
            warmup=warmup,
            settle=0.3,
            prime=lambda dep: _prime_all_objects_in_ohio(dep, keys_total),
        )
        means = [
            bench.per_site[site].mean if site in bench.per_site else float("nan")
            for site in REGIONS
        ]
        result.rows.append(
            [name, *[round(m, 2) for m in means], round(bench.latency.p50, 2), round(bench.latency.p95, 2)]
        )
        result.series[f"{name} CDF"] = cdf(bench.latencies_ms, points=50)
        for site, mean in zip(REGIONS, means):
            result.series.setdefault(f"{name}@{site}", []).append((0.0, mean))
    result.notes.append("all objects initially in OH; normal per-region popularity; fz=0")
    return result
