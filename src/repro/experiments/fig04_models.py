"""Figure 4: the four queueing models versus a reference Paxi/Paxos run.

The paper drives its Paxos implementation at controlled arrival rates and
overlays the latency-throughput curves predicted by M/M/1, M/D/1, M/G/1,
and G/G/1; M/D/1 and M/G/1 track the implementation almost exactly, which
is why the rest of the analysis uses M/D/1.  We reproduce the comparison
with open-loop (Poisson) load against the simulated Paxos.
"""

from __future__ import annotations

from repro.bench.benchmarker import OpenLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import PaxosModel
from repro.core.queueing import ALL_MODELS, make_model
from repro.core.topology import lan
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos


def run(fast: bool = False) -> ExperimentResult:
    model = PaxosModel(lan(9))
    service_time = model.round_service_time()
    service_sigma = service_time * 0.2
    network_ms = model.network_delay_ms()
    peak = model.max_throughput()
    fractions = (0.4, 0.7, 0.9) if fast else (0.2, 0.35, 0.5, 0.625, 0.75, 0.85, 0.92, 0.97)
    duration = 0.3 if fast else 1.0

    result = ExperimentResult(
        experiment="fig04",
        title="Queueing models vs Paxi/Paxos reference (latency ms vs ops/s)",
        headers=["throughput", *ALL_MODELS, "Paxi"],
    )
    for fraction in fractions:
        rate = peak * fraction
        row: list[float] = [round(rate)]
        for name in ALL_MODELS:
            queue = make_model(name, service_time, service_sigma)
            latency_ms = (queue.wait_time(rate) + service_time) * 1e3 + network_ms
            row.append(round(latency_ms, 3))
            result.series.setdefault(name, []).append((rate, latency_ms))
        measured = _measure_paxi(rate, duration)
        row.append(round(measured, 3))
        result.series.setdefault("Paxi", []).append((rate, measured))
        result.rows.append(row)

    errors = {
        name: _mean_abs_error(result.series[name], result.series["Paxi"])
        for name in ALL_MODELS
    }
    best = min(errors, key=errors.get)
    result.notes.append(
        "mean |model - Paxi| ms: "
        + ", ".join(f"{name}={err:.3f}" for name, err in errors.items())
    )
    result.notes.append(f"closest model: {best} (paper adopts M/D/1; M/G/1 ties)")
    return result


def _measure_paxi(rate: float, duration: float) -> float:
    deployment = Deployment(Config.lan(3, 3, seed=21)).start(MultiPaxos)
    bench = OpenLoopBenchmark(deployment, WorkloadSpec(keys=1000), rate=rate, sites=["LAN"])
    outcome = bench.run(duration=duration, warmup=duration * 0.3, settle=0.05)
    return outcome.latency.mean


def _mean_abs_error(a: list[tuple[float, float]], b: list[tuple[float, float]]) -> float:
    return sum(abs(ya - yb) for (_x, ya), (_x2, yb) in zip(a, b)) / len(a)
