"""Figure 11: protocol latency under a conflict workload, per region.

The paper's WAN conflict experiment (section 5.3): 3 regions (VA, OH, CA)
x 3 nodes, one designated "hot" object placed in Ohio, and a dial for the
fraction of requests that target it.  Per-region average latency is plotted
for WPaxos fz=0, WPaxos fz=1, WanKeeper, EPaxos, VPaxos, and Paxos.

Shapes to reproduce:

1. fz=0 protocols (WPaxos fz=0, WanKeeper, VPaxos) behave the same in each
   panel: local commits for non-interfering commands, a forwarding trip to
   Ohio for interfering ones;
2. the hot object's home region (Ohio) keeps low, steady latency;
3. among region-fault-tolerant protocols, WPaxos fz=1 is best until 100%
   conflict where it approaches Paxos;
4. EPaxos latency grows nonlinearly with the conflict ratio.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.common import (
    ExperimentResult,
    prime_key_at,
    region_spec,
    run_sim_benchmark,
)
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.message import Command
from repro.protocols.epaxos import EPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

REGIONS = ("VA", "OH", "CA")
HOT_KEY = 777_777


def _configs(seed: int) -> dict[str, tuple[Callable, Config]]:
    return {
        "WPaxos fz=0": (WPaxos, Config.wan(REGIONS, 3, seed=seed, fz=0)),
        "WPaxos fz=1": (WPaxos, Config.wan(REGIONS, 3, seed=seed, fz=1)),
        "WanKeeper": (WanKeeper, Config.wan(REGIONS, 3, seed=seed)),
        "EPaxos": (EPaxos, Config.wan(REGIONS, 3, seed=seed)),
        "VPaxos": (VPaxos, Config.wan(REGIONS, 3, seed=seed)),
        # The paper's Paxos leader sits with the hot object's region (OH).
        "Paxos": (MultiPaxos, Config.wan(REGIONS, 3, seed=seed, leader=None)),
    }


def _prime(deployment: Deployment, keys_per_region: int) -> None:
    """Pin the hot object in Ohio and pre-place each region's local key
    range in its own region, mirroring the settled state the paper's
    60-second runs reach."""
    prime_key_at(deployment, "OH", HOT_KEY, settle=0.0)
    for i, site in enumerate(REGIONS):
        client = deployment.new_client(site=site)
        base = 1_000_000 * (i + 1)
        for key in range(base, base + keys_per_region):
            client.invoke(Command.put(key, f"prime-{site}"))
    deployment.run_for(2.0)


def run(fast: bool = False) -> ExperimentResult:
    conflicts = (0.0, 0.5, 1.0) if fast else (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    duration = 1.5 if fast else 3.0
    warmup = 1.0 if fast else 2.0
    keys_per_region = 40 if fast else 60
    result = ExperimentResult(
        experiment="fig11",
        title="Per-region latency (ms) under the conflict workload",
        headers=["protocol", "conflict_%", *REGIONS],
    )
    from repro.paxi.ids import NodeID

    for name, (factory, base_cfg) in _configs(41).items():
        for conflict in conflicts:
            params = dict(base_cfg.params)
            if name == "Paxos":
                params["leader"] = NodeID(2, 1)  # OH hosts the single leader
            cfg = Config(
                topology=base_cfg.topology,
                node_ids=base_cfg.node_ids,
                profile=base_cfg.profile,
                seed=base_cfg.seed + int(conflict * 100),
                params={k: v for k, v in params.items() if v is not None},
            )
            spec = {
                site: region_spec(
                    i, keys_per_region=keys_per_region, conflict_ratio=conflict, conflict_key=HOT_KEY
                )
                for i, site in enumerate(REGIONS)
            }
            deployment, bench = run_sim_benchmark(
                factory,
                cfg,
                spec,
                concurrency=6,
                duration=duration,
                warmup=warmup,
                settle=0.3,
                prime=lambda dep: _prime(dep, keys_per_region),
            )
            means = [
                bench.per_site.get(site).mean if site in bench.per_site else float("nan")
                for site in REGIONS
            ]
            result.rows.append([name, round(conflict * 100), *[round(m, 2) for m in means]])
            for site, mean in zip(REGIONS, means):
                result.series.setdefault(f"{name}@{site}", []).append((conflict * 100, mean))
    result.notes.append("hot object primed in OH; per-region client pools with local key ranges")
    return result
