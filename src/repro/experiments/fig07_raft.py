"""Figure 7: Paxi/Paxos versus etcd/Raft.

The paper validates Paxi by showing its Paxos implementation and etcd's
Raft converge to similar maximum throughput (~8,000 ops/s with 9 replicas),
with Paxi a bit faster below saturation.  We run our Raft implementation —
the etcd stand-in, on the same substrate — against MultiPaxos.
"""

from __future__ import annotations

from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft


def run(fast: bool = False) -> ExperimentResult:
    concurrencies = (2, 16, 96) if fast else (1, 2, 4, 8, 16, 32, 64, 96, 128)
    duration = 0.25 if fast else 1.0
    spec = WorkloadSpec(keys=1000)
    systems = {
        "Paxi/Paxos": MultiPaxos,
        "etcd/Raft (reimpl.)": Raft,
    }
    result = ExperimentResult(
        experiment="fig07",
        title="Single-leader consensus: Paxi/Paxos vs Raft (9 replicas, LAN)",
        headers=["system", "clients", "ops/s", "mean_ms", "p99_ms"],
    )
    peaks = {}
    for name, factory in systems.items():
        def make(f=factory):
            return Deployment(Config.lan(3, 3, seed=33)).start(f)

        points = closed_loop_sweep(
            make, spec, concurrencies, duration=duration, warmup=duration * 0.2, settle=0.05
        )
        for p in points:
            result.rows.append([name, p.concurrency, round(p.throughput), p.mean_latency_ms, p.p99_latency_ms])
        result.series[name] = [(p.throughput, p.mean_latency_ms) for p in points]
        peaks[name] = max_throughput(points)
    ratio = peaks["etcd/Raft (reimpl.)"] / peaks["Paxi/Paxos"]
    result.notes.append(
        f"max throughput: Paxos={peaks['Paxi/Paxos']:.0f}/s, "
        f"Raft={peaks['etcd/Raft (reimpl.)']:.0f}/s (ratio {ratio:.2f}; paper: both ~8000/s)"
    )
    return result
