"""Dynamic locality: a follow-the-sun workload (flowchart's last branch).

The paper's Figure-14 flowchart asks "Is locality in the workload
dynamic?" and routes dynamic-locality deployments to the adaptive
multi-leader protocols.  We measure exactly that scenario: one shared set
of objects whose active region rotates VA -> OH -> CA (follow-the-sun).
Each phase is split into an *adapting* half and a *settled* half:

- WPaxos / VPaxos / WanKeeper migrate ownership after three consecutive
  accesses, so the settled half returns to ~local latency in every phase;
- single-leader Paxos cannot adapt: each region pays its fixed distance to
  the leader forever.
"""

from __future__ import annotations

from repro.bench.benchmarker import ClosedLoopBenchmark
from repro.bench.workload import WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.protocols.paxos import MultiPaxos
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

REGIONS = ("VA", "OH", "CA")
KEYS = 40


def run(fast: bool = False) -> ExperimentResult:
    phase = 1.5 if fast else 3.0
    concurrency = 6
    protocols = {
        "WPaxos fz=0": (WPaxos, {"fz": 0}),
        "VPaxos": (VPaxos, {}),
        "WanKeeper": (WanKeeper, {}),
        "Paxos (OH leader)": (MultiPaxos, {"leader": NodeID(2, 1)}),
    }
    result = ExperimentResult(
        experiment="extra_dynamic",
        title="Follow-the-sun workload: adapting vs settled latency (ms) per phase",
        headers=["protocol", "phase", "region", "adapting_ms", "settled_ms"],
    )
    for name, (factory, params) in protocols.items():
        cfg = Config.wan(REGIONS, 3, seed=51, **params)
        deployment = Deployment(cfg).start(factory)
        deployment.run_for(0.5)
        spec = WorkloadSpec(keys=KEYS, write_ratio=0.5)
        for index, region in enumerate(REGIONS):
            halves = []
            for _half in range(2):
                bench = ClosedLoopBenchmark(deployment, spec, concurrency, sites=[region])
                outcome = bench.run(duration=phase / 2, warmup=0.0, settle=0.0)
                halves.append(outcome.latency.mean)
            result.rows.append([name, index + 1, region, round(halves[0], 2), round(halves[1], 2)])
            result.series.setdefault(name, []).append((float(index + 1), halves[1]))
    adaptive_settled = [
        row[4]
        for row in result.rows
        if row[0] != "Paxos (OH leader)" and row[1] > 1
    ]
    result.notes.append(
        "settled-half latency after a phase change, adaptive protocols: "
        f"{min(adaptive_settled):.2f}-{max(adaptive_settled):.2f} ms "
        "(ownership followed the sun); Paxos stays at each region's fixed "
        "distance to its leader"
    )
    return result
