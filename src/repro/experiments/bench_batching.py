"""Batching benchmark baseline: throughput-at-knee, batched vs unbatched.

Closed-loop saturation sweeps for the single-leader protocols (Paxos,
FPaxos, Raft) on a 9-node LAN, once with batching off and once with the
leader coalescing up to B commands per log entry (plus a bounded
pipeline).  The headline number this baseline tracks: with B = 16 a
MultiPaxos leader's knee throughput rises ≥ 3x, because the quorum
exchange amortizes across the batch (batched Equations 1-6,
:mod:`repro.core.load`).

The results land in ``BENCH_batching.json`` so CI can diff the baseline::

    python -m repro.experiments bench_batching [--fast]

``check_no_regression()`` is the CI gate: it fails if any protocol's
batched knee falls below its unbatched knee.
"""

from __future__ import annotations

import json
import os

from repro.bench.parallel import DeploymentFactory
from repro.bench.sweep import closed_loop_sweep, max_throughput
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import BatchedPaxosModel, PaxosModel
from repro.core.topology import lan
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.protocols.fpaxos import FPaxos
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

PROTOCOLS = {
    "paxos": MultiPaxos,
    "fpaxos": FPaxos,
    "raft": Raft,
}

BATCH_SIZE = 16
BATCH_WINDOW = 0.001  # seconds of virtual time
PIPELINE_DEPTH = 8
SEED = 55
OUTPUT_FILE = "BENCH_batching.json"


def _config(batched: bool) -> Config:
    if batched:
        return Config.lan(
            3,
            3,
            seed=SEED,
            batch_size=BATCH_SIZE,
            batch_window=BATCH_WINDOW,
            pipeline_depth=PIPELINE_DEPTH,
        )
    return Config.lan(3, 3, seed=SEED)


def _model_knees() -> dict[str, float]:
    topo = lan(9)
    return {
        "unbatched": PaxosModel(topo).max_throughput(),
        "batched": BatchedPaxosModel(
            topo, batch_size=BATCH_SIZE, batch_window=BATCH_WINDOW
        ).max_throughput(),
    }


def run(fast: bool = False, output: str = OUTPUT_FILE, jobs: int = 1) -> ExperimentResult:
    concurrencies = (16, 96) if fast else (8, 32, 64, 128, 192)
    duration = 0.25 if fast else 0.6
    spec = WorkloadSpec(keys=1000, write_ratio=0.5)
    result = ExperimentResult(
        experiment="bench_batching",
        title=(
            f"Batching baseline (9-node LAN, B={BATCH_SIZE}, "
            f"window={BATCH_WINDOW * 1e3:.0f}ms, pipeline={PIPELINE_DEPTH})"
        ),
        headers=["protocol", "mode", "clients", "ops/s", "mean_ms", "p99_ms"],
    )
    payload: dict = {
        "experiment": "bench_batching",
        "mode": "fast" if fast else "full",
        "batch_size": BATCH_SIZE,
        "batch_window_s": BATCH_WINDOW,
        "pipeline_depth": PIPELINE_DEPTH,
        "seed": SEED,
        "protocols": {},
    }
    model = _model_knees()
    for name, factory in PROTOCOLS.items():
        knees: dict[str, float] = {}
        curves: dict[str, list[dict]] = {}
        for mode in ("unbatched", "batched"):
            make = DeploymentFactory(factory, _config(batched=(mode == "batched")))
            points = closed_loop_sweep(
                make,
                spec,
                concurrencies,
                duration=duration,
                warmup=duration * 0.2,
                settle=0.05,
                workers=jobs,
            )
            knees[mode] = max_throughput(points)
            curves[mode] = [
                {
                    "clients": p.concurrency,
                    "throughput": round(p.throughput, 1),
                    "mean_ms": round(p.mean_latency_ms, 3),
                    "p99_ms": round(p.p99_latency_ms, 3),
                }
                for p in points
            ]
            for p in points:
                result.rows.append(
                    [name, mode, p.concurrency, round(p.throughput), p.mean_latency_ms, p.p99_latency_ms]
                )
            result.series[f"{name}:{mode}"] = [
                (p.throughput, p.mean_latency_ms) for p in points
            ]
        speedup = knees["batched"] / knees["unbatched"] if knees["unbatched"] else 0.0
        payload["protocols"][name] = {
            "knee_unbatched": round(knees["unbatched"], 1),
            "knee_batched": round(knees["batched"], 1),
            "speedup": round(speedup, 3),
            "curves": curves,
        }
        result.notes.append(
            f"{name}: knee {knees['unbatched']:.0f} -> {knees['batched']:.0f} ops/s "
            f"({speedup:.2f}x)"
        )
    payload["model"] = {
        "knee_unbatched": round(model["unbatched"], 1),
        "knee_batched": round(model["batched"], 1),
        "speedup": round(model["batched"] / model["unbatched"], 3),
    }
    result.notes.append(
        f"model (batched Table 2): knee {model['unbatched']:.0f} -> "
        f"{model['batched']:.0f} ops/s ({model['batched'] / model['unbatched']:.2f}x)"
    )
    with open(output, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    result.notes.append(f"wrote {output}")
    return result


def check_no_regression(path: str = OUTPUT_FILE) -> None:
    """CI gate: batched throughput must not fall below unbatched.

    Raises ``SystemExit`` with a readable message on regression (or a
    missing/malformed baseline file), so it can run as
    ``python -c "from repro.experiments.bench_batching import check_no_regression; check_no_regression()"``.
    """
    if not os.path.exists(path):
        raise SystemExit(f"batching baseline {path!r} not found — run the bench first")
    with open(path) as f:
        payload = json.load(f)
    protocols = payload.get("protocols") or {}
    if not protocols:
        raise SystemExit(f"batching baseline {path!r} has no protocol entries")
    failures = []
    for name, entry in sorted(protocols.items()):
        batched = entry.get("knee_batched", 0.0)
        unbatched = entry.get("knee_unbatched", 0.0)
        if batched < unbatched:
            failures.append(
                f"{name}: batched knee {batched:.0f} < unbatched {unbatched:.0f}"
            )
    if failures:
        raise SystemExit("batching regression: " + "; ".join(failures))
    print(
        "batching baseline ok: "
        + ", ".join(
            f"{name} {entry['speedup']:.2f}x" for name, entry in sorted(protocols.items())
        )
    )
