"""Sharding benchmark baseline: multi-group capacity vs one group.

Closed-loop saturation sweeps of batched MultiPaxos, once as a single
consensus group and once as a 4-shard :class:`repro.shard.cluster.
ShardedCluster` (uniform keys, hash placement, leaders spread).  Each
shard has its own leader bottleneck, so aggregate knee throughput should
approach ``shards * C1`` — the headline this baseline tracks is knee
ratio ≥ 3x at 4 shards, with the measured knee agreeing with
:class:`repro.core.sharding.ShardedCapacityModel` to within a few percent.

A second sweep holds concurrency at the knee and dials up the cross-shard
transaction mix (two-key 2PC writes), exposing the coordination tax the
model prices at ``(1 - f) + f * txn_rounds`` consensus rounds per logical
operation.

The results land in ``BENCH_sharding.json`` so CI can diff the baseline::

    python -m repro.experiments bench_sharding [--fast]

``check_no_regression()`` is the CI gate: knee ratio and model agreement
must hold, and the transaction mix must actually cost capacity.
"""

from __future__ import annotations

import json
import os

from repro.bench.shard_bench import (
    ShardedClosedLoopBenchmark,
    ShardedDeploymentFactory,
    sharded_closed_loop_sweep,
)
from repro.bench.sweep import max_throughput
from repro.bench.workload import WorkloadSpec
from repro.core.protocol_models import BatchedPaxosModel
from repro.core.sharding import ShardedCapacityModel
from repro.core.topology import lan
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.protocols.paxos import MultiPaxos
from repro.shard.placement import ShardSpec

SHARDS = 4
BUCKETS = 64
BATCH_SIZE = 16
BATCH_WINDOW = 0.001  # seconds of virtual time
PIPELINE_DEPTH = 8
SEED = 63
TXN_KEYS = 2
TXN_RATIOS = (0.0, 0.1, 0.25)
OUTPUT_FILE = "BENCH_sharding.json"

#: CI gates: 4 shards must deliver >= 3x one group's knee, and the
#: measured 4-shard knee must sit within this fraction of the analytic
#: capacity (|sim - model| / model).
MIN_KNEE_RATIO = 3.0
MODEL_TOLERANCE = 0.06


def _config() -> Config:
    return Config.lan(
        3,
        3,
        seed=SEED,
        batch_size=BATCH_SIZE,
        batch_window=BATCH_WINDOW,
        pipeline_depth=PIPELINE_DEPTH,
    )


def _spec(count: int) -> ShardSpec:
    return ShardSpec(count=count, buckets=BUCKETS, leaders="spread")


def _model(shards: int, f: float = 0.0) -> ShardedCapacityModel:
    group = BatchedPaxosModel(lan(9), batch_size=BATCH_SIZE, batch_window=BATCH_WINDOW)
    return ShardedCapacityModel(group, shards=shards, cross_shard_ratio=f)


def _txn_mix_point(concurrency: int, txn_ratio: float, duration: float) -> dict:
    """One fixed-concurrency run with a 2PC mix (module-level so a future
    parallel fan-out can pickle it)."""
    cluster = ShardedDeploymentFactory(MultiPaxos, _config(), _spec(SHARDS))()
    bench = ShardedClosedLoopBenchmark(
        cluster,
        WorkloadSpec(keys=1000, write_ratio=0.5),
        concurrency=concurrency,
        txn_ratio=txn_ratio,
        txn_keys=TXN_KEYS,
    )
    result = bench.run(duration, warmup=duration * 0.2, settle=0.05)
    return {
        "txn_ratio": txn_ratio,
        "measured_f": round(bench.cross_shard_fraction(), 4),
        "throughput": round(result.throughput, 1),
        "mean_ms": round(result.latency.mean, 3),
        "txns_committed": bench.txns_committed,
        "txns_aborted": bench.txns_aborted,
    }


def run(fast: bool = False, output: str = OUTPUT_FILE, jobs: int = 1) -> ExperimentResult:
    single_concurrencies = (16, 96) if fast else (32, 96, 192)
    sharded_concurrencies = (64, 512) if fast else (128, 384, 768)
    mix_concurrency = 256 if not fast else 128
    duration = 0.2 if fast else 0.5
    spec = WorkloadSpec(keys=1000, write_ratio=0.5)
    result = ExperimentResult(
        experiment="bench_sharding",
        title=(
            f"Sharding baseline ({SHARDS} groups x 9-node LAN, batched "
            f"MultiPaxos B={BATCH_SIZE}, hash placement over {BUCKETS} buckets)"
        ),
        headers=["shards", "clients", "txn_ratio", "ops/s", "mean_ms", "p99_ms"],
    )
    payload: dict = {
        "experiment": "bench_sharding",
        "mode": "fast" if fast else "full",
        "shards": SHARDS,
        "buckets": BUCKETS,
        "batch_size": BATCH_SIZE,
        "batch_window_s": BATCH_WINDOW,
        "pipeline_depth": PIPELINE_DEPTH,
        "txn_keys": TXN_KEYS,
        "seed": SEED,
    }

    knees: dict[str, float] = {}
    for label, count, concurrencies in (
        ("single", 1, single_concurrencies),
        ("sharded", SHARDS, sharded_concurrencies),
    ):
        make = ShardedDeploymentFactory(MultiPaxos, _config(), _spec(count))
        points = sharded_closed_loop_sweep(
            make,
            spec,
            concurrencies,
            duration=duration,
            warmup=duration * 0.2,
            settle=0.05,
            workers=jobs,
        )
        knees[label] = max_throughput(points)
        payload[label] = {
            "knee": round(knees[label], 1),
            "curve": [
                {
                    "clients": p.concurrency,
                    "throughput": round(p.throughput, 1),
                    "mean_ms": round(p.mean_latency_ms, 3),
                    "p99_ms": round(p.p99_latency_ms, 3),
                }
                for p in points
            ],
        }
        for p in points:
            result.rows.append(
                [count, p.concurrency, 0.0, round(p.throughput), p.mean_latency_ms, p.p99_latency_ms]
            )
        result.series[label] = [(p.throughput, p.mean_latency_ms) for p in points]

    knee_ratio = knees["sharded"] / knees["single"] if knees["single"] else 0.0
    model_single = _model(1).max_throughput()
    model_sharded = _model(SHARDS).max_throughput()
    agreement = abs(knees["sharded"] - model_sharded) / model_sharded
    payload["knee_ratio"] = round(knee_ratio, 3)
    payload["model"] = {
        "knee_single": round(model_single, 1),
        "knee_sharded": round(model_sharded, 1),
        "agreement": round(agreement, 4),
        "txn_rounds": _model(SHARDS).txn_rounds,
    }
    result.notes.append(
        f"knee: 1 group {knees['single']:.0f} -> {SHARDS} groups "
        f"{knees['sharded']:.0f} ops/s ({knee_ratio:.2f}x)"
    )
    result.notes.append(
        f"model: {model_sharded:.0f} ops/s at {SHARDS} shards "
        f"(sim within {agreement * 100:.1f}%)"
    )

    mix: list[dict] = []
    for ratio in TXN_RATIOS if not fast else TXN_RATIOS[:2]:
        point = _txn_mix_point(mix_concurrency, ratio, duration)
        point["model_capacity"] = round(
            _model(SHARDS, point["measured_f"]).max_throughput(), 1
        )
        mix.append(point)
        result.rows.append(
            [SHARDS, mix_concurrency, ratio, round(point["throughput"]), point["mean_ms"], "-"]
        )
        result.notes.append(
            f"txn mix f={point['measured_f']:.3f}: {point['throughput']:.0f} ops/s "
            f"({point['txns_committed']} committed, {point['txns_aborted']} aborted)"
        )
    payload["txn_mix"] = mix
    result.series["txn_mix"] = [(p["measured_f"], p["throughput"]) for p in mix]

    with open(output, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    result.notes.append(f"wrote {output}")
    return result


def check_no_regression(path: str = OUTPUT_FILE) -> None:
    """CI gate over the committed baseline.

    Fails (``SystemExit``) when the 4-shard knee drops below
    ``MIN_KNEE_RATIO`` x the single-group knee, when the measured knee
    drifts outside ``MODEL_TOLERANCE`` of the analytic capacity, or when a
    heavier 2PC mix somehow beats the pure single-key workload (which
    would mean the coordination tax — or the accounting — vanished).
    Runs as ``python -c "from repro.experiments.bench_sharding import
    check_no_regression; check_no_regression()"``.
    """
    if not os.path.exists(path):
        raise SystemExit(f"sharding baseline {path!r} not found — run the bench first")
    with open(path) as f:
        payload = json.load(f)
    single = (payload.get("single") or {}).get("knee", 0.0)
    sharded = (payload.get("sharded") or {}).get("knee", 0.0)
    if not single or not sharded:
        raise SystemExit(f"sharding baseline {path!r} is missing knee entries")
    failures = []
    ratio = sharded / single
    if ratio < MIN_KNEE_RATIO:
        failures.append(
            f"knee ratio {ratio:.2f}x < required {MIN_KNEE_RATIO:.1f}x "
            f"({sharded:.0f} vs {single:.0f} ops/s)"
        )
    model = (payload.get("model") or {}).get("knee_sharded", 0.0)
    if model:
        agreement = abs(sharded - model) / model
        if agreement > MODEL_TOLERANCE:
            failures.append(
                f"sim {sharded:.0f} vs model {model:.0f} ops/s: "
                f"{agreement * 100:.1f}% apart (tolerance {MODEL_TOLERANCE * 100:.0f}%)"
            )
    mix = payload.get("txn_mix") or []
    if len(mix) >= 2:
        pure = mix[0]["throughput"]
        for point in mix[1:]:
            if point["txn_ratio"] > 0 and point["throughput"] > pure * 1.05:
                failures.append(
                    f"txn mix f={point['measured_f']} throughput "
                    f"{point['throughput']:.0f} exceeds pure workload {pure:.0f}"
                )
    if failures:
        raise SystemExit("sharding regression: " + "; ".join(failures))
    print(
        f"sharding baseline ok: {ratio:.2f}x knee at {payload['shards']} shards, "
        f"sim-model gap {abs(sharded - model) / model * 100:.1f}%"
    )
