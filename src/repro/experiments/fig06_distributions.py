"""Figure 6: key-popularity distributions of the workload generator.

The paper illustrates the four benchmark distributions — uniform, zipfian,
normal, exponential — over a pool of K records, and explains how locality
is produced by giving each region its own normal mean.  We regenerate the
figure's data: popularity histograms for each distribution, plus the
overlap between two regions' normal distributions (the paper's visual
definition of locality: "the non-overlapping area under the probability
density functions").
"""

from __future__ import annotations

import random
from collections import Counter

from repro.bench.workload import WorkloadGenerator, WorkloadSpec
from repro.experiments.common import ExperimentResult, locality_spec

K = 100
BUCKETS = 10


def _popularity(spec: WorkloadSpec, samples: int, seed: int = 5) -> list[float]:
    generator = WorkloadGenerator(spec, random.Random(seed))
    counts = Counter(generator.next_command().key for _ in range(samples))
    bucket_size = K // BUCKETS
    return [
        sum(counts.get(k, 0) for k in range(b * bucket_size, (b + 1) * bucket_size)) / samples
        for b in range(BUCKETS)
    ]


def run(fast: bool = False) -> ExperimentResult:
    samples = 2_000 if fast else 20_000
    specs = {
        "uniform": WorkloadSpec(keys=K, distribution="uniform"),
        "zipfian": WorkloadSpec(keys=K, distribution="zipfian"),
        "normal": WorkloadSpec(keys=K, distribution="normal", mu=K / 2, sigma=K / 10),
        "exponential": WorkloadSpec(keys=K, distribution="exponential", exponential_scale=K / 8),
    }
    result = ExperimentResult(
        experiment="fig06",
        title=f"Key popularity by distribution (K={K}, {BUCKETS} buckets)",
        headers=["distribution", *[f"[{b * 10}-{b * 10 + 9}]" for b in range(BUCKETS)]],
    )
    for name, spec in specs.items():
        shares = _popularity(spec, samples)
        result.rows.append([name, *[round(s, 3) for s in shares]])
        result.series[name] = [(float(b), s) for b, s in enumerate(shares)]
    # Locality: overlap between two adjacent regions' normal popularity.
    region_a = _popularity(locality_spec(0, keys_total=K), samples)
    region_b = _popularity(locality_spec(1, keys_total=K), samples)
    overlap = sum(min(a, b) for a, b in zip(region_a, region_b))
    result.rows.append(["region-0 (normal)", *[round(s, 3) for s in region_a]])
    result.rows.append(["region-1 (normal)", *[round(s, 3) for s in region_b]])
    result.notes.append(
        f"region-0/region-1 popularity overlap = {overlap:.2f} "
        f"(locality l ~ {1 - overlap:.2f}; the paper defines locality as the "
        "non-overlapping area under the densities)"
    )
    return result
