"""Fault-recovery baseline: MTTR and availability under reboot/wipe.

The crash-recovery subsystem's headline numbers, tracked as a committed
baseline the way ``bench_batching`` tracks throughput knees.  For the
single-leader protocols we power-cycle (``reboot``) or disk-wipe
(``wipe``) the leader mid-run and record the per-50 ms completed-ops
timeline, once in-memory and once with a durable WAL:

- **MTTR**: seconds from fault injection until throughput first regains
  80% of its pre-fault mean (includes the outage itself);
- **availability**: fraction of post-warmup buckets at >= 50% of healthy
  throughput;
- **dip depth/width**: the worst bucket after the fault, and how long the
  sub-80% valley lasts.

A rebooted durable leader replays its WAL and resumes; a wiped one (and
any in-memory victim) rejoins as a learner via snapshot transfer while the
cluster elects a replacement — so wipe MTTR tracks the failover delay
while reboot MTTR tracks the outage itself.

Failover timing comes from the φ-accrual detector with the Jacobson
adaptive election timeout (``params: detector=True`` — see
``repro.paxi.detector``), not a hand-tuned ``election_timeout``: the
timeout is learned from observed heartbeat intervals (SRTT + 4·RTTVAR,
scaled by the protocol's ``adaptive_multiplier``), so the same benchmark
config stays honest if the heartbeat cadence or topology changes.

The results land in ``BENCH_faults.json``::

    python -m repro.experiments bench_faults [--fast]

``check_recovered()`` is the CI gate: every scenario must have recovered
(finite MTTR) with availability above 50%.
"""

from __future__ import annotations

import json
import os

from repro.bench.parallel import run_grid
from repro.bench.workload import WorkloadGenerator, WorkloadSpec
from repro.experiments.common import ExperimentResult
from repro.paxi.config import Config
from repro.paxi.deployment import Deployment
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft

PROTOCOLS = {"paxos": MultiPaxos, "raft": Raft}
FAULTS = ("reboot", "wipe")
MODES = ("memory", "durable")

BUCKET = 0.05
FAULT_AT = 0.8
DOWNTIME = 0.15
CLIENTS = 8
SEED = 73
OUTPUT_FILE = "BENCH_faults.json"


def _config(mode: str) -> Config:
    # Failover is driven by the φ-accrual detector and the Jacobson
    # adaptive election timeout (repro.paxi.detector) rather than a
    # hand-tuned fixed election_timeout: followers learn the heartbeat
    # cadence during the healthy phase, so the timeout tracks the actual
    # deployment instead of a magic constant.
    params: dict = {"detector": True}
    if mode == "durable":
        params.update(
            durability="fsync", snapshot_interval=25, catchup_snapshot_gap=16
        )
    return Config.lan(3, 3, seed=SEED, **params)


def _current_leader(deployment: Deployment):
    for node_id, replica in deployment.replicas.items():
        if getattr(replica, "state", None) == "leader" or getattr(
            replica, "active", False
        ):
            return node_id
    return deployment.config.node_ids[0]


def _drive(factory, mode: str, fault: str, run_for: float) -> dict[int, int]:
    """Run a closed-loop workload, inject ``fault`` on the leader at
    FAULT_AT, and return the completed-ops timeline in BUCKET buckets."""
    deployment = Deployment(_config(mode)).start(factory)
    deployment.run_for(0.3)  # let the initial election settle
    start = deployment.now
    buckets: dict[int, int] = {}
    streams = deployment.cluster.streams
    spec = WorkloadSpec(keys=50, write_ratio=0.5)
    for index in range(CLIENTS):
        client = deployment.new_client()
        client.retry_timeout = 0.25
        generator = WorkloadGenerator(
            spec, streams.stream(f"faults-{index}"), name=f"c{index}"
        )
        _loop(deployment, client, generator, start, run_for, buckets)
    deployment.run_until(start + FAULT_AT)
    victim = _current_leader(deployment)
    if fault == "reboot":
        deployment.reboot(victim, downtime=DOWNTIME)
    else:
        deployment.wipe(victim, downtime=DOWNTIME)
    deployment.run_until(start + run_for)
    caught_up = not getattr(deployment.replicas[victim], "recovering", False)
    return buckets, caught_up


def _loop(deployment, client, generator, start, run_for, buckets) -> None:
    def issue() -> None:
        command = generator.next_command(deployment.now)

        def done(_reply, _latency: float) -> None:
            elapsed = deployment.now - start
            if elapsed < run_for:
                buckets[int(elapsed / BUCKET)] = buckets.get(int(elapsed / BUCKET), 0) + 1
                issue()

        client.invoke(command, on_done=done)

    issue()


def _metrics(buckets: dict[int, int], run_for: float) -> dict:
    n = int(run_for / BUCKET)
    series = [buckets.get(i, 0) for i in range(n)]
    warm_b = int(0.2 / BUCKET)  # ramp-up buckets excluded from baselines
    fault_b = int(FAULT_AT / BUCKET)
    healthy = sum(series[warm_b:fault_b]) / max(1, fault_b - warm_b)
    recovered_b = next(
        (i for i in range(fault_b, n) if series[i] >= 0.8 * healthy), None
    )
    dip_window = series[fault_b : min(n, fault_b + int(1.0 / BUCKET))]
    available = [b >= 0.5 * healthy for b in series[warm_b:]]
    return {
        "healthy_ops": round(healthy / BUCKET, 1),
        "mttr_s": None if recovered_b is None else round((recovered_b - fault_b) * BUCKET, 3),
        "dip_floor_frac": round(min(dip_window) / healthy, 3) if healthy else None,
        "dip_width_s": round(
            ((recovered_b if recovered_b is not None else n) - fault_b) * BUCKET, 3
        ),
        "availability": round(sum(available) / len(available), 3),
    }


def run(fast: bool = False, output: str = OUTPUT_FILE, jobs: int = 1) -> ExperimentResult:
    run_for = 2.4 if fast else 3.2
    protocols = {"paxos": MultiPaxos} if fast else PROTOCOLS
    result = ExperimentResult(
        experiment="bench_faults",
        title=(
            f"Fault recovery baseline (9-node LAN, leader fault @{FAULT_AT}s, "
            f"{DOWNTIME * 1e3:.0f}ms outage)"
        ),
        headers=["protocol", "fault", "mode", "healthy_ops", "mttr_s", "dip_floor", "avail"],
    )
    payload: dict = {
        "experiment": "bench_faults",
        "mode": "fast" if fast else "full",
        "bucket_s": BUCKET,
        "fault_at_s": FAULT_AT,
        "downtime_s": DOWNTIME,
        "seed": SEED,
        "scenarios": {},
    }
    # Each scenario is an independent simulation, so the grid fans out over
    # worker processes; results come back in grid order either way.
    grid = [
        (name, fault, mode)
        for name in protocols
        for fault in FAULTS
        for mode in MODES
    ]
    outcomes = run_grid(
        [(_drive, (protocols[name], mode, fault, run_for)) for name, fault, mode in grid],
        workers=jobs,
    )
    for (name, fault, mode), (timeline, caught_up) in zip(grid, outcomes):
        metrics = _metrics(timeline, run_for)
        metrics["victim_caught_up"] = caught_up
        payload["scenarios"][f"{name}:{fault}:{mode}"] = metrics
        result.rows.append(
            [
                name,
                fault,
                mode,
                metrics["healthy_ops"],
                metrics["mttr_s"],
                metrics["dip_floor_frac"],
                metrics["availability"],
            ]
        )
        result.series[f"{name}:{fault}:{mode}"] = [
            (i * BUCKET, float(timeline.get(i, 0)))
            for i in range(int(run_for / BUCKET))
        ]
    for name in protocols:
        reboot_d = payload["scenarios"][f"{name}:reboot:durable"]
        wipe_d = payload["scenarios"][f"{name}:wipe:durable"]
        result.notes.append(
            f"{name} (durable): MTTR reboot {reboot_d['mttr_s']}s / wipe "
            f"{wipe_d['mttr_s']}s — cluster availability tracks the outage "
            "plus failover, while the victim's WAL replay (reboot) or "
            "snapshot state transfer (wipe) completes off the critical path"
        )
    with open(output, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    result.notes.append(f"wrote {output}")
    return result


def check_recovered(path: str = OUTPUT_FILE) -> None:
    """CI gate: every scenario recovered, with availability above 50%.

    Raises ``SystemExit`` with a readable message otherwise, so it can run
    as ``python -c "from repro.experiments.bench_faults import check_recovered; check_recovered()"``.
    """
    if not os.path.exists(path):
        raise SystemExit(f"faults baseline {path!r} not found — run the bench first")
    with open(path) as f:
        payload = json.load(f)
    scenarios = payload.get("scenarios") or {}
    if not scenarios:
        raise SystemExit(f"faults baseline {path!r} has no scenarios")
    failures = []
    for name, metrics in sorted(scenarios.items()):
        if metrics.get("mttr_s") is None:
            failures.append(f"{name}: never recovered to 80% of healthy throughput")
        elif metrics.get("availability", 0.0) < 0.5:
            failures.append(f"{name}: availability {metrics['availability']:.0%} < 50%")
        elif metrics.get("victim_caught_up") is False:
            failures.append(f"{name}: fault victim never finished catching up")
    if failures:
        raise SystemExit("fault-recovery regression: " + "; ".join(failures))
    print(
        "fault baseline ok: "
        + ", ".join(
            f"{name} mttr={metrics['mttr_s']}s" for name, metrics in sorted(scenarios.items())
        )
    )
