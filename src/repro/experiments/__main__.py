"""CLI entry point: python -m repro.experiments <id>|all [--fast] [--csv DIR] [--trace]."""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to reproduce ('all' runs every one)",
    )
    parser.add_argument("--fast", action="store_true", help="shrunken sweep for quick runs")
    parser.add_argument("--csv", metavar="DIR", default=None, help="also write CSV output")
    parser.add_argument("--plot", action="store_true", help="render the series as an ASCII chart")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for experiments whose sweep points are "
        "independent simulations (default 1 = serial, today's behavior)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions plus "
        "event-loop counters (use with --jobs 1: workers are not profiled)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable request tracing; dump spans + per-node metric snapshots "
        "to results/<experiment>_trace.json and print a latency breakdown",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs
    if jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.trace and jobs > 1:
        # Worker processes do not inherit the parent's ObsCapture, so their
        # spans would be silently lost; tracing forces a serial run.
        print("--trace captures spans in-process; ignoring --jobs, running serially")
        jobs = 1

    from repro.bench.profiling import maybe_profiled

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        with maybe_profiled(args.profile, label=name):
            if args.trace:
                result = _run_traced(name, args.fast)
            else:
                result = _invoke(name, args.fast, jobs)
        print(result.to_text())
        if args.plot:
            from repro.experiments.plotting import plot_result

            print()
            print(plot_result(result))
        print()
        if args.csv is not None:
            path = result.write_csv(args.csv)
            print(f"wrote {path}")
    return 0


def _invoke(name: str, fast: bool, jobs: int):
    """Call an experiment driver, passing ``jobs`` only to the drivers that
    fan out over worker processes (those whose ``run`` accepts it)."""
    fn = EXPERIMENTS[name]
    if jobs > 1 and "jobs" in inspect.signature(fn).parameters:
        return fn(fast, jobs=jobs)
    return fn(fast)


def _run_traced(name: str, fast: bool, directory: str = "results"):
    """Run one experiment under an ObsCapture: every cluster the driver
    builds gets tracing enabled, and the combined spans + metric snapshots
    land in ``results/<name>_trace.json``."""
    from repro.obs import ObsCapture
    from repro.obs.report import breakdown_table

    with ObsCapture(trace=True) as capture:
        result = EXPERIMENTS[name](fast)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}_trace.json")
    with open(path, "w") as f:
        json.dump(
            {"experiment": name, "clusters": [obs.snapshot() for obs in capture.observed]},
            f,
            indent=1,
        )
    spans = sum(len(obs.tracer.finished) for obs in capture.observed)
    print(f"trace: {len(capture.observed)} cluster(s), {spans} span(s) -> {path}")
    for obs in capture.observed:
        if obs.tracer.finished:
            print(breakdown_table(obs.tracer))
            break
    else:
        print("trace: no simulated requests (model-only experiment)")
    print()
    return result


if __name__ == "__main__":
    sys.exit(main())
