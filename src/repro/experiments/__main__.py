"""CLI entry point: python -m repro.experiments <id>|all [--fast] [--csv DIR] [--trace]."""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to reproduce ('all' runs every one)",
    )
    parser.add_argument("--fast", action="store_true", help="shrunken sweep for quick runs")
    parser.add_argument("--csv", metavar="DIR", default=None, help="also write CSV output")
    parser.add_argument("--plot", action="store_true", help="render the series as an ASCII chart")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable request tracing; dump spans + per-node metric snapshots "
        "to results/<experiment>_trace.json and print a latency breakdown",
    )
    args = parser.parse_args(argv)

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        if args.trace:
            result = _run_traced(name, args.fast)
        else:
            result = EXPERIMENTS[name](args.fast)
        print(result.to_text())
        if args.plot:
            from repro.experiments.plotting import plot_result

            print()
            print(plot_result(result))
        print()
        if args.csv is not None:
            path = result.write_csv(args.csv)
            print(f"wrote {path}")
    return 0


def _run_traced(name: str, fast: bool, directory: str = "results"):
    """Run one experiment under an ObsCapture: every cluster the driver
    builds gets tracing enabled, and the combined spans + metric snapshots
    land in ``results/<name>_trace.json``."""
    from repro.obs import ObsCapture
    from repro.obs.report import breakdown_table

    with ObsCapture(trace=True) as capture:
        result = EXPERIMENTS[name](fast)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}_trace.json")
    with open(path, "w") as f:
        json.dump(
            {"experiment": name, "clusters": [obs.snapshot() for obs in capture.observed]},
            f,
            indent=1,
        )
    spans = sum(len(obs.tracer.finished) for obs in capture.observed)
    print(f"trace: {len(capture.observed)} cluster(s), {spans} span(s) -> {path}")
    for obs in capture.observed:
        if obs.tracer.finished:
            print(breakdown_table(obs.tracer))
            break
    else:
        print("trace: no simulated requests (model-only experiment)")
    print()
    return result


if __name__ == "__main__":
    sys.exit(main())
