"""CLI entry point: python -m repro.experiments <id>|all [--fast] [--csv DIR]."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which table/figure to reproduce ('all' runs every one)",
    )
    parser.add_argument("--fast", action="store_true", help="shrunken sweep for quick runs")
    parser.add_argument("--csv", metavar="DIR", default=None, help="also write CSV output")
    parser.add_argument("--plot", action="store_true", help="render the series as an ASCII chart")
    args = parser.parse_args(argv)

    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in targets:
        result = EXPERIMENTS[name](args.fast)
        print(result.to_text())
        if args.plot:
            from repro.experiments.plotting import plot_result

            print()
            print(plot_result(result))
        print()
        if args.csv is not None:
            path = result.write_csv(args.csv)
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
