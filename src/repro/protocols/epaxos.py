"""Egalitarian Paxos (Moraru et al. 2013) — the paper's leaderless protocol.

Every replica opportunistically leads the commands it receives (paper
section 2):

- **fast path**: the command leader broadcasts ``PreAccept`` with its view
  of the command's dependencies; if a fast quorum (≈ 3/4 of nodes, per the
  paper) replies without adding new dependencies, the command commits after
  a single round trip;
- **slow path**: if any reply changed the dependencies, the leader takes
  the union and runs a classical ``Accept`` round with a majority quorum
  before committing — this is the conflict cost the paper dissects;
- **execution**: committed commands form a dependency graph; strongly
  connected components are executed dependencies-first, ordered by sequence
  number within a component, identically on every replica.

The EPaxos message types carry dependency lists and therefore use a larger
``SIZE_BYTES`` and a CPU ``WEIGHT`` > 1 — the paper's model explicitly
"penalizes the message processing to account for extra resources required
to compute dependencies and resolve conflicts" (section 5).

Replies are sent after execution, so a command whose dependencies are still
uncommitted waits — which is why EPaxos latency grows *nonlinearly* with
the conflict ratio in the paper's Figure 11.

Failure recovery (explicit-prepare) is not implemented: the paper's EPaxos
experiments exercise only the failure-free path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command, Message
from repro.paxi.protocol import Protocol
from repro.protocols.graph import tarjan_sccs
from repro.protocols.log import RequestInfo

InstanceID = tuple[NodeID, int]

PREACCEPTED, ACCEPTED, COMMITTED, EXECUTED = (
    "preaccepted",
    "accepted",
    "committed",
    "executed",
)

# CPU weight of EPaxos protocol messages relative to plain Paxos messages.
#
# The analytic model uses a light 1.3x penalty (and the paper's *model*
# indeed shows EPaxos out-throughputting Paxos even at c=1).  The *measured*
# Paxi results are different: "when we add message processing penalty to
# account for extra weight of finding and resolving conflicts, EPaxos'
# performance degrades greatly ... EPaxos performing the worst in Paxi LAN
# experiments" (section 5.2).  Real EPaxos message handling scans per-key
# interference state, merges dependency lists, and runs SCC-based execution,
# which costs several times a Paxos accept; this weight reproduces that
# observed behaviour in the simulated implementation.
EPAXOS_WEIGHT = 4.0
EPAXOS_SIZE = 200


@dataclass(frozen=True, slots=True)
class PreAccept(Message):
    SIZE_BYTES = EPAXOS_SIZE
    WEIGHT = EPAXOS_WEIGHT

    instance: InstanceID = None
    command: Command | None = None
    deps: frozenset[InstanceID] = frozenset()
    seq: int = 0


@dataclass(frozen=True, slots=True)
class PreAcceptOK(Message):
    SIZE_BYTES = EPAXOS_SIZE
    WEIGHT = EPAXOS_WEIGHT

    instance: InstanceID = None
    deps: frozenset[InstanceID] = frozenset()
    seq: int = 0
    changed: bool = False


@dataclass(frozen=True, slots=True)
class Accept(Message):
    SIZE_BYTES = EPAXOS_SIZE
    WEIGHT = EPAXOS_WEIGHT

    instance: InstanceID = None
    command: Command | None = None
    deps: frozenset[InstanceID] = frozenset()
    seq: int = 0


@dataclass(frozen=True, slots=True)
class AcceptOK(Message):
    WEIGHT = EPAXOS_WEIGHT

    instance: InstanceID = None


@dataclass(frozen=True, slots=True)
class CommitMsg(Message):
    SIZE_BYTES = EPAXOS_SIZE
    WEIGHT = EPAXOS_WEIGHT

    instance: InstanceID = None
    command: Command | None = None
    deps: frozenset[InstanceID] = frozenset()
    seq: int = 0


@dataclass
class _Instance:
    command: Command | None
    deps: frozenset[InstanceID]
    seq: int
    status: str
    request: RequestInfo | None = None
    acks: int = 0
    union_deps: set[InstanceID] = field(default_factory=set)
    max_seq: int = 0
    changed: bool = False


class EPaxos(Protocol):
    """An EPaxos replica.

    Recognized config params:

    - ``fast_quorum_size``: override the default ``ceil(3N/4)``.
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        n = self.config.n
        self.fast_quorum_size: int = self.config.param(
            "fast_quorum_size", math.ceil(3 * n / 4)
        )
        self.slow_quorum_size: int = n // 2 + 1
        self._instances: dict[InstanceID, _Instance] = {}
        self._next_instance = 0
        # Interference tracking: per key, the last write and the reads that
        # followed it — the "latest" instances a new command must depend on.
        self._last_write: dict[Hashable, InstanceID] = {}
        self._reads_since_write: dict[Hashable, list[InstanceID]] = {}
        self._request_cache: dict[tuple[Hashable, int], Any] = {}

        self.register(PreAccept, self.on_preaccept)
        self.register(PreAcceptOK, self.on_preaccept_ok)
        self.register(Accept, self.on_accept)
        self.register(AcceptOK, self.on_accept_ok)
        self.register(CommitMsg, self.on_commit)

    # ------------------------------------------------------------------
    # Interference bookkeeping
    # ------------------------------------------------------------------

    def _interfering(self, command: Command) -> set[InstanceID]:
        """Latest instances this command must depend on (transitively this
        covers all earlier interference)."""
        deps: set[InstanceID] = set()
        last_write = self._last_write.get(command.key)
        if last_write is not None:
            deps.add(last_write)
        if command.is_write:
            deps.update(self._reads_since_write.get(command.key, ()))
        return deps

    def _track(self, instance: InstanceID, command: Command | None) -> None:
        if command is None:
            return
        if command.is_write:
            self._last_write[command.key] = instance
            self._reads_since_write[command.key] = []
        else:
            self._reads_since_write.setdefault(command.key, []).append(instance)

    def _seq_of(self, deps: set[InstanceID] | frozenset[InstanceID]) -> int:
        highest = 0
        for dep in deps:
            known = self._instances.get(dep)
            if known is not None:
                highest = max(highest, known.seq)
        return highest + 1

    # ------------------------------------------------------------------
    # Command leader path
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        cache_key = (m.client, m.request_id)
        if cache_key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[cache_key],
                    replied_by=self.id,
                ),
            )
            return
        self._next_instance += 1
        instance: InstanceID = (self.id, self._next_instance)
        deps = self._interfering(m.command)
        seq = self._seq_of(deps)
        record = _Instance(
            command=m.command,
            deps=frozenset(deps),
            seq=seq,
            status=PREACCEPTED,
            request=RequestInfo(m.client, m.request_id),
            acks=1,  # self-vote
            union_deps=set(deps),
            max_seq=seq,
        )
        self._instances[instance] = record
        self._track(instance, m.command)
        self.broadcast(
            PreAccept(instance=instance, command=m.command, deps=record.deps, seq=seq)
        )

    def on_preaccept_ok(self, src: Hashable, m: PreAcceptOK) -> None:
        record = self._instances.get(m.instance)
        if record is None or record.status != PREACCEPTED:
            return
        record.acks += 1
        record.union_deps.update(m.deps)
        record.max_seq = max(record.max_seq, m.seq)
        record.changed = record.changed or m.changed
        if record.acks < self.fast_quorum_size:
            return
        if not record.changed:
            self._commit(m.instance, record)  # fast path
            return
        # Slow path: fix the union and run the Accept round.
        record.deps = frozenset(record.union_deps)
        record.seq = record.max_seq
        record.status = ACCEPTED
        record.acks = 1
        self.broadcast(
            Accept(
                instance=m.instance,
                command=record.command,
                deps=record.deps,
                seq=record.seq,
            )
        )

    def on_accept_ok(self, src: Hashable, m: AcceptOK) -> None:
        record = self._instances.get(m.instance)
        if record is None or record.status != ACCEPTED:
            return
        record.acks += 1
        if record.acks >= self.slow_quorum_size:
            self._commit(m.instance, record)

    def _commit(self, instance: InstanceID, record: _Instance) -> None:
        record.status = COMMITTED
        self.trace_mark(record.request)
        self.broadcast(
            CommitMsg(
                instance=instance,
                command=record.command,
                deps=record.deps,
                seq=record.seq,
            )
        )
        self._try_execute()

    # ------------------------------------------------------------------
    # Replica (acceptor) path
    # ------------------------------------------------------------------

    def on_preaccept(self, src: Hashable, m: PreAccept) -> None:
        merged = set(m.deps) | self._interfering(m.command)
        merged.discard(m.instance)
        seq = max(m.seq, self._seq_of(merged))
        changed = merged != set(m.deps)
        existing = self._instances.get(m.instance)
        if existing is None or existing.status == PREACCEPTED:
            self._instances[m.instance] = _Instance(
                command=m.command,
                deps=frozenset(merged),
                seq=seq,
                status=PREACCEPTED,
            )
            self._track(m.instance, m.command)
        self.send(
            src,
            PreAcceptOK(instance=m.instance, deps=frozenset(merged), seq=seq, changed=changed),
        )

    def on_accept(self, src: Hashable, m: Accept) -> None:
        existing = self._instances.get(m.instance)
        if existing is None:
            self._instances[m.instance] = _Instance(
                command=m.command, deps=m.deps, seq=m.seq, status=ACCEPTED
            )
            self._track(m.instance, m.command)
        elif existing.status in (PREACCEPTED, ACCEPTED):
            existing.deps = m.deps
            existing.seq = m.seq
            existing.status = ACCEPTED
        self.send(src, AcceptOK(instance=m.instance))

    def on_commit(self, src: Hashable, m: CommitMsg) -> None:
        existing = self._instances.get(m.instance)
        if existing is None:
            self._instances[m.instance] = _Instance(
                command=m.command, deps=m.deps, seq=m.seq, status=COMMITTED
            )
            self._track(m.instance, m.command)
        elif existing.status != EXECUTED:
            existing.deps = m.deps
            existing.seq = m.seq
            existing.status = COMMITTED
        self._try_execute()

    # ------------------------------------------------------------------
    # Execution: SCCs of the dependency graph, dependencies first
    # ------------------------------------------------------------------

    def _try_execute(self) -> None:
        ready = [
            iid
            for iid, record in self._instances.items()
            if record.status == COMMITTED
        ]
        if not ready:
            return

        def successors(iid: InstanceID) -> list[InstanceID]:
            record = self._instances.get(iid)
            if record is None:
                return []
            return [
                dep
                for dep in record.deps
                if dep in self._instances and self._instances[dep].status != EXECUTED
            ]

        executed_now: set[InstanceID] = set()
        blocked: set[InstanceID] = set()
        for component in tarjan_sccs(sorted(ready), successors):
            component_blocked = False
            members = set(component)
            for iid in component:
                record = self._instances.get(iid)
                if record is None or record.status not in (COMMITTED, EXECUTED):
                    component_blocked = True
                    break
                for dep in record.deps:
                    if dep in members or dep in executed_now:
                        continue
                    dep_record = self._instances.get(dep)
                    if dep_record is None or dep_record.status != EXECUTED:
                        component_blocked = True
                        break
                if component_blocked:
                    break
            if component_blocked:
                blocked.update(members)
                continue
            for iid in sorted(
                (i for i in component if self._instances[i].status == COMMITTED),
                key=lambda i: (self._instances[i].seq, i),
            ):
                self._execute_instance(iid)
                executed_now.add(iid)

    def _execute_instance(self, instance: InstanceID) -> None:
        record = self._instances[instance]
        value = None
        if record.command is not None:
            value = self.store.execute(record.command)
        record.status = EXECUTED
        if record.request is not None and instance[0] == self.id:
            cache_key = (record.request.client, record.request.request_id)
            self._request_cache[cache_key] = value
            self.send(
                record.request.client,
                ClientReply(
                    request_id=record.request.request_id,
                    ok=True,
                    value=value,
                    replied_by=self.id,
                ),
            )
