"""Protocol implementations over the Paxi framework.

One module per protocol the paper evaluates; :data:`PROTOCOLS` maps the
paper's names to classes for registries and CLIs.
"""

from repro.protocols.epaxos import EPaxos
from repro.protocols.fpaxos import FPaxos
from repro.protocols.mencius import Mencius
from repro.protocols.paxos import MultiPaxos
from repro.protocols.raft import Raft
from repro.protocols.vpaxos import VPaxos
from repro.protocols.wankeeper import WanKeeper
from repro.protocols.wpaxos import WPaxos

PROTOCOLS = {
    "Paxos": MultiPaxos,
    "FPaxos": FPaxos,
    "Raft": Raft,
    "EPaxos": EPaxos,
    "WPaxos": WPaxos,
    "WanKeeper": WanKeeper,
    "VPaxos": VPaxos,
    "Mencius": Mencius,
}

__all__ = [
    "MultiPaxos",
    "FPaxos",
    "Raft",
    "EPaxos",
    "WPaxos",
    "WanKeeper",
    "VPaxos",
    "Mencius",
    "PROTOCOLS",
]
