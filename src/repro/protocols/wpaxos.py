"""WPaxos (Ailijiang et al. 2017): multi-leader WAN Paxos (paper section 2).

Every designated leader node can *own* objects and run phase-2 on them
independently; ownership moves between leaders by running phase-1 **per
object** over the WAN (object stealing), so no external master is needed.
Quorums are flexible grids over the ``zones x nodes_per_zone`` deployment:

- phase-1 (stealing): ``R - f`` acks in each of ``Z - fz`` zones,
- phase-2 (replication): ``f + 1`` acks in each of ``fz + 1`` zones,

so with ``fz = 0`` commands commit entirely inside the owner's zone, and
with ``fz = 1`` they additionally reach the nearest other zone (tolerating
a full region failure).

Per the paper's evaluation setup, only one node per zone acts as a leader
(matching WanKeeper's deployment), commands are replicated to **all** nodes
(full replication), and ownership moves under the "simple three-consecutive
access policy": a leader steals an object after serving three consecutive
non-owned requests for it, otherwise it forwards to the current owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import ConfigError
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command, Message
from repro.paxi.protocol import Protocol
from repro.paxi.quorum import GridQuorum, Quorum
from repro.protocols.ballot import Ballot, ZERO
from repro.protocols.log import RequestInfo

# (slot, ballot, command, request, committed)
EntrySnapshot = tuple[int, Ballot, Command | None, RequestInfo | None, bool]


@dataclass(frozen=True, slots=True)
class WP1a(Message):
    """Per-object phase-1: steal ownership of ``key`` with ``ballot``."""

    key: Hashable = None
    ballot: Ballot = ZERO
    commit_upto: int = 0


@dataclass(frozen=True, slots=True)
class WP1b(Message):
    SIZE_BYTES = 300

    key: Hashable = None
    ballot: Ballot = ZERO
    ok: bool = True
    entries: tuple[EntrySnapshot, ...] = ()
    next_slot: int = 1


@dataclass(frozen=True, slots=True)
class WP2a(Message):
    key: Hashable = None
    ballot: Ballot = ZERO
    slot: int = 0
    command: Command | None = None
    request: RequestInfo | None = None
    commit_upto: int = 0


@dataclass(frozen=True, slots=True)
class WP2b(Message):
    key: Hashable = None
    ballot: Ballot = ZERO
    slot: int = 0
    ok: bool = True


@dataclass(frozen=True, slots=True)
class WFlush(Message):
    """Batched per-object commit watermarks (piggybacked commit phase)."""

    SIZE_BYTES = 200

    watermarks: tuple[tuple[Hashable, int], ...] = ()


@dataclass(frozen=True, slots=True)
class WFillRequest(Message):
    key: Hashable = None
    slots: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class WFillReply(Message):
    SIZE_BYTES = 300

    key: Hashable = None
    entries: tuple[EntrySnapshot, ...] = ()


@dataclass
class _Slot:
    ballot: Ballot
    command: Command | None
    request: RequestInfo | None = None
    quorum: Quorum | None = None
    committed: bool = False
    executed: bool = False


@dataclass
class _ObjectState:
    """Everything one replica knows about one object."""

    ballot: Ballot = ZERO  # highest promised ballot for this object
    owner: NodeID | None = None
    active: bool = False  # this node currently owns the object
    slots: dict[int, _Slot] = field(default_factory=dict)
    next_slot: int = 1
    execute_index: int = 1
    p1_quorum: Quorum | None = None
    p1_entries: dict[int, EntrySnapshot] = field(default_factory=dict)
    pending: list[ClientRequest] = field(default_factory=list)
    steal_streak: int = 0
    forwarded: set = field(default_factory=set)  # (client, request_id) we forwarded
    # Flush countdown: re-broadcast the watermark for a few intervals so a
    # single lost WFlush cannot strand a follower (decremented per tick).
    dirty_watermark: int = 0
    fill_outstanding: bool = False

    def commit_upto(self) -> int:
        upto = self.execute_index - 1
        while upto + 1 in self.slots and self.slots[upto + 1].committed:
            upto += 1
        return upto


class WPaxos(Protocol):
    """A WPaxos replica.

    Recognized config params:

    - ``fz``: zone fault tolerance (default 0);
    - ``f``: per-zone fault tolerance (default ``(R-1)//2``);
    - ``steal_threshold``: consecutive non-owned accesses before stealing
      (default 3; 1 = steal immediately);
    - ``leaders_per_zone``: nodes per zone allowed to lead (default 1);
    - ``flush_interval``: watermark broadcast period (default 0.02 s).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        zones = len(self.config.zones)
        per_zone = self.config.n // zones
        if zones * per_zone != self.config.n:
            raise ConfigError("WPaxos needs a rectangular zone grid")
        self.fz: int = self.config.param("fz", 0)
        self.f: int = self.config.param("f", (per_zone - 1) // 2)
        self.steal_threshold: int = self.config.param("steal_threshold", 3)
        self.leaders_per_zone: int = self.config.param("leaders_per_zone", 1)
        self.flush_interval: float = self.config.param("flush_interval", 0.02)
        self.retransmit_timeout: float = self.config.param("retransmit_timeout", 0.3)
        self.objects: dict[Hashable, _ObjectState] = {}
        self._pending_slots: dict[tuple[Hashable, int], float] = {}
        self._request_cache: dict[tuple[Hashable, int], Any] = {}

        self.register(WP1a, self.on_p1a)
        self.register(WP1b, self.on_p1b)
        self.register(WP2a, self.on_p2a)
        self.register(WP2b, self.on_p2b)
        self.register(WFlush, self.on_flush)
        self.register(WFillRequest, self.on_fill_request)
        self.register(WFillReply, self.on_fill_reply)

        if self.is_leader_node:
            self.set_timer(self.flush_interval, self._flush_tick)

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------

    @property
    def is_leader_node(self) -> bool:
        """Per the paper's setup, only the first ``leaders_per_zone`` nodes
        of each zone act as leaders."""
        return self.id.node <= self.leaders_per_zone

    @property
    def zone_leader(self) -> NodeID:
        return NodeID(self.id.zone, 1)

    def _object(self, key: Hashable) -> _ObjectState:
        state = self.objects.get(key)
        if state is None:
            state = _ObjectState()
            self.objects[key] = state
        return state

    def _phase1_quorum(self) -> Quorum:
        return GridQuorum(self.config.node_ids, phase=1, f=self.f, fz=self.fz)

    def _phase2_quorum(self) -> Quorum:
        return GridQuorum(self.config.node_ids, phase=2, f=self.f, fz=self.fz)

    # ------------------------------------------------------------------
    # Client requests: own, steal, or forward
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        cache_key = (m.client, m.request_id)
        if cache_key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[cache_key],
                    replied_by=self.id,
                ),
            )
            return
        if not self.is_leader_node:
            self.send(self.zone_leader, m)
            return
        state = self._object(m.command.key)
        if state.active:
            self._propose(m.command.key, state, m.command, RequestInfo(m.client, m.request_id))
            return
        if state.p1_quorum is not None:
            state.pending.append(m)  # steal already in flight
            return
        if state.owner is None:
            self._start_steal(m.command.key, state, m)
            return
        state.steal_streak += 1
        if state.steal_streak >= self.steal_threshold:
            self._start_steal(m.command.key, state, m)
        else:
            state.forwarded.add((m.client, m.request_id))
            self.send(state.owner, m)

    # ------------------------------------------------------------------
    # Phase 1: object stealing
    # ------------------------------------------------------------------

    def _start_steal(self, key: Hashable, state: _ObjectState, request: ClientRequest) -> None:
        state.steal_streak = 0
        state.pending.append(request)
        ballot = Ballot(state.ballot.counter + 1, self.id)
        state.ballot = ballot
        state.owner = self.id
        state.p1_quorum = self._phase1_quorum()
        state.p1_quorum.ack(self.id)
        state.p1_entries = {}
        self._merge_snapshots(state, self._own_snapshots(state))
        self.broadcast(WP1a(key=key, ballot=ballot, commit_upto=state.commit_upto()))
        if state.p1_quorum.satisfied():
            self._acquire(key, state)

    def _own_snapshots(self, state: _ObjectState) -> tuple[EntrySnapshot, ...]:
        return tuple(
            (slot, s.ballot, s.command, s.request, s.committed)
            for slot, s in sorted(state.slots.items())
        )

    def _merge_snapshots(self, state: _ObjectState, snapshots: tuple[EntrySnapshot, ...]) -> None:
        for slot, ballot, command, request, committed in snapshots:
            current = state.p1_entries.get(slot)
            if current is not None and current[4]:
                continue
            if committed or current is None or ballot > current[1]:
                state.p1_entries[slot] = (slot, ballot, command, request, committed)

    def _abandon_candidacy(self, state: _ObjectState) -> None:
        """A higher ballot beat our in-flight steal: drop the candidacy and
        re-route everything we had buffered to the winner."""
        if state.p1_quorum is None or state.ballot.owner == self.id:
            return
        state.p1_quorum = None
        state.p1_entries = {}
        pending, state.pending = state.pending, []
        for request in pending:
            self.send(state.owner, request)

    def on_p1a(self, src: Hashable, m: WP1a) -> None:
        state = self._object(m.key)
        if m.ballot > state.ballot:
            state.ballot = m.ballot
            state.owner = m.ballot.owner
            if state.active:
                state.active = False  # ownership stolen away
            self._abandon_candidacy(state)
            suffix = tuple(
                (slot, s.ballot, s.command, s.request, s.committed)
                for slot, s in sorted(state.slots.items())
                if slot > m.commit_upto
            )
            self.send(
                src,
                WP1b(key=m.key, ballot=m.ballot, ok=True, entries=suffix, next_slot=state.next_slot),
            )
        else:
            self.send(src, WP1b(key=m.key, ballot=state.ballot, ok=False))

    def on_p1b(self, src: Hashable, m: WP1b) -> None:
        state = self._object(m.key)
        if not m.ok:
            if m.ballot > state.ballot:
                state.ballot = m.ballot
                state.owner = m.ballot.owner
            self._abandon_candidacy(state)
            return
        if state.p1_quorum is None or m.ballot != state.ballot or state.active:
            return
        self._merge_snapshots(state, m.entries)
        state.next_slot = max(state.next_slot, m.next_slot)
        state.p1_quorum.ack(src)
        if state.p1_quorum.satisfied():
            self._acquire(m.key, state)

    def _acquire(self, key: Hashable, state: _ObjectState) -> None:
        state.active = True
        state.owner = self.id
        state.p1_quorum = None
        max_slot = max(state.p1_entries, default=0)
        max_slot = max(max_slot, state.next_slot - 1)
        for slot in range(1, max_slot + 1):
            local = state.slots.get(slot)
            if local is not None and local.committed:
                continue
            learned = state.p1_entries.get(slot)
            if learned is not None and learned[4]:
                state.slots[slot] = _Slot(learned[1], learned[2], learned[3], committed=True)
                continue
            command = learned[2] if learned is not None else None
            request = learned[3] if learned is not None else None
            self._propose_at(key, state, slot, command, request)
        state.next_slot = max(state.next_slot, max_slot + 1)
        state.p1_entries = {}
        self._advance_execution(key, state)
        pending, state.pending = state.pending, []
        for request in pending:
            self.on_request(request.client, request)

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------

    def _propose(
        self,
        key: Hashable,
        state: _ObjectState,
        command: Command | None,
        request: RequestInfo | None,
    ) -> None:
        slot = state.next_slot
        state.next_slot += 1
        self._propose_at(key, state, slot, command, request)

    def _propose_at(
        self,
        key: Hashable,
        state: _ObjectState,
        slot: int,
        command: Command | None,
        request: RequestInfo | None,
    ) -> None:
        quorum = self._phase2_quorum()
        quorum.ack(self.id)
        state.slots[slot] = _Slot(state.ballot, command, request, quorum)
        state.next_slot = max(state.next_slot, slot + 1)
        self._pending_slots[(key, slot)] = self.now
        self.broadcast(
            WP2a(
                key=key,
                ballot=state.ballot,
                slot=slot,
                command=command,
                request=request,
                commit_upto=state.commit_upto(),
            )
        )
        if quorum.satisfied():
            self._commit_slot(key, state, slot)

    def on_p2a(self, src: Hashable, m: WP2a) -> None:
        state = self._object(m.key)
        if m.ballot >= state.ballot:
            state.ballot = m.ballot
            state.owner = m.ballot.owner
            if state.active and m.ballot.owner != self.id:
                state.active = False
            if m.ballot.owner != self.id:
                self._abandon_candidacy(state)
            existing = state.slots.get(m.slot)
            if existing is None or (not existing.committed and existing.ballot <= m.ballot):
                state.slots[m.slot] = _Slot(m.ballot, m.command, m.request)
            state.next_slot = max(state.next_slot, m.slot + 1)
            if self.is_leader_node and m.ballot.owner != self.id:
                # A command we forwarded ourselves still counts toward our
                # streak; anyone else's access breaks the "consecutive" run.
                request_key = (
                    (m.request.client, m.request.request_id)
                    if m.request is not None
                    else None
                )
                if request_key is not None and request_key in state.forwarded:
                    state.forwarded.discard(request_key)
                else:
                    state.steal_streak = 0
            self.send(src, WP2b(key=m.key, ballot=m.ballot, slot=m.slot, ok=True))
            self._apply_watermark(m.key, state, m.commit_upto, src)
        else:
            self.send(src, WP2b(key=m.key, ballot=state.ballot, slot=m.slot, ok=False))

    def on_p2b(self, src: Hashable, m: WP2b) -> None:
        state = self._object(m.key)
        if not m.ok:
            if m.ballot > state.ballot:
                state.ballot = m.ballot
                state.owner = m.ballot.owner
                state.active = False
            return
        if not state.active or m.ballot != state.ballot:
            return
        slot = state.slots.get(m.slot)
        if slot is None or slot.quorum is None or slot.committed:
            return
        slot.quorum.ack(src)
        if slot.quorum.satisfied():
            self._commit_slot(m.key, state, m.slot)

    def _commit_slot(self, key: Hashable, state: _ObjectState, slot: int) -> None:
        state.slots[slot].committed = True
        self.trace_mark(state.slots[slot].request)
        self._pending_slots.pop((key, slot), None)
        state.dirty_watermark = 3
        self._advance_execution(key, state)

    # ------------------------------------------------------------------
    # Commit watermarks, gap filling, execution
    # ------------------------------------------------------------------

    def _flush_tick(self) -> None:
        dirty: list[tuple[Hashable, int]] = []
        for key, state in self.objects.items():
            if state.active and state.dirty_watermark > 0:
                dirty.append((key, state.commit_upto()))
                state.dirty_watermark -= 1
        if dirty:
            self.broadcast(WFlush(watermarks=tuple(dirty)))
        self._retransmit_pending()
        self.set_timer(self.flush_interval, self._flush_tick)

    def _retransmit_pending(self) -> None:
        """Re-send accepts lost to drops/partitions (liveness only: in
        normal operation slots commit well inside the grace period)."""
        now = self.now
        for (key, slot), sent_at in list(self._pending_slots.items()):
            if now - sent_at < self.retransmit_timeout:
                continue
            state = self.objects.get(key)
            entry = state.slots.get(slot) if state is not None else None
            if (
                state is None
                or entry is None
                or entry.committed
                or entry.quorum is None
                or not state.active
                or entry.ballot != state.ballot
            ):
                self._pending_slots.pop((key, slot), None)
                continue
            self._pending_slots[(key, slot)] = now
            behind = [p for p in self.peers if p not in entry.quorum.acks]
            if behind:
                self.multicast(
                    behind,
                    WP2a(
                        key=key,
                        ballot=state.ballot,
                        slot=slot,
                        command=entry.command,
                        request=entry.request,
                        commit_upto=state.commit_upto(),
                    ),
                )

    def on_flush(self, src: Hashable, m: WFlush) -> None:
        for key, upto in m.watermarks:
            state = self._object(key)
            self._apply_watermark(key, state, upto, src)

    def _apply_watermark(self, key: Hashable, state: _ObjectState, upto: int, origin: Hashable) -> None:
        # The watermark only certifies values chosen under the origin's own
        # ballot.  An entry accepted under an older ballot may have lost to a
        # re-proposal we have not received yet (e.g. on a slow link), so it
        # must be treated like a hole and recovered via fill, never committed
        # as-is.
        fresh = state.ballot.owner == origin
        missing: list[int] = []
        for slot in range(state.execute_index, upto + 1):
            entry = state.slots.get(slot)
            if entry is None:
                missing.append(slot)
            elif entry.committed:
                continue
            elif fresh and entry.ballot == state.ballot:
                entry.committed = True
            else:
                missing.append(slot)
        if missing and not state.fill_outstanding:
            state.fill_outstanding = True
            self.send(origin, WFillRequest(key=key, slots=tuple(missing[:64])))
        self._advance_execution(key, state)

    def on_fill_request(self, src: Hashable, m: WFillRequest) -> None:
        state = self._object(m.key)
        entries = tuple(
            (slot, s.ballot, s.command, s.request, s.committed)
            for slot in m.slots
            if (s := state.slots.get(slot)) is not None
        )
        self.send(src, WFillReply(key=m.key, entries=entries))

    def on_fill_reply(self, src: Hashable, m: WFillReply) -> None:
        state = self._object(m.key)
        state.fill_outstanding = False
        for slot, ballot, command, request, committed in m.entries:
            if not committed:
                continue
            local = state.slots.get(slot)
            if local is None or not local.committed:
                # Adopt the committed value wholesale: a stale uncommitted
                # local entry may hold a different (losing) command.
                state.slots[slot] = _Slot(ballot, command, request, committed=True)
        self._advance_execution(m.key, state)

    def _advance_execution(self, key: Hashable, state: _ObjectState) -> None:
        while True:
            entry = state.slots.get(state.execute_index)
            if entry is None or not entry.committed or entry.executed:
                break
            value = None
            if entry.command is not None:
                request_key = None
                if entry.request is not None:
                    request_key = (entry.request.client, entry.request.request_id)
                if request_key is not None and request_key in self._request_cache:
                    value = self._request_cache[request_key]
                else:
                    value = self.store.execute(entry.command)
                    if request_key is not None:
                        self._request_cache[request_key] = value
            entry.executed = True
            state.execute_index += 1
            if entry.request is not None and entry.ballot.owner == self.id and state.active:
                self.send(
                    entry.request.client,
                    ClientReply(
                        request_id=entry.request.request_id,
                        ok=True,
                        value=value,
                        replied_by=self.id,
                    ),
                )
