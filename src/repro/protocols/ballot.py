"""Ballot numbers shared by every Paxos-family protocol.

A ballot is a pair ``(counter, node_id)`` ordered lexicographically, so two
nodes can never mint the same ballot and every ballot has a unique owner.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.paxi.ids import NodeID


class Ballot(NamedTuple):
    """A totally-ordered, owner-tagged ballot number."""

    counter: int
    owner: NodeID

    def next(self, owner: NodeID) -> "Ballot":
        """The smallest ballot larger than this one owned by ``owner``."""
        return Ballot(self.counter + 1, owner)

    def __str__(self) -> str:
        return f"{self.counter}@{self.owner}"


ZERO = Ballot(0, NodeID(0, 0))


def initial_ballot(owner: NodeID) -> Ballot:
    """The first ballot a node uses when it tries to lead."""
    return Ballot(1, owner)
