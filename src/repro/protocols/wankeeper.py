"""WanKeeper (Ailijiang et al., ICDCS 2017): hierarchical token-based
coordination (paper section 2).

Two consensus layers:

- **level-1**: a Paxos group per zone (region) executes commands for the
  objects whose *token* the zone currently holds;
- **level-2**: the master — the Paxos group of a designated master zone —
  owns every other token, mediates all token movement, and executes
  commands on contested objects itself.

Token policy, per the paper: when multiple zones keep requesting the same
object, the master retracts the token and performs the commands at level-2;
once access locality settles (``grant_threshold`` consecutive requests from
one zone), the master passes the token down to that zone to restore local
latency.  Token transfers carry the object's committed history so per-key
state-machine histories stay common-prefix consistent across groups.

Characteristic latencies this reproduces (paper Figures 11 and 13): the
master region commits everything locally; other regions pay one WAN round
trip to the master for contested objects, and local latency for objects
whose token they hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command, Message
from repro.paxi.protocol import Protocol
from repro.protocols.group import GroupEngine
from repro.protocols.log import RequestInfo

MASTER = "MASTER"  # token-holder marker for the master level


@dataclass(frozen=True, slots=True)
class WKRequest(Message):
    """A zone leader escalates a command for a token it does not hold."""

    command: Command | None = None
    request: RequestInfo | None = None
    origin_zone: int = 0


@dataclass(frozen=True, slots=True)
class WKGrant(Message):
    SIZE_BYTES = 300

    key: Hashable = None
    history: tuple = ()


@dataclass(frozen=True, slots=True)
class WKGrantAck(Message):
    """Zone leader confirms it holds the token; only after this will the
    master consider retracting it (prevents a retract overtaking an
    in-flight grant and splitting ownership)."""

    key: Hashable = None


@dataclass(frozen=True, slots=True)
class WKRetract(Message):
    key: Hashable = None


@dataclass(frozen=True, slots=True)
class WKReturn(Message):
    SIZE_BYTES = 300

    key: Hashable = None
    history: tuple = ()


# Group-log item kinds (replicated within one zone group).
CMD, ADOPT, GRANT = "cmd", "adopt", "grant"


@dataclass
class _TokenInfo:
    """Master-side bookkeeping for one object's token."""

    holder: Any = MASTER  # MASTER or a zone number
    last_zone: int | None = None
    streak: int = 0
    retracting: bool = False
    granting: bool = False  # grant sent, ack not yet received
    pending: list[WKRequest] = field(default_factory=list)


class WanKeeper(Protocol):
    """A WanKeeper replica (zone member, zone leader, or master leader).

    Recognized config params:

    - ``master_zone``: zone hosting the level-2 master (default 2 — Ohio in
      the paper's VA/OH/CA deployment);
    - ``grant_threshold``: consecutive same-zone requests before the master
      passes a token down (default 3);
    - ``flush_interval``: group commit-watermark period (default 0.02 s).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        zones = self.config.zones
        default_master = zones[1] if len(zones) > 1 else zones[0]
        self.master_zone: int = self.config.param("master_zone", default_master)
        self.grant_threshold: int = self.config.param("grant_threshold", 3)
        flush = self.config.param("flush_interval", 0.02)
        self.group = GroupEngine(
            self, self.config.ids_in_zone(self.id.zone), self._execute_item, flush
        )
        self.is_zone_leader = self.group.is_leader
        self.is_master = self.is_zone_leader and self.id.zone == self.master_zone
        self.master_leader = NodeID(self.master_zone, 1)
        # Zone-leader state: which tokens this zone holds.
        self.tokens: set[Hashable] = set()
        self._outstanding: dict[Hashable, int] = {}  # in-flight cmds per key
        self._returning: set[Hashable] = set()
        # Master state.
        self._token_table: dict[Hashable, _TokenInfo] = {}
        self._request_cache: dict[tuple[Hashable, int], Any] = {}

        self.register(WKRequest, self.on_wk_request)
        self.register(WKGrant, self.on_grant)
        self.register(WKGrantAck, self.on_grant_ack)
        self.register(WKRetract, self.on_retract)
        self.register(WKReturn, self.on_return)

    # ------------------------------------------------------------------
    # Client path (level-1)
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        cache_key = (m.client, m.request_id)
        if cache_key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[cache_key],
                    replied_by=self.id,
                ),
            )
            return
        if not self.is_zone_leader:
            self.send(self.group.leader, m)
            return
        request = RequestInfo(m.client, m.request_id)
        key = m.command.key
        if key in self.tokens and key not in self._returning:
            self._propose_command(key, m.command, request)
        elif self.is_master:
            self._master_handle(WKRequest(m.command, request, self.id.zone))
        else:
            self.send(
                self.master_leader,
                WKRequest(command=m.command, request=request, origin_zone=self.id.zone),
            )

    def _propose_command(self, key: Hashable, command: Command, request: RequestInfo) -> None:
        self._outstanding[key] = self._outstanding.get(key, 0) + 1
        self.group.propose((CMD, command, request))

    # ------------------------------------------------------------------
    # Master path (level-2)
    # ------------------------------------------------------------------

    def on_wk_request(self, src: Hashable, m: WKRequest) -> None:
        if not self.is_master:
            # Stale escalation (e.g. raced with a grant we now hold).
            if m.command.key in self.tokens and self.is_zone_leader:
                self._propose_command(m.command.key, m.command, m.request)
            else:
                self.send(self.master_leader, m)
            return
        self._master_handle(m)

    def _master_handle(self, m: WKRequest) -> None:
        key = m.command.key
        info = self._token_table.setdefault(key, _TokenInfo())
        if info.last_zone == m.origin_zone:
            info.streak += 1
        else:
            info.last_zone = m.origin_zone
            info.streak = 1
        if info.retracting:
            info.pending.append(m)
            return
        if info.granting:
            if info.holder == m.origin_zone:
                # The holder escalated while its grant is still in flight:
                # bounce the command back; it will hold the token by then.
                self.send(NodeID(info.holder, 1), m)
            else:
                info.pending.append(m)  # drained once the grant is acked
            return
        if info.holder == MASTER:
            if (
                info.streak >= self.grant_threshold
                and m.origin_zone != self.master_zone
            ):
                self._grant(key, info, m)
            else:
                self._propose_command(key, m.command, m.request)
        elif info.holder == self.master_zone:
            self._propose_command(key, m.command, m.request)
        elif info.holder == m.origin_zone:
            # Race with an acked grant the zone leader forgot? Bounce back.
            self.send(NodeID(info.holder, 1), m)
        else:
            # Contention: retract the token, buffer the request (paper: the
            # master "retracts the token from the lower level and performs
            # commands itself").
            info.retracting = True
            info.pending.append(m)
            self.send(NodeID(info.holder, 1), WKRetract(key=key))

    def _grant(self, key: Hashable, info: _TokenInfo, trigger: WKRequest) -> None:
        zone = trigger.origin_zone
        info.holder = zone
        info.streak = 0
        info.granting = True
        # Serialize the grant through the master group log so it executes
        # only after every in-flight master-side command on this key — the
        # handed-over history is then guaranteed complete.
        self.group.propose((GRANT, key, zone, trigger))

    def on_grant_ack(self, src: Hashable, m: WKGrantAck) -> None:
        if not self.is_master:
            return
        info = self._token_table.get(m.key)
        if info is None or not info.granting:
            return
        info.granting = False
        pending, info.pending = info.pending, []
        for request in pending:
            self._master_handle(request)

    # ------------------------------------------------------------------
    # Token movement (level-1 <-> level-2)
    # ------------------------------------------------------------------

    def on_grant(self, src: Hashable, m: WKGrant) -> None:
        if not self.is_zone_leader:
            return
        self.tokens.add(m.key)
        if m.history:
            self.group.propose((ADOPT, m.key, tuple(m.history)))
        self.send(self.master_leader, WKGrantAck(key=m.key))

    def on_retract(self, src: Hashable, m: WKRetract) -> None:
        if not self.is_zone_leader or m.key not in self.tokens:
            # Nothing to return (already returned or never held).
            self.send(self.master_leader, WKReturn(key=m.key, history=()))
            return
        self._returning.add(m.key)
        self._maybe_finish_return(m.key)

    def _maybe_finish_return(self, key: Hashable) -> None:
        if key not in self._returning:
            return
        if self._outstanding.get(key, 0) > 0:
            return  # in-flight commands must drain first
        self._returning.discard(key)
        self.tokens.discard(key)
        self.send(
            self.master_leader,
            WKReturn(key=key, history=tuple(self.store.history(key))),
        )

    def on_return(self, src: Hashable, m: WKReturn) -> None:
        if not self.is_master:
            return
        info = self._token_table.setdefault(m.key, _TokenInfo())
        info.holder = MASTER
        info.retracting = False
        pending, info.pending = info.pending, []
        if m.history:
            self.group.propose((ADOPT, m.key, tuple(m.history)))
        for request in pending:
            self._master_handle(request)

    # ------------------------------------------------------------------
    # Group execution callback
    # ------------------------------------------------------------------

    def _execute_item(self, item: tuple, is_leader: bool) -> None:
        kind = item[0]
        if kind == ADOPT:
            _kind, key, history = item
            self.store.adopt(key, list(history))
            return
        if kind == GRANT:
            _kind, key, zone, trigger = item
            if is_leader and self.is_master:
                history = tuple(self.store.history(key))
                self.send(NodeID(zone, 1), WKGrant(key=key, history=history))
                self.send(NodeID(zone, 1), trigger)
            return
        _kind, command, request = item
        cache_key = (request.client, request.request_id) if request is not None else None
        if cache_key is not None and cache_key in self._request_cache:
            value = self._request_cache[cache_key]
        else:
            value = self.store.execute(command)
            if cache_key is not None:
                self._request_cache[cache_key] = value
        if is_leader:
            if command is not None:
                count = self._outstanding.get(command.key, 0)
                if count > 0:
                    self._outstanding[command.key] = count - 1
                self._maybe_finish_return(command.key)
            if request is not None:
                self.send(
                    request.client,
                    ClientReply(
                        request_id=request.request_id,
                        ok=True,
                        value=value,
                        replied_by=self.id,
                    ),
                )
