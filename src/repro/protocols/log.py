"""Replicated command log shared by the Paxos-family protocols.

A :class:`CommandLog` tracks per-slot entries through the accept -> commit ->
execute lifecycle and maintains the highest *contiguous* committed slot,
which is what leaders piggyback onto later messages in place of an explicit
commit phase (the paper's phase-3 optimization, section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import ProtocolError
from repro.paxi.message import Batch, Command
from repro.paxi.quorum import Quorum
from repro.protocols.ballot import Ballot

# A slot's value is a single command or a batch; its reply routing is a
# single RequestInfo or one per batched command (aligned by position).
EntryCommand = Command | Batch | None
EntryRequest = "RequestInfo | tuple[RequestInfo, ...] | None"


@dataclass
class RequestInfo:
    """Where to send the reply once a command executes."""

    client: Hashable
    request_id: int


def request_infos(request: Any) -> tuple:
    """Normalize an entry's ``request`` field to a tuple of RequestInfos."""
    if request is None:
        return ()
    if isinstance(request, tuple):
        return request
    return (request,)


def entry_pairs(command: EntryCommand, request: Any) -> list[tuple[Command | None, "RequestInfo | None"]]:
    """Fan a slot out into ``(command, request_info)`` pairs, in order.

    A plain command yields one pair; a :class:`Batch` yields one pair per
    contained command, aligned positionally with the entry's request tuple
    (recovered batches may have lost their routing — then infos are None).
    """
    if isinstance(command, Batch):
        requests = request if isinstance(request, tuple) else (None,) * len(command.commands)
        return list(zip(command.commands, requests))
    return [(command, request)]


@dataclass
class Entry:
    """One slot of the replicated log.

    ``command`` may be ``None`` for a no-op proposed to fill a gap during
    leader recovery, or a :class:`~repro.paxi.message.Batch` when the
    leader coalesced several client commands into the slot.
    """

    ballot: Ballot
    command: EntryCommand
    request: Any = None
    quorum: Quorum | None = None
    committed: bool = False
    executed: bool = False


@dataclass
class CommandLog:
    """Slot-indexed log with commit/execute frontiers (slots are 1-based)."""

    entries: dict[int, Entry] = field(default_factory=dict)
    next_slot: int = 1
    execute_index: int = 1  # next slot to execute
    # Presence frontier: every slot in 1.._contig is present in ``entries``.
    # Advanced lazily by :meth:`missing_slots` so the per-message gap scan
    # is O(new slots) amortized instead of O(upto); reset by :meth:`compact`
    # because compaction removes slot 1 itself.
    _contig: int = field(default=0, repr=False)

    def append(
        self,
        ballot: Ballot,
        command: EntryCommand,
        request: Any = None,
        quorum: Quorum | None = None,
    ) -> int:
        """Leader-side: place a command in the next free slot."""
        slot = self.next_slot
        self.next_slot += 1
        self.entries[slot] = Entry(ballot, command, request, quorum)
        return slot

    def accept(
        self,
        slot: int,
        ballot: Ballot,
        command: EntryCommand,
        request: Any = None,
    ) -> None:
        """Follower-side: record an accepted (slot, ballot, command).

        A committed entry is never overwritten — commitment is final even if
        a laggard leader re-sends with a stale ballot.
        """
        existing = self.entries.get(slot)
        if existing is not None and existing.committed:
            return
        if existing is not None and existing.ballot > ballot:
            return
        self.entries[slot] = Entry(ballot, command, request)
        if slot >= self.next_slot:
            self.next_slot = slot + 1

    def commit(self, slot: int) -> None:
        entry = self.entries.get(slot)
        if entry is None:
            raise ProtocolError(f"commit of unknown slot {slot}")
        entry.committed = True

    def commit_upto(self) -> int:
        """Highest slot S such that every slot <= S is committed."""
        upto = self.execute_index - 1
        while self.entries.get(upto + 1) is not None and self.entries[upto + 1].committed:
            upto += 1
        return upto

    def executable(self) -> list[tuple[int, Entry]]:
        """Contiguous run of committed-but-unexecuted entries, in order.

        The caller is expected to execute them and then call
        :meth:`mark_executed` for each.
        """
        runnable: list[tuple[int, Entry]] = []
        slot = self.execute_index
        while True:
            entry = self.entries.get(slot)
            if entry is None or not entry.committed or entry.executed:
                break
            runnable.append((slot, entry))
            slot += 1
        return runnable

    def mark_executed(self, slot: int) -> None:
        entry = self.entries.get(slot)
        if entry is None or not entry.committed:
            raise ProtocolError(f"cannot execute uncommitted slot {slot}")
        entry.executed = True
        if slot == self.execute_index:
            while self.entries.get(self.execute_index) is not None and self.entries[
                self.execute_index
            ].executed:
                self.execute_index += 1

    def uncommitted(self) -> dict[int, Entry]:
        """Accepted-but-uncommitted entries (what P1b messages carry)."""
        return {
            slot: entry
            for slot, entry in self.entries.items()
            if not entry.committed
        }

    def compact(self, upto: int) -> None:
        """Drop entries at or below ``upto`` (snapshot installation).

        The presence frontier resets to zero: slot 1 itself is gone, so —
        exactly as with a plain dict scan — compacted slots count as
        "never accepted" until peers re-fill them.
        """
        entries = self.entries
        for slot in [s for s in entries if s <= upto]:
            del entries[slot]
        self._contig = 0

    def missing_slots(self, upto: int) -> list[int]:
        """Slots <= ``upto`` this log has never accepted (gap-fill targets)."""
        entries = self.entries
        contig = self._contig
        while contig + 1 in entries:
            contig += 1
        self._contig = contig
        if upto <= contig:
            return []
        return [slot for slot in range(contig + 1, upto + 1) if slot not in entries]
