"""Raft (Ongaro & Ousterhout 2014) — the etcd stand-in for Figure 7.

The paper cross-validates Paxi by benchmarking its Paxos against etcd's
Raft and arguing that "without considering reconfiguration and recovery
differences, Paxos and Raft are essentially the same protocol with a single
stable leader driving the command replication".  We implement Raft from the
paper's cited description — terms, randomized election timeouts,
AppendEntries replication with per-follower ``nextIndex`` backtracking, and
commit via majority ``matchIndex`` — over the same Paxi substrate, which
reproduces exactly that comparison.

Like etcd in the paper's setup, persistence/snapshotting is disabled (the
simulator has no durable storage) and replies are sent only after commit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import Batch, ClientReply, ClientRequest, Command, Message
from repro.paxi.protocol import Protocol
from repro.protocols.log import RequestInfo, entry_pairs

# One replicated log record: (term, command-or-batch, request-info(s))
LogRecord = tuple[int, "Command | Batch | None", Any]

FOLLOWER, CANDIDATE, LEADER = "follower", "candidate", "leader"


@dataclass(frozen=True)
class RequestVote(Message):
    term: int = 0
    last_log_index: int = 0
    last_log_term: int = 0


@dataclass(frozen=True)
class VoteReply(Message):
    term: int = 0
    granted: bool = False


@dataclass(frozen=True)
class AppendEntries(Message):
    SIZE_BYTES = 150

    term: int = 0
    prev_index: int = 0
    prev_term: int = 0
    entries: tuple[tuple[int, LogRecord], ...] = ()  # (index, record)
    leader_commit: int = 0

    def wire_size(self) -> int:
        # Batched records fatten the message; plain records keep the
        # seed's flat accounting.
        extra = 0
        for _index, record in self.entries:
            command = record[1]
            if isinstance(command, Batch):
                extra += command.extra_bytes()
        return self.SIZE_BYTES + extra


@dataclass(frozen=True)
class AppendReply(Message):
    term: int = 0
    success: bool = False
    match_index: int = 0


class Raft(Protocol):
    """A Raft replica.

    Batching and pipelining honor the typed config fields: the leader
    coalesces admitted requests into one multi-command log record per
    batch flush, and ``pipeline_depth`` bounds how many uncommitted
    indices it keeps in flight.

    Recognized config params:

    - ``leader``: node that runs the first election immediately (avoids a
      cold-start election race in benchmarks; default first node);
    - ``heartbeat_interval``: leader heartbeat period (default 0.02 s);
    - ``election_timeout``: base election timeout (default 0.15 s).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        params = self.config.params
        self.heartbeat_interval: float = params.get("heartbeat_interval", 0.02)
        self.election_timeout: float = params.get("election_timeout", 0.15)
        bootstrap_leader: NodeID = params.get("leader", self.config.node_ids[0])

        self.term = 0
        self.state = FOLLOWER
        self.voted_for: NodeID | None = None
        self.leader_hint: NodeID | None = bootstrap_leader
        self.log: list[tuple[int, LogRecord]] = []  # [(index, record)], 1-based
        self.commit_index = 0
        self.last_applied = 0
        self._votes: set[NodeID] = set()
        self._next_index: dict[NodeID, int] = {}
        self._match_index: dict[NodeID, int] = {}
        self._request_cache: dict[tuple[Hashable, int], Any] = {}
        self._election_handle = None
        self._rng = deployment.cluster.streams.stream(f"raft-{node_id}")

        self.batcher = self.make_batcher(self.propose_batch)
        self.pipeline_depth: int | None = self.config.pipeline_depth
        self._proposal_queue: deque[list[ClientRequest]] = deque()

        self.register(RequestVote, self.on_request_vote)
        self.register(VoteReply, self.on_vote_reply)
        self.register(AppendEntries, self.on_append_entries)
        self.register(AppendReply, self.on_append_reply)

        if self.id == bootstrap_leader:
            self.set_timer(0.0, self._start_election)
        else:
            self._reset_election_timer()

    # ------------------------------------------------------------------
    # Log helpers
    # ------------------------------------------------------------------

    @property
    def last_log_index(self) -> int:
        return self.log[-1][0] if self.log else 0

    @property
    def last_log_term(self) -> int:
        return self.log[-1][1][0] if self.log else 0

    def _term_at(self, index: int) -> int:
        if index == 0:
            return 0
        return self.log[index - 1][1][0]

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------

    def _reset_election_timer(self) -> None:
        if self._election_handle is not None:
            self._election_handle.cancel()
        delay = self.election_timeout * (1.0 + self._rng.random())
        self._election_handle = self.set_timer(delay, self._election_expired)

    def _election_expired(self) -> None:
        if self.state != LEADER:
            self._start_election()
        self._reset_election_timer()

    def _start_election(self) -> None:
        self.term += 1
        self.state = CANDIDATE
        self.voted_for = self.id
        self._votes = {self.id}
        if len(self.config.node_ids) == 1:
            self._become_leader()
            return
        self.broadcast(
            RequestVote(
                term=self.term,
                last_log_index=self.last_log_index,
                last_log_term=self.last_log_term,
            )
        )

    def on_request_vote(self, src: Hashable, m: RequestVote) -> None:
        if m.term > self.term:
            self._step_down(m.term)
        up_to_date = (m.last_log_term, m.last_log_index) >= (
            self.last_log_term,
            self.last_log_index,
        )
        grant = (
            m.term == self.term
            and self.voted_for in (None, src)
            and up_to_date
        )
        if grant:
            self.voted_for = src
            self._reset_election_timer()
        self.send(src, VoteReply(term=self.term, granted=grant))

    def on_vote_reply(self, src: Hashable, m: VoteReply) -> None:
        if m.term > self.term:
            self._step_down(m.term)
            return
        if self.state != CANDIDATE or m.term != self.term or not m.granted:
            return
        self._votes.add(src)
        if len(self._votes) >= len(self.config.node_ids) // 2 + 1:
            self._become_leader()

    def _become_leader(self) -> None:
        self.state = LEADER
        self.leader_hint = self.id
        next_index = self.last_log_index + 1
        self._next_index = {peer: next_index for peer in self.peers}
        self._match_index = {peer: 0 for peer in self.peers}
        self._broadcast_heartbeat()
        self.set_timer(self.heartbeat_interval, self._heartbeat_tick)

    def _step_down(self, term: int) -> None:
        self.term = term
        self.state = FOLLOWER
        self.voted_for = None
        # Requests caught mid-batch or behind the pipeline bound chase the
        # new leader (or are dropped for the client's retry to find it).
        pending: list[ClientRequest] = (
            self.batcher.drain() if self.batcher is not None else []
        )
        while self._proposal_queue:
            pending.extend(self._proposal_queue.popleft())
        for m in pending:
            if self.leader_hint is not None and self.leader_hint != self.id:
                self.send(self.leader_hint, m)

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        key = (m.client, m.request_id)
        if key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[key],
                    replied_by=self.id,
                    leader_hint=self.leader_hint,
                ),
            )
            return
        if self.state != LEADER:
            if self.leader_hint is not None and self.leader_hint != self.id:
                self.send(self.leader_hint, m)
            # else: drop; the client's retry will find the new leader
            return
        if self.batcher is not None:
            self.batcher.add(m)
        else:
            self._submit_group([m])

    def propose_batch(self, requests: list[ClientRequest]) -> None:
        """Append a coalesced group as one log record (the batcher's flush
        target); re-admits the requests if leadership was lost meanwhile."""
        if self.state != LEADER:
            for m in requests:
                self.on_request(m.client, m)
            return
        self._submit_group(list(requests))

    def _submit_group(self, group: list[ClientRequest]) -> None:
        if (
            self.pipeline_depth is not None
            and self.last_log_index - self.commit_index >= self.pipeline_depth
        ):
            self._proposal_queue.append(group)
            return
        self._append_group(group)

    def _append_group(self, group: list[ClientRequest]) -> None:
        index = self.last_log_index + 1
        if len(group) == 1:
            m = group[0]
            record: LogRecord = (self.term, m.command, RequestInfo(m.client, m.request_id))
        else:
            record = (
                self.term,
                Batch(tuple(m.command for m in group)),
                tuple(RequestInfo(m.client, m.request_id) for m in group),
            )
        self.log.append((index, record))
        self._replicate()

    def _release_pipeline(self) -> None:
        while self._proposal_queue and (
            self.pipeline_depth is None
            or self.last_log_index - self.commit_index < self.pipeline_depth
        ):
            self._append_group(self._proposal_queue.popleft())

    def _replicate(self) -> None:
        """Send each follower everything from its nextIndex onward."""
        groups: dict[int, list[NodeID]] = {}
        for peer in self.peers:
            groups.setdefault(self._next_index[peer], []).append(peer)
        for next_index, peers in groups.items():
            prev_index = next_index - 1
            entries = tuple(self.log[next_index - 1 :])
            self.multicast(
                peers,
                AppendEntries(
                    term=self.term,
                    prev_index=prev_index,
                    prev_term=self._term_at(prev_index),
                    entries=entries,
                    leader_commit=self.commit_index,
                ),
            )

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def on_append_entries(self, src: Hashable, m: AppendEntries) -> None:
        if m.term > self.term:
            self._step_down(m.term)
        if m.term < self.term:
            self.send(src, AppendReply(term=self.term, success=False))
            return
        self.state = FOLLOWER
        self.leader_hint = src
        self._reset_election_timer()
        if m.prev_index > self.last_log_index or self._term_at(m.prev_index) != m.prev_term:
            self.send(
                src,
                AppendReply(term=self.term, success=False, match_index=self.commit_index),
            )
            return
        for index, record in m.entries:
            if index <= self.last_log_index and self._term_at(index) != record[0]:
                del self.log[index - 1 :]  # conflict: truncate the suffix
            if index > self.last_log_index:
                self.log.append((index, record))
        if m.leader_commit > self.commit_index:
            self.commit_index = min(m.leader_commit, self.last_log_index)
            self._apply()
        # Report how far we provably match the LEADER's log — not our own
        # length, which may include a divergent suffix from a dead leader.
        match = m.prev_index + len(m.entries)
        self.send(src, AppendReply(term=self.term, success=True, match_index=match))

    def on_append_reply(self, src: Hashable, m: AppendReply) -> None:
        if m.term > self.term:
            self._step_down(m.term)
            return
        if self.state != LEADER or m.term != self.term:
            return
        if not m.success:
            # Back the follower up (fast: jump to its reported match point).
            self._next_index[src] = max(1, min(self._next_index[src] - 1, m.match_index + 1))
            self._replicate_to(src)
            return
        self._match_index[src] = max(self._match_index[src], m.match_index)
        self._next_index[src] = self._match_index[src] + 1
        self._advance_commit()

    def _replicate_to(self, peer: NodeID) -> None:
        next_index = self._next_index[peer]
        prev_index = next_index - 1
        entries = tuple(self.log[next_index - 1 :])
        self.send(
            peer,
            AppendEntries(
                term=self.term,
                prev_index=prev_index,
                prev_term=self._term_at(prev_index),
                entries=entries,
                leader_commit=self.commit_index,
            ),
        )

    def _advance_commit(self) -> None:
        majority = len(self.config.node_ids) // 2 + 1
        for index in range(self.last_log_index, self.commit_index, -1):
            replicated = 1 + sum(1 for m in self._match_index.values() if m >= index)
            if replicated >= majority and self._term_at(index) == self.term:
                self.commit_index = index
                self._apply()
                self._release_pipeline()
                break

    def _apply(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            _index, (term, command, request) = self.log[self.last_applied - 1]
            # A batched record fans out into per-command execution, caching,
            # tracing, and replies — batching is invisible to clients.
            for cmd, info in entry_pairs(command, request):
                value = None
                if cmd is not None:
                    request_key = None
                    if info is not None:
                        request_key = (info.client, info.request_id)
                    if request_key is not None and request_key in self._request_cache:
                        value = self._request_cache[request_key]
                    else:
                        value = self.store.execute(cmd)
                        if request_key is not None:
                            self._request_cache[request_key] = value
                if info is not None and self.state == LEADER and term == self.term:
                    self.trace_mark(info)
                    self.send(
                        info.client,
                        ClientReply(
                            request_id=info.request_id,
                            ok=True,
                            value=value,
                            replied_by=self.id,
                            leader_hint=self.id,
                        ),
                    )

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self.state != LEADER:
            return
        self._broadcast_heartbeat()
        self.set_timer(self.heartbeat_interval, self._heartbeat_tick)

    def _broadcast_heartbeat(self) -> None:
        self.broadcast(
            AppendEntries(
                term=self.term,
                prev_index=self.last_log_index,
                prev_term=self.last_log_term,
                entries=(),
                leader_commit=self.commit_index,
            )
        )
