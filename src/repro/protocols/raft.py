"""Raft (Ongaro & Ousterhout 2014) — the etcd stand-in for Figure 7.

The paper cross-validates Paxi by benchmarking its Paxos against etcd's
Raft and arguing that "without considering reconfiguration and recovery
differences, Paxos and Raft are essentially the same protocol with a single
stable leader driving the command replication".  We implement Raft from the
paper's cited description — terms, randomized election timeouts,
AppendEntries replication with per-follower ``nextIndex`` backtracking, and
commit via majority ``matchIndex`` — over the same Paxi substrate, which
reproduces exactly that comparison.

Replies are sent only after commit.  In durable configs the Raft paper's
persistence rules apply: ``term``/``votedFor`` and log records hit the
node's write-ahead log before the corresponding VoteReply/AppendReply
leaves, and the leader's own record counts toward commit only once its
local fsync completes.  A rebooted node replays its WAL (plus the latest
disk snapshot) and rejoins as a normal follower; a wiped node rejoins as a
non-voting learner — the leader repairs it through standard nextIndex
backtracking, switching to an InstallSnapshot-style state transfer when
the follower is too far behind to serve from the log — and it votes again
only after catching up to the commit frontier it observed at rejoin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.detector import (
    DEGRADED,
    HEALTHY,
    AdaptiveTimeout,
    NodeHealthMonitor,
)
from repro.paxi.ids import NodeID
from repro.paxi.lease import FollowerGrant, LeaderLease
from repro.paxi.message import Batch, ClientReply, ClientRequest, Command, Message
from repro.paxi.node import wal_record_bytes
from repro.paxi.protocol import Protocol
from repro.paxi.quorum import MajorityQuorum
from repro.protocols.log import RequestInfo, entry_pairs
from repro.sim.storage import Snapshot

# One replicated log record: (term, command-or-batch, request-info(s))
LogRecord = tuple[int, "Command | Batch | None", Any]

FOLLOWER, CANDIDATE, LEADER = "follower", "candidate", "leader"


@dataclass(frozen=True, slots=True)
class RequestVote(Message):
    term: int = 0
    last_log_index: int = 0
    last_log_term: int = 0
    #: Planned-handoff consent token: the old leader's id, set only on the
    #: campaign a Handoff solicited.  Lets followers release a lease grant
    #: held by exactly that node instead of stalling the election.
    handoff_from: NodeID | None = None


@dataclass(frozen=True, slots=True)
class VoteReply(Message):
    term: int = 0
    granted: bool = False


@dataclass(frozen=True, slots=True)
class AppendEntries(Message):
    SIZE_BYTES = 150

    term: int = 0
    prev_index: int = 0
    prev_term: int = 0
    entries: tuple[tuple[int, LogRecord], ...] = ()  # (index, record)
    leader_commit: int = 0
    lease_seq: int = 0  # leader-lease grant round (0 = leases off)
    #: Leader-clock stamp at heartbeat-timer fire, set on empty-entries
    #: heartbeats only when the φ detector is on (0.0 otherwise).  Receipt
    #: time minus this exposes the emission delay — the gray-failure
    #: signal a steady heartbeat timer hides from interval statistics.
    sent_at: float = 0.0

    def wire_size(self) -> int:
        # Batched records fatten the message; plain records keep the
        # seed's flat accounting.
        extra = 0
        for _index, record in self.entries:
            command = record[1]
            if isinstance(command, Batch):
                extra += command.extra_bytes()
        return self.SIZE_BYTES + extra


@dataclass(frozen=True, slots=True)
class AppendReply(Message):
    term: int = 0
    success: bool = False
    match_index: int = 0
    lease_seq: int = 0  # echoed grant round (the reply IS the grant ack)


@dataclass(frozen=True, slots=True)
class HandoffRequest(Message):
    """Follower → leader: 'your heartbeats read degraded; hand off to me'.
    The sender volunteers as successor — its request arriving at all
    proves it is reachable from the leader."""

    SIZE_BYTES = 40

    term: int = 0


@dataclass(frozen=True, slots=True)
class Handoff(Message):
    """Old leader → successor: leadership transferred; campaign now.  The
    sender has stopped replicating, released its lease, and stepped down."""

    SIZE_BYTES = 60

    term: int = 0


@dataclass(frozen=True, slots=True)
class ReadQuery(Message):
    """Quorum-read poll: asks a peer for its log frontier."""

    rid: int = 0


@dataclass(frozen=True, slots=True)
class ReadReply(Message):
    rid: int = 0
    frontier: int = 0


@dataclass(frozen=True, slots=True)
class InstallSnapshot(Message):
    """State transfer for a follower too far behind to repair from the log
    (wiped disk, or compacted leader log).  Answered with an
    :class:`AppendReply` so the leader's nextIndex machinery stays uniform.
    """

    term: int = 0
    snap_index: int = 0
    snap_term: int = 0
    snapshot: Snapshot | None = None

    def wire_size(self) -> int:
        size = self.snapshot.size_bytes if self.snapshot is not None else 0
        return self.SIZE_BYTES + size


class Raft(Protocol):
    """A Raft replica.

    Batching and pipelining honor the typed config fields: the leader
    coalesces admitted requests into one multi-command log record per
    batch flush, and ``pipeline_depth`` bounds how many uncommitted
    indices it keeps in flight.

    Recognized config params:

    - ``leader``: node that runs the first election immediately (avoids a
      cold-start election race in benchmarks; default first node);
    - ``heartbeat_interval``: leader heartbeat period (default 0.02 s);
    - ``election_timeout``: base election timeout (default 0.15 s);
    - ``lease_duration``: leader-lease window (seconds on each node's own
      clock); enables ``consistency="lease"`` reads (lease-based
      ReadIndex: served locally by the leader after its term-start no-op
      barrier is applied, no quorum round);
    - ``max_clock_skew``: bound on per-node clock drift assumed by the
      lease safety argument (see ``repro.paxi.lease``);
    - ``detector``: enable the φ-accrual gray-failure detector
      (``repro.paxi.detector``): followers grade the leader from
      sender-stamped heartbeats, the election timeout becomes a
      Jacobson-adaptive estimate over the observed cadence, and a
      degraded-but-alive leader is replaced by a planned handoff (see
      ``handoff``) instead of being tolerated forever;
    - ``phi_threshold`` (8.0) / ``slow_ratio`` (2.5): suspicion level for
      *failed* and emission-delay stretch for *degraded* verdicts;
    - ``handoff`` (True, needs ``detector``): when ``handoff_votes``
      distinct followers report the leader degraded within
      ``handoff_vote_window`` seconds, the leader drains to its log
      frontier, waits for the successor to match it, releases its lease,
      and steps down with zero availability gap.

    Per-command read paths (``Command.read_mode``): ``"lease"`` as above,
    ``"quorum"`` polls a majority for the max log frontier and serves
    after applying through it (linearizable without a leader), and
    ``"local"`` answers from the local state machine (bounded staleness).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        params = self.config.params
        self.heartbeat_interval: float = params.get("heartbeat_interval", 0.02)
        self.election_timeout: float = params.get("election_timeout", 0.15)
        bootstrap_leader: NodeID = params.get("leader", self.config.node_ids[0])
        #: The leader switches from log repair to snapshot transfer once a
        #: follower's nextIndex trails the commit frontier by this many slots.
        self.catchup_snapshot_gap: int = params.get("catchup_snapshot_gap", 64)
        #: Minimum interval between snapshot transfers to the same follower.
        self.snapshot_retransmit: float = params.get("snapshot_retransmit", 0.3)

        self.term = 0
        self.state = FOLLOWER
        self.voted_for: NodeID | None = None
        self.leader_hint: NodeID | None = bootstrap_leader
        self.log: list[tuple[int, LogRecord]] = []  # [(index, record)], 1-based
        self.commit_index = 0
        self.last_applied = 0
        # Log-compaction boundary: entries at or below _snap_index live only
        # in the state-machine snapshot, not in the in-memory list.
        self._snap_index = 0
        self._snap_term = 0
        # Highest own log index known durable; in-memory configs track the
        # log tip synchronously, durable ones lag by the fsync in flight.
        self._durable_index = 0
        self._votes: set[NodeID] = set()
        self._next_index: dict[NodeID, int] = {}
        self._match_index: dict[NodeID, int] = {}
        self._snap_sent: dict[NodeID, float] = {}
        self._request_cache: dict[tuple[Hashable, int], Any] = {}
        self._election_handle = None
        self._rng = deployment.cluster.streams.stream(f"raft-{node_id}")

        # Gray-failure detection and planned handoff (opt-in; see the
        # class docstring and repro.paxi.detector).
        self.detector_enabled: bool = bool(params.get("detector", False))
        self.handoff_enabled: bool = bool(params.get("handoff", True))
        self.handoff_votes_needed: int = params.get("handoff_votes", 2)
        self.handoff_vote_window: float = params.get("handoff_vote_window", 0.5)
        self.handoff_cooldown: float = params.get("handoff_cooldown", 1.0)
        self.handoff_retransmit: float = params.get("handoff_retransmit", 0.3)
        if self.detector_enabled:
            self._monitor: NodeHealthMonitor | None = NodeHealthMonitor(
                phi_threshold=params.get("phi_threshold", 8.0),
                slow_ratio=params.get("slow_ratio", 2.5),
                window=params.get("phi_window", 64),
                min_samples=params.get("detector_min_samples", 8),
            )
            self._adaptive: AdaptiveTimeout | None = AdaptiveTimeout(
                initial=self.election_timeout,
                floor=2.0 * self.heartbeat_interval,
                ceiling=params.get("adaptive_ceiling", 2.0),
            )
            self.adaptive_multiplier: float = params.get("adaptive_multiplier", 4.0)
        else:
            self._monitor = None
            self._adaptive = None
        self._handing_off = False
        self._handoff_point = 0
        self._handoff_successor: NodeID | None = None
        self._handoff_votes: dict[NodeID, float] = {}
        self._handoff_cooldown_until = 0.0
        self._handoff_request_after = 0.0
        self._handoff_buffer: list[ClientRequest] = []
        self._handoff_grant: NodeID | None = None
        self.handoffs_completed = 0
        self.handoffs_received = 0
        self.handoff_requests_sent = 0

        self.batcher = self.make_batcher(self.propose_batch)
        self.pipeline_depth: int | None = self.config.pipeline_depth
        self._proposal_queue: deque[list[ClientRequest]] = deque()

        # Leader leases (lease-based ReadIndex): grants piggyback on
        # AppendEntries and are echoed in AppendReply; reads additionally
        # wait for the term-start no-op barrier to be applied.
        self.lease_duration: float | None = params.get("lease_duration")
        self.max_clock_skew: float = params.get("max_clock_skew", 0.0)
        if self.lease_duration is not None:
            majority = len(self.config.node_ids) // 2 + 1
            self._lease: LeaderLease | None = LeaderLease(
                self.clock, self.lease_duration, self.max_clock_skew, majority, self.id
            )
            self._grant: FollowerGrant | None = FollowerGrant(
                self.clock, self.lease_duration
            )
            if self.restart_reason is not None:
                # The pre-restart grant (if any) is forgotten; block every
                # candidate for one full window rather than double-vote.
                self._grant.grant_unknown()
        else:
            self._lease = None
            self._grant = None
        self._lease_barrier = 0
        self._pending_lease_reads: list[ClientRequest] = []
        self._quorum_reads: dict[int, list] = {}  # rid -> [request, quorum, frontier]
        self._next_read_id = 0
        self._rinse_waiters: list[list] = []  # [frontier, request]
        self._read_rng = None
        self._read_waiters: dict[Hashable, list[ClientRequest]] = {}

        self.register(RequestVote, self.on_request_vote)
        self.register(VoteReply, self.on_vote_reply)
        self.register(AppendEntries, self.on_append_entries)
        self.register(AppendReply, self.on_append_reply)
        self.register(InstallSnapshot, self.on_install_snapshot)
        self.register(HandoffRequest, self.on_handoff_request)
        self.register(Handoff, self.on_handoff)
        self.register(ReadQuery, self.on_read_query)
        self.register(ReadReply, self.on_read_reply)

        #: Non-voting learner mode after a wipe (or a reboot without a
        #: disk): the node's vote history is gone, so it must not grant
        #: votes until it has re-learned the commit frontier it saw at
        #: rejoin (``_catchup_target``).  It still accepts AppendEntries —
        #: that is how the leader repairs it.
        self.recovering = False
        self._catchup_target: int | None = None

        if self.restart_reason is not None:
            self._recover()
        elif self.id == bootstrap_leader:
            self.set_timer(0.0, self._start_election)
        else:
            self._reset_election_timer()

    # ------------------------------------------------------------------
    # Log helpers
    # ------------------------------------------------------------------

    @property
    def last_log_index(self) -> int:
        return self.log[-1][0] if self.log else self._snap_index

    @property
    def last_log_term(self) -> int:
        return self.log[-1][1][0] if self.log else self._snap_term

    def _pos(self, index: int) -> int:
        """List position of ``index`` (entries at or below the snapshot
        boundary are compacted away)."""
        return index - self._snap_index - 1

    def _term_at(self, index: int) -> int:
        if index <= self._snap_index:
            return self._snap_term if index == self._snap_index else 0
        return self.log[self._pos(index)][1][0]

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------

    def _reset_election_timer(self) -> None:
        if self._election_handle is not None:
            self._election_handle.cancel()
        delay = self._election_delay() * (1.0 + self._rng.random())
        self._election_handle = self.set_timer(delay, self._election_expired)

    def _election_delay(self) -> float:
        """Base follower timeout before campaigning: the Jacobson estimate
        over observed heartbeat cadence with the detector on (self-tuning
        to the topology), the fixed ``election_timeout`` otherwise."""
        adaptive = self._adaptive
        if adaptive is not None and adaptive.samples >= 4:
            return adaptive.timeout * self.adaptive_multiplier
        return self.election_timeout

    def _election_expired(self) -> None:
        if (
            self.state != LEADER
            and not self.recovering
            # A live lease grant forbids campaigning: our RequestVote
            # would be refused anyway, so wait out the window instead.
            and not (self._grant is not None and self._grant.blocks(self.id))
            # φ veto: don't campaign against a leader the accrual evidence
            # says is fine (an unlucky jitter streak, not a failure).
            # Degraded and silent leaders fall through to the campaign.
            and not self._leader_reads_healthy()
        ):
            self._start_election()
        self._reset_election_timer()

    def _leader_reads_healthy(self) -> bool:
        if self._monitor is None:
            return False
        leader = self.leader_hint
        return (
            leader is not None
            and leader != self.id
            and self._monitor.samples(leader) > 0
            and self._monitor.assess(leader, self.clock.now) == HEALTHY
        )

    def _start_election(self) -> None:
        self.term += 1
        self.state = CANDIDATE
        self.voted_for = self.id
        self._votes = {self.id}
        if len(self.config.node_ids) == 1:
            self.persist("term", (self.term, self.id))
            self._become_leader()
            return
        # Our own vote must survive a reboot before anyone can count it.
        # A pending handoff consent token rides on the RequestVote so
        # follower grant windows release early.
        term = self.term
        token, self._handoff_grant = self._handoff_grant, None
        request = RequestVote(
            term=term,
            last_log_index=self.last_log_index,
            last_log_term=self.last_log_term,
            handoff_from=token,
        )
        self.persist(
            "term", (term, self.id), then=lambda: self._campaign(term, request)
        )

    def _campaign(self, term: int, request: RequestVote) -> None:
        if self.term != term or self.state != CANDIDATE:
            return  # superseded while the vote record was syncing
        self.broadcast(request)

    def _lease_blocks_vote(
        self, candidate: Hashable, released_by: NodeID | None = None
    ) -> bool:
        """Voting for ``candidate`` would break a lease this node is party
        to — either a grant it gave someone else, or (as leader) its own
        lease, skew-padded because granters run their refusal windows on
        their own clocks.

        ``released_by`` is a planned-handoff consent token: a grant held
        by exactly that node releases early, because the holder stopped
        serving lease reads before it signed the successor's campaign.
        The leaseholder-side window never releases this way — only its
        owner knows when it truly stopped serving."""
        if self._grant is not None and self._grant.blocks(candidate):
            if released_by is None or not self._grant.releases(released_by):
                return True
        return (
            self._lease is not None
            and candidate != self.id
            and self.clock.now < self._lease.valid_until + self.max_clock_skew
        )

    def on_request_vote(self, src: Hashable, m: RequestVote) -> None:
        if self._lease_blocks_vote(src, released_by=m.handoff_from):
            # Refuse without adopting the term: a partitioned candidate
            # must not depose a live leaseholder by term inflation alone.
            self.send(src, VoteReply(term=self.term, granted=False))
            return
        if m.term > self.term:
            self._step_down(m.term)
        if self.recovering:
            # A wiped node's vote history is gone; granting could elect a
            # leader missing committed entries.  Abstain until caught up.
            self.send(src, VoteReply(term=self.term, granted=False))
            return
        up_to_date = (m.last_log_term, m.last_log_index) >= (
            self.last_log_term,
            self.last_log_index,
        )
        grant = (
            m.term == self.term
            and self.voted_for in (None, src)
            and up_to_date
        )
        if grant:
            self.voted_for = src
            self._reset_election_timer()
            # The vote leaves the node only after it is durable.
            term = self.term
            self.persist(
                "term",
                (term, src),
                then=lambda: self.send(src, VoteReply(term=term, granted=True)),
            )
            return
        self.send(src, VoteReply(term=self.term, granted=grant))

    def on_vote_reply(self, src: Hashable, m: VoteReply) -> None:
        if m.term > self.term:
            self._step_down(m.term)
            return
        if self.state != CANDIDATE or m.term != self.term or not m.granted:
            return
        self._votes.add(src)
        if len(self._votes) >= len(self.config.node_ids) // 2 + 1:
            self._become_leader()

    def _become_leader(self) -> None:
        self.state = LEADER
        self.leader_hint = self.id
        next_index = self.last_log_index + 1
        self._next_index = {peer: next_index for peer in self.peers}
        self._match_index = {peer: 0 for peer in self.peers}
        self._snap_sent = {}
        if self._lease is not None:
            self._lease.reset()
            self._append_noop_barrier()
            self._replicate()
        else:
            self._broadcast_heartbeat()
        self.set_timer(self.heartbeat_interval, self._heartbeat_tick)

    def _append_noop_barrier(self) -> None:
        """Raft's term-start no-op: committing an own-term entry is the only
        way a new leader learns the true commit frontier, so lease reads
        wait until it has been *applied* (the read barrier)."""
        index = self.last_log_index + 1
        record: LogRecord = (self.term, None, None)
        self.log.append((index, record))
        self._lease_barrier = index
        self.persist(
            "append",
            (index, record),
            slot=index,
            size_bytes=wal_record_bytes(None),
            then=lambda: self._mark_durable(index),
        )

    def _step_down(self, term: int) -> None:
        self.term = term
        self.state = FOLLOWER
        self.voted_for = None
        if self._handing_off:
            # Deposed mid-handoff by a competing term: the drain is moot.
            self._handing_off = False
            self._handoff_successor = None
        self.persist("term", (term, None))  # nothing waits on this record
        # Requests caught mid-batch or behind the pipeline bound chase the
        # new leader (or are dropped for the client's retry to find it).
        pending: list[ClientRequest] = (
            self.batcher.drain() if self.batcher is not None else []
        )
        while self._proposal_queue:
            pending.extend(self._proposal_queue.popleft())
        pending.extend(self._handoff_buffer)
        self._handoff_buffer = []
        for m in pending:
            if self.leader_hint is not None and self.leader_hint != self.id:
                self.send(self.leader_hint, m)

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        if m.command.is_read:
            mode = m.command.read_mode
            if mode == "local":
                self._serve_local_read(m)
                return
            if mode == "quorum" and not self.recovering:
                self._start_quorum_read(m)
                return
            if mode == "lease" and self._try_lease_read(m):
                return
            # lease invalid (or this replica isn't the leaseholder): fall
            # through to the full consensus round — always linearizable.
        key = (m.client, m.request_id)
        if key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[key],
                    replied_by=self.id,
                    leader_hint=self.leader_hint,
                ),
            )
            return
        if self.state != LEADER:
            if self.leader_hint is not None and self.leader_hint != self.id:
                self.send(self.leader_hint, m)
            # else: drop; the client's retry will find the new leader
            return
        if self._handing_off:
            # Mid-handoff drain: no new records past the transfer point.
            # The request follows the successor on completion (or is
            # replayed here if the handoff aborts).
            self._handoff_buffer.append(m)
            return
        if self.batcher is not None:
            self.batcher.add(m)
        else:
            self._submit_group([m])

    def propose_batch(self, requests: list[ClientRequest]) -> None:
        """Append a coalesced group as one log record (the batcher's flush
        target); re-admits the requests if leadership was lost meanwhile."""
        if self.state != LEADER:
            for m in requests:
                self.on_request(m.client, m)
            return
        self._submit_group(list(requests))

    def _submit_group(self, group: list[ClientRequest]) -> None:
        if (
            self.pipeline_depth is not None
            and self.last_log_index - self.commit_index >= self.pipeline_depth
        ):
            self._proposal_queue.append(group)
            return
        self._append_group(group)

    def _append_group(self, group: list[ClientRequest]) -> None:
        index = self.last_log_index + 1
        if len(group) == 1:
            m = group[0]
            record: LogRecord = (self.term, m.command, RequestInfo(m.client, m.request_id))
        else:
            record = (
                self.term,
                Batch(tuple(m.command for m in group)),
                tuple(RequestInfo(m.client, m.request_id) for m in group),
            )
        self.log.append((index, record))
        # The leader's own record joins the commit count only once durable
        # (synchronously for in-memory configs, after the fsync otherwise);
        # the local disk write overlaps the AppendEntries round trips.
        self.persist(
            "append",
            (index, record),
            slot=index,
            size_bytes=wal_record_bytes(record[1]),
            then=lambda: self._mark_durable(index),
        )
        self._replicate()

    def _release_pipeline(self) -> None:
        while self._proposal_queue and (
            self.pipeline_depth is None
            or self.last_log_index - self.commit_index < self.pipeline_depth
        ):
            self._append_group(self._proposal_queue.popleft())

    # ------------------------------------------------------------------
    # Read paths: lease-based ReadIndex, quorum reads, and local reads
    # ------------------------------------------------------------------

    def _lease_valid(self) -> bool:
        """Whether this node's leader lease currently permits serving
        local reads.  Override hook for the adversarial read tests."""
        return self._lease is not None and self._lease.valid

    def _try_lease_read(self, m: ClientRequest) -> bool:
        """Serve (or park) a lease read; False = caller must fall back."""
        if self.state != LEADER or not self._lease_valid():
            return False
        if self.last_applied >= self._lease_barrier:
            self._serve_read_from_store(m)
        else:
            self._pending_lease_reads.append(m)
        return True

    def _serve_read_from_store(self, m: ClientRequest) -> None:
        key = m.command.key
        self.send(
            m.client,
            ClientReply(
                request_id=m.request_id,
                ok=True,
                value=self.store.read(key),
                replied_by=self.id,
                leader_hint=self.leader_hint,
                version=self.store.version(key),
            ),
        )

    def _serve_local_read(self, m: ClientRequest) -> None:
        """Bounded-staleness local read; a session token (``min_version``)
        parks the reply until this replica has applied that many writes to
        the key (read-your-writes / monotonic reads)."""
        key = m.command.key
        if self.store.version(key) < m.command.min_version:
            self._read_waiters.setdefault(key, []).append(m)
            return
        self._serve_read_from_store(m)

    def _drain_read_waiters(self, key: Hashable) -> None:
        waiters = self._read_waiters.get(key)
        if not waiters:
            return
        ready = [m for m in waiters if self.store.version(key) >= m.command.min_version]
        if ready:
            self._read_waiters[key] = [m for m in waiters if m not in ready]
            for m in ready:
                self._serve_local_read(m)

    def _start_quorum_read(self, m: ClientRequest) -> None:
        """PQR-style quorum read: poll a majority for its log frontier;
        any replica (not just the leader) coordinates."""
        quorum = MajorityQuorum(self.config.node_ids)
        quorum.ack(self.id)
        frontier = self.last_log_index
        if quorum.satisfied():  # single-node cluster
            self._finish_quorum_read(m, frontier)
            return
        self._next_read_id += 1
        rid = self._next_read_id
        self._quorum_reads[rid] = [m, quorum, frontier]
        self.multicast(self._read_targets(quorum.size - 1), ReadQuery(rid=rid))

    def _read_targets(self, needed: int) -> list[NodeID]:
        peers = self.peers
        if needed >= len(peers):
            return peers
        if self._read_rng is None:
            self._read_rng = self.deployment.cluster.streams.stream(
                f"raft-read-{self.id}"
            )
        return self._read_rng.sample(peers, needed)

    def on_read_query(self, src: Hashable, m: ReadQuery) -> None:
        if self.recovering:
            return  # an incomplete log would under-report the frontier
        self.send(src, ReadReply(rid=m.rid, frontier=self.last_log_index))

    def on_read_reply(self, src: Hashable, m: ReadReply) -> None:
        state = self._quorum_reads.get(m.rid)
        if state is None:
            return
        state[2] = max(state[2], m.frontier)
        quorum = state[1]
        quorum.ack(src)
        if quorum.satisfied():
            del self._quorum_reads[m.rid]
            self._finish_quorum_read(state[0], state[2])

    def _finish_quorum_read(self, m: ClientRequest, frontier: int) -> None:
        """Rinse: a committed write is in the log of at least one polled
        member, so the max frontier bounds it — serve only after this
        replica has applied through that index."""
        if self.last_applied >= frontier:
            self._serve_read_from_store(m)
        else:
            self._rinse_waiters.append([frontier, m])

    def _drain_read_backlog(self) -> None:
        if self._rinse_waiters:
            still: list[list] = []
            for waiter in self._rinse_waiters:
                if self.last_applied >= waiter[0]:
                    self._serve_read_from_store(waiter[1])
                else:
                    still.append(waiter)
            self._rinse_waiters = still
        if self._pending_lease_reads:
            pending, self._pending_lease_reads = self._pending_lease_reads, []
            for m in pending:
                if self.state != LEADER or not self._lease_valid():
                    self.on_request(m.client, m)  # fall back to consensus
                elif self.last_applied >= self._lease_barrier:
                    self._serve_read_from_store(m)
                else:
                    self._pending_lease_reads.append(m)

    def _mark_durable(self, index: int) -> None:
        """Our own log record hit disk; it may now count toward commit."""
        self._durable_index = max(self._durable_index, index)
        if self.state == LEADER:
            self._advance_commit()

    def _needs_snapshot(self, next_index: int) -> bool:
        """Log repair can't (compacted) or shouldn't (too far behind) serve
        this follower from the in-memory log."""
        if next_index <= self._snap_index:
            return True
        return self.commit_index - next_index >= self.catchup_snapshot_gap

    def _replicate(self) -> None:
        """Send each follower everything from its nextIndex onward."""
        groups: dict[int, list[NodeID]] = {}
        for peer in self.peers:
            groups.setdefault(self._next_index[peer], []).append(peer)
        for next_index, peers in groups.items():
            if self._needs_snapshot(next_index):
                for peer in peers:
                    self._send_snapshot(peer)
                continue
            prev_index = next_index - 1
            entries = tuple(self.log[self._pos(next_index) :])
            self.multicast(
                peers,
                AppendEntries(
                    term=self.term,
                    prev_index=prev_index,
                    prev_term=self._term_at(prev_index),
                    entries=entries,
                    leader_commit=self.commit_index,
                ),
            )

    def _send_snapshot(self, peer: NodeID) -> None:
        """InstallSnapshot-style state transfer to a lagging follower."""
        last = self._snap_sent.get(peer)
        if last is not None and self.now - last < self.snapshot_retransmit:
            return  # a transfer is plausibly in flight; don't storm
        self._snap_sent[peer] = self.now
        upto = self.last_applied
        payload, size = self.snapshot_payload(upto)
        self.send(
            peer,
            InstallSnapshot(
                term=self.term,
                snap_index=upto,
                snap_term=self._term_at(upto),
                snapshot=Snapshot(upto, payload, size),
            ),
        )

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def on_append_entries(self, src: Hashable, m: AppendEntries) -> None:
        if m.term > self.term:
            self._step_down(m.term)
        if m.term < self.term:
            self.send(src, AppendReply(term=self.term, success=False))
            return
        self.state = FOLLOWER
        self.leader_hint = src
        if self._monitor is not None and not m.entries and m.sent_at > 0.0:
            # Sender-stamped heartbeat: feed the gray-failure detector.
            self._observe_leader(src, self.clock.now - m.sent_at)
        # Granting is independent of log consistency: the promise not to
        # vote for others holds even while our log is being repaired.
        lease_seq = m.lease_seq if self._grant is not None else 0
        if lease_seq:
            self._grant.grant(src)
        if self.recovering:
            # Remember the commit frontier we must reach before voting.
            if self._catchup_target is None or m.leader_commit > self._catchup_target:
                self._catchup_target = m.leader_commit
        else:
            self._reset_election_timer()
        if m.prev_index < self._snap_index or (
            m.prev_index > self.last_log_index
            or self._term_at(m.prev_index) != m.prev_term
        ):
            self.send(
                src,
                AppendReply(
                    term=self.term,
                    success=False,
                    match_index=self.commit_index,
                    lease_seq=lease_seq,
                ),
            )
            return
        appended: list[tuple[int, LogRecord]] = []
        for index, record in m.entries:
            if index <= self._snap_index:
                continue  # compacted away: already applied and durable
            if index <= self.last_log_index and self._term_at(index) != record[0]:
                del self.log[self._pos(index) :]  # conflict: truncate the suffix
                self._durable_index = min(self._durable_index, index - 1)
                self.persist("truncate", index, slot=index)
            if index > self.last_log_index:
                self.log.append((index, record))
                appended.append((index, record))
        if m.leader_commit > self.commit_index:
            self.commit_index = min(m.leader_commit, self.last_log_index)
            self._apply()
        # Report how far we provably match the LEADER's log — not our own
        # length, which may include a divergent suffix from a dead leader.
        match = m.prev_index + len(m.entries)
        reply = AppendReply(
            term=self.term, success=True, match_index=match, lease_seq=lease_seq
        )
        if appended:
            # One WAL record per entry; the success reply waits for the
            # last record's sync (group commit folds them into one fsync).
            for index, record in appended[:-1]:
                self.persist(
                    "append",
                    (index, record),
                    slot=index,
                    size_bytes=wal_record_bytes(record[1]),
                    then=lambda i=index: self._mark_durable(i),
                )
            last_index, last_record = appended[-1]

            def _synced() -> None:
                self._mark_durable(last_index)
                self.send(src, reply)

            self.persist(
                "append",
                (last_index, last_record),
                slot=last_index,
                size_bytes=wal_record_bytes(last_record[1]),
                then=_synced,
            )
        else:
            self.send(src, reply)
        self._maybe_finish_recovery()

    def _maybe_finish_recovery(self) -> None:
        if (
            self.recovering
            and self._catchup_target is not None
            and self.commit_index >= self._catchup_target
        ):
            # Caught up to the frontier observed at rejoin: every commit our
            # forgotten votes could have enabled is now re-held durably, so
            # voting is safe again.
            self.recovering = False
            self._catchup_target = None
            self._reset_election_timer()

    def on_append_reply(self, src: Hashable, m: AppendReply) -> None:
        if m.term > self.term:
            self._step_down(m.term)
            return
        if self.state != LEADER or m.term != self.term:
            return
        if m.lease_seq and self._lease is not None:
            # Both success and failure replies carry the grant echo: log
            # repair and lease renewal are independent.
            self._lease.record_grant(m.lease_seq, src)
        if not m.success:
            # Back the follower up (fast: jump to its reported match point).
            self._next_index[src] = max(1, min(self._next_index[src] - 1, m.match_index + 1))
            self._replicate_to(src)
            return
        self._match_index[src] = max(self._match_index[src], m.match_index)
        self._next_index[src] = self._match_index[src] + 1
        self._advance_commit()

    def _replicate_to(self, peer: NodeID) -> None:
        next_index = self._next_index[peer]
        if self._needs_snapshot(next_index):
            self._send_snapshot(peer)
            return
        prev_index = next_index - 1
        entries = tuple(self.log[self._pos(next_index) :])
        self.send(
            peer,
            AppendEntries(
                term=self.term,
                prev_index=prev_index,
                prev_term=self._term_at(prev_index),
                entries=entries,
                leader_commit=self.commit_index,
            ),
        )

    def _advance_commit(self) -> None:
        majority = len(self.config.node_ids) // 2 + 1
        for index in range(self.last_log_index, self.commit_index, -1):
            own = 1 if self._durable_index >= index else 0
            replicated = own + sum(1 for m in self._match_index.values() if m >= index)
            if replicated >= majority and self._term_at(index) == self.term:
                self.commit_index = index
                self._apply()
                self._release_pipeline()
                break
        if self._handing_off:
            self._maybe_complete_handoff()

    def _apply(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            _index, (term, command, request) = self.log[self._pos(self.last_applied)]
            # A batched record fans out into per-command execution, caching,
            # tracing, and replies — batching is invisible to clients.
            for cmd, info in entry_pairs(command, request):
                value = None
                if cmd is not None:
                    request_key = None
                    if info is not None:
                        request_key = (info.client, info.request_id)
                    if request_key is not None and request_key in self._request_cache:
                        value = self._request_cache[request_key]
                    else:
                        value = self.store.execute(cmd)
                        if request_key is not None:
                            self._request_cache[request_key] = value
                if cmd is not None and cmd.is_write:
                    self._drain_read_waiters(cmd.key)
                if info is not None and self.state == LEADER and term == self.term:
                    self.trace_mark(info)
                    self.send(
                        info.client,
                        ClientReply(
                            request_id=info.request_id,
                            ok=True,
                            value=value,
                            replied_by=self.id,
                            leader_hint=self.id,
                        ),
                    )
        if self._rinse_waiters or self._pending_lease_reads:
            self._drain_read_backlog()
        self.maybe_snapshot(self.last_applied)

    # ------------------------------------------------------------------
    # Snapshots and crash recovery
    # ------------------------------------------------------------------

    def snapshot_payload(self, executed_upto: int) -> tuple[Any, int]:
        """Applied state through ``executed_upto``: store dump, request
        cache (retried requests stay deduplicated after a restore), and the
        boundary entry's term (needed to answer AppendEntries consistency
        checks against the compacted prefix)."""
        dump = self.store.dump()
        cache = dict(self._request_cache)
        size = (
            256
            + sum(64 + 16 * len(chain) for chain in dump.values())
            + 32 * len(cache)
        )
        return (dump, cache, self._term_at(executed_upto)), size

    def on_install_snapshot(self, src: Hashable, m: InstallSnapshot) -> None:
        if m.term > self.term:
            self._step_down(m.term)
        if m.term < self.term:
            self.send(src, AppendReply(term=self.term, success=False))
            return
        self.state = FOLLOWER
        self.leader_hint = src
        if self.recovering:
            if self._catchup_target is None or m.snap_index > self._catchup_target:
                self._catchup_target = m.snap_index
        else:
            self._reset_election_timer()
        if m.snap_index > self.commit_index and m.snapshot is not None:
            dump, cache, _snap_term = m.snapshot.payload
            self.store.restore(dump)
            self._request_cache = dict(cache)
            # Anything we hold above the boundary may conflict with the
            # leader's log; drop it and let repair re-send the suffix.
            self.log = []
            self._snap_index = m.snap_index
            self._snap_term = m.snap_term
            self.commit_index = m.snap_index
            self.last_applied = m.snap_index
            self._durable_index = min(self._durable_index, m.snap_index)
            if self.disk is not None and not self._snapshot_inflight:
                # Persist the adopted state so a reboot replays from here.
                self._snapshot_inflight = True
                cost = self.disk.profile.sync_cost(m.snapshot.size_bytes)
                self._server.submit(cost, self._install_snapshot, m.snapshot)
        # Everything at or below the boundary is provably matched.
        self.send(
            src, AppendReply(term=self.term, success=True, match_index=m.snap_index)
        )
        self._maybe_finish_recovery()

    def _recover(self) -> None:
        """Rebuild state for a restarted incarnation.

        Reboot with a disk: reinstall the latest snapshot, then replay the
        WAL's term/vote, append, and truncate records in order.
        ``commit_index`` restarts at the snapshot boundary (Raft never
        persists it); the leader's next AppendEntries re-advances it.
        Wipe, or reboot without a disk: rejoin as a non-voting learner.
        """
        had_state = False
        if self.disk is not None:
            snap = self.disk.snapshot
            if snap is not None:
                had_state = True
                dump, cache, snap_term = snap.payload
                self.store.restore(dump)
                self._request_cache = dict(cache)
                self._snap_index = snap.upto
                self._snap_term = snap_term
                self.commit_index = snap.upto
                self.last_applied = snap.upto
            for record in self.disk.wal.records:
                had_state = True
                if record.kind == "term":
                    term, voted = record.data
                    if term >= self.term:
                        self.term, self.voted_for = term, voted
                elif record.kind == "append":
                    index, rec = record.data
                    if index <= self._snap_index:
                        continue
                    pos = self._pos(index)
                    if pos < len(self.log):
                        del self.log[pos:]
                    self.log.append((index, rec))
                elif record.kind == "truncate":
                    pos = self._pos(record.data)
                    if 0 <= pos < len(self.log):
                        del self.log[pos:]
        self._durable_index = self.last_log_index
        self.recovering = self.restart_reason == "wipe" or not had_state
        if not self.recovering:
            self._reset_election_timer()

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self.state != LEADER:
            return
        self._broadcast_heartbeat()
        self.set_timer(self.heartbeat_interval, self._heartbeat_tick)

    def _broadcast_heartbeat(self) -> None:
        self.broadcast(
            AppendEntries(
                term=self.term,
                prev_index=self.last_log_index,
                prev_term=self.last_log_term,
                entries=(),
                leader_commit=self.commit_index,
                lease_seq=self._lease.stamp() if self._lease is not None else 0,
                sent_at=self.clock.now if self.detector_enabled else 0.0,
            )
        )

    # ------------------------------------------------------------------
    # Gray-failure detection and planned leader handoff
    # ------------------------------------------------------------------

    def _observe_leader(self, src: NodeID, delay: float) -> None:
        """Heartbeat receipt: feed the φ-accrual monitor and the adaptive
        timeout, then grade the leader.  A *degraded* verdict (alive but
        its emission delay stretched past ``slow_ratio``) solicits a
        planned handoff instead of waiting for an election that a
        still-heartbeating leader will never trigger."""
        now = self.clock.now
        interval = self._monitor.observe(src, now, delay=delay)
        if interval is not None and self._adaptive is not None:
            self._adaptive.observe(interval)
        if not self.handoff_enabled or self.state == LEADER or self.recovering:
            return
        if self.now < self._handoff_request_after:
            return
        if self._monitor.assess(src, now) != DEGRADED:
            return
        self._handoff_request_after = self.now + self.handoff_vote_window / 2.0
        self.handoff_requests_sent += 1
        self.send(src, HandoffRequest(term=self.term))

    def on_handoff_request(self, src: Hashable, m: HandoffRequest) -> None:
        """Leader side: tally degradation reports; once enough distinct
        followers agree within the vote window, hand off to the latest
        reporter."""
        if (
            self.state != LEADER
            or self.recovering
            or self._handing_off
            or m.term != self.term
            or not self.handoff_enabled
        ):
            return
        now = self.now
        if now < self._handoff_cooldown_until:
            return
        horizon = now - self.handoff_vote_window
        self._handoff_votes = {
            peer: at for peer, at in self._handoff_votes.items() if at >= horizon
        }
        self._handoff_votes[src] = now
        if len(self._handoff_votes) >= self.handoff_votes_needed:
            self._begin_handoff(src)

    def _begin_handoff(self, successor: NodeID) -> None:
        """Handoff phase 1: stop appending and drain to a transfer point.

        The transfer point is the current log frontier: leadership moves
        only once everything at or below it has committed AND the
        successor's matchIndex has reached it — Raft's extra obligation,
        because a successor missing entries could not win the election
        the handoff solicits (the up-to-date check would refuse it)."""
        self._handing_off = True
        self._handoff_successor = successor
        self._handoff_votes = {}
        self._handoff_cooldown_until = self.now + self.handoff_cooldown
        if self.batcher is not None:
            self.batcher.flush()
        while self._proposal_queue:
            self._append_group(self._proposal_queue.popleft())
        self._handoff_point = self.last_log_index
        if not self._maybe_complete_handoff():
            # Liveness fallback: if the drain cannot finish (lost acks, a
            # crashed successor), resume normal leadership rather than
            # wedging the group in a half-handoff.
            self.set_timer(
                self.handoff_retransmit,
                lambda: self._handoff_drain_expired(successor),
            )

    def _handoff_drain_expired(self, successor: NodeID) -> None:
        if self._handing_off and self._handoff_successor == successor:
            self._handing_off = False
            self._handoff_successor = None
            # Still the leader: requests parked during the drain resume.
            buffered, self._handoff_buffer = self._handoff_buffer, []
            for m in buffered:
                self.on_request(m.client, m)

    def _maybe_complete_handoff(self) -> bool:
        successor = self._handoff_successor
        if (
            successor is None
            or self.commit_index < self._handoff_point
            or self._match_index.get(successor, 0) < self._handoff_point
        ):
            return False
        self._complete_handoff(successor)
        return True

    def _complete_handoff(self, successor: NodeID) -> None:
        """Handoff phase 2: release the lease, step to follower, and
        solicit the successor's campaign.  Ordering matters: our own
        validity window dies *before* the Handoff leaves, so by the time
        the successor's consent-bearing RequestVote releases the
        followers' grant windows this node can no longer serve a lease
        read."""
        self._handing_off = False
        self._handoff_successor = None
        if self._lease is not None:
            self._lease.valid_until = float("-inf")
            # Clears in-flight grant rounds too, so a straggling grant
            # echo cannot resurrect the window we just released.
            self._lease.reset()
        self.state = FOLLOWER
        self.leader_hint = successor
        self.handoffs_completed += 1
        term = self.term
        self.send(successor, Handoff(term=term))
        self.set_timer(
            self.handoff_retransmit,
            lambda: self._retransmit_handoff(successor, term, 3),
        )
        buffered, self._handoff_buffer = self._handoff_buffer, []
        for m in buffered:
            self.send(successor, m)
        self._reset_election_timer()

    def _retransmit_handoff(
        self, successor: NodeID, term: int, attempts: int
    ) -> None:
        """Liveness: the Handoff travels over the same lossy network as
        everything else.  Re-send until the successor's campaign shows up
        (our term advances past the handed-off one); the ordinary
        election timer is the ultimate fallback."""
        if (
            self.state == LEADER
            or self.recovering
            or self.term > term
            or attempts <= 0
        ):
            return
        self.send(successor, Handoff(term=term))
        self.set_timer(
            self.handoff_retransmit,
            lambda: self._retransmit_handoff(successor, term, attempts - 1),
        )

    def on_handoff(self, src: Hashable, m: Handoff) -> None:
        """Successor side: campaign immediately, carrying the old leader's
        consent so follower grant windows release instead of stalling the
        election for a lease duration."""
        if self.recovering or self.state == LEADER:
            return
        if m.term < self.term:
            return  # a newer term already exists; stale handoff
        self.handoffs_received += 1
        self._handoff_grant = src
        self._start_election()
