"""Flexible Paxos (FPaxos) — Howard, Malkhi, Spiegelman 2016 (paper section 2).

FPaxos relaxes MultiPaxos's majority requirement: safety only needs every
phase-1 quorum to intersect every phase-2 quorum.  Running with
``|q2| < majority`` (and ``|q1| = N - |q2| + 1``) trades fault tolerance for
a smaller replication quorum, which shortens the quorum wait ``DQ`` and
reduces the leader's critical-path work — the "small flexible quorums
benefit" of paper section 5.2.

Everything else — including crash recovery (WAL replay after a reboot,
learner-mode state transfer after a wipe) — is inherited from
:class:`~repro.protocols.paxos.MultiPaxos`.  Note that small ``|q2|``
makes durability *more* load-bearing, not less: with ``|q2| = 1`` the
leader's own disk can be the entire phase-2 quorum, so in durable configs
its self-ack waits for the WAL fsync like any other acceptor's.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.quorum import Quorum, ThresholdQuorum
from repro.protocols.paxos import MultiPaxos


class FPaxos(MultiPaxos):
    """MultiPaxos with flexible (threshold) quorums.

    Recognized config params (in addition to MultiPaxos's):

    - ``q2_size``: phase-2 quorum size (default 3, the paper's
      "FPaxos 9 Nodes (|q2|=3)" configuration).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        n = deployment.config.n
        q2 = deployment.config.param("q2_size", 3)
        if not 1 <= q2 <= n:
            raise ConfigError(f"q2_size {q2} outside [1, {n}]")
        self.q2_size = q2
        self.q1_size = n - q2 + 1
        super().__init__(deployment, node_id)

    def phase1_quorum(self) -> Quorum:
        return ThresholdQuorum(self.config.node_ids, self.q1_size)

    def phase2_quorum(self) -> Quorum:
        return ThresholdQuorum(self.config.node_ids, self.q2_size)

    def read_quorum(self) -> Quorum:
        # A quorum read must observe every committed write, i.e. intersect
        # every phase-2 quorum: |r| + |q2| > n.  With small q2 this is
        # *larger* than a majority — the flexible-quorum read penalty.
        return ThresholdQuorum(self.config.node_ids, self.q1_size)
