"""Embedded per-zone Paxos group replication.

WanKeeper and Vertical Paxos both run an ordinary multi-decree Paxos
*inside* each zone (level-1) and coordinate *between* zones at a higher
level.  :class:`GroupEngine` provides that inner layer once for both:

- a fixed, stable group leader (the first node of the zone) proposes items
  into a zone-local slot sequence;
- group members accept and acknowledge; a majority of the group commits;
- commit watermarks are piggybacked on subsequent proposals and flushed
  periodically, and every member executes items in slot order through a
  caller-supplied ``on_execute`` callback.

Items are opaque to the engine; the owning protocol encodes commands,
history adoptions, and token bookkeeping in them.  Leader failover within a
zone is not modeled (the paper's WanKeeper/VPaxos experiments exercise the
failure-free path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.paxi.ids import NodeID
from repro.paxi.message import Message
from repro.paxi.node import Replica
from repro.paxi.quorum import GroupQuorum


@dataclass(frozen=True, slots=True)
class GAccept(Message):
    zone: int = 0
    slot: int = 0
    item: Any = None
    commit_upto: int = 0


@dataclass(frozen=True, slots=True)
class GAck(Message):
    zone: int = 0
    slot: int = 0


@dataclass(frozen=True, slots=True)
class GFlush(Message):
    zone: int = 0
    commit_upto: int = 0


@dataclass(frozen=True, slots=True)
class GFillRequest(Message):
    """A member asks the leader for slots it never received."""

    zone: int = 0
    slots: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class GFillReply(Message):
    SIZE_BYTES = 300

    zone: int = 0
    entries: tuple[tuple[int, Any], ...] = ()  # (slot, item), committed only


RETRANSMIT_GRACE = 0.3  # seconds before an unacked accept is re-sent


@dataclass
class _GroupSlot:
    item: Any
    quorum: GroupQuorum | None = None
    committed: bool = False
    executed: bool = False
    sent_at: float = 0.0


class GroupEngine:
    """One zone's replication engine, embedded in a protocol replica."""

    def __init__(
        self,
        replica: Replica,
        members: list[NodeID],
        on_execute: Callable[[Any, bool], None],
        flush_interval: float = 0.02,
    ) -> None:
        """``on_execute(item, is_leader)`` runs in slot order on every
        member once the slot is committed."""
        self.replica = replica
        self.members = list(members)
        self.zone = replica.id.zone
        self.leader = min(self.members)
        self.is_leader = replica.id == self.leader
        self.on_execute = on_execute
        self.flush_interval = flush_interval
        self._slots: dict[int, _GroupSlot] = {}
        self._next_slot = 1
        self._execute_index = 1
        self._dirty = False
        self._fill_outstanding = False
        replica.register(GAccept, self._on_accept)
        replica.register(GAck, self._on_ack)
        replica.register(GFlush, self._on_flush)
        replica.register(GFillRequest, self._on_fill_request)
        replica.register(GFillReply, self._on_fill_reply)
        if self.is_leader and flush_interval is not None:
            replica.set_timer(flush_interval, self._flush_tick)

    # ------------------------------------------------------------------
    # Leader side
    # ------------------------------------------------------------------

    def propose(self, item: Any) -> None:
        """Replicate ``item`` to the group (leader only)."""
        assert self.is_leader, "only the group leader proposes"
        slot = self._next_slot
        self._next_slot += 1
        quorum = GroupQuorum(self.members)
        quorum.ack(self.replica.id)
        self._slots[slot] = _GroupSlot(item, quorum, sent_at=self.replica.now)
        peers = [m for m in self.members if m != self.replica.id]
        if peers:
            self.replica.multicast(
                peers,
                GAccept(zone=self.zone, slot=slot, item=item, commit_upto=self._commit_upto()),
            )
        if quorum.satisfied():  # single-member group
            self._commit(slot)

    def _on_ack(self, src: Hashable, m: GAck) -> None:
        if m.zone != self.zone or not self.is_leader:
            return
        slot = self._slots.get(m.slot)
        if slot is None or slot.quorum is None or slot.committed:
            return
        slot.quorum.ack(src)
        if slot.quorum.satisfied():
            self._commit(m.slot)

    def _commit(self, slot: int) -> None:
        self._slots[slot].committed = True
        self._mark_quorum(self._slots[slot].item)
        self._dirty = True
        self._advance()

    def _mark_quorum(self, item: Any) -> None:
        """Trace the quorum point of the client request carried by ``item``
        (protocols propose ``(tag, ..., RequestInfo)`` tuples)."""
        if not isinstance(item, tuple):
            return
        for part in item:
            if hasattr(part, "client") and hasattr(part, "request_id"):
                self.replica.trace_mark(part)
                return

    # ------------------------------------------------------------------
    # Member side
    # ------------------------------------------------------------------

    def _on_accept(self, src: Hashable, m: GAccept) -> None:
        if m.zone != self.zone:
            return
        if m.slot not in self._slots:
            self._slots[m.slot] = _GroupSlot(m.item)
        self._next_slot = max(self._next_slot, m.slot + 1)
        self.replica.send(src, GAck(zone=self.zone, slot=m.slot))
        self._apply_watermark(m.commit_upto)

    def _on_flush(self, src: Hashable, m: GFlush) -> None:
        if m.zone != self.zone:
            return
        self._apply_watermark(m.commit_upto)

    def _apply_watermark(self, upto: int) -> None:
        missing = []
        for slot in range(self._execute_index, upto + 1):
            entry = self._slots.get(slot)
            if entry is not None:
                entry.committed = True
            else:
                missing.append(slot)
        if missing and not self._fill_outstanding and not self.is_leader:
            self._fill_outstanding = True
            self.replica.send(
                self.leader, GFillRequest(zone=self.zone, slots=tuple(missing[:64]))
            )
        self._advance()

    def _on_fill_request(self, src: Hashable, m: GFillRequest) -> None:
        if m.zone != self.zone:
            return
        entries = tuple(
            (slot, self._slots[slot].item)
            for slot in m.slots
            if slot in self._slots and self._slots[slot].committed
        )
        self.replica.send(src, GFillReply(zone=self.zone, entries=entries))

    def _on_fill_reply(self, src: Hashable, m: GFillReply) -> None:
        if m.zone != self.zone:
            return
        self._fill_outstanding = False
        for slot, item in m.entries:
            if slot not in self._slots:
                self._slots[slot] = _GroupSlot(item, committed=True)
            else:
                self._slots[slot].committed = True
        self._advance()

    # ------------------------------------------------------------------
    # Commit propagation and execution
    # ------------------------------------------------------------------

    def _commit_upto(self) -> int:
        upto = self._execute_index - 1
        while upto + 1 in self._slots and self._slots[upto + 1].committed:
            upto += 1
        return upto

    def _flush_tick(self) -> None:
        # The watermark broadcast is unconditional (one small message per
        # interval): it doubles as the repair signal for members that lost
        # accepts or earlier flushes.
        upto_now = self._commit_upto()
        if upto_now > 0:
            self._dirty = False
            peers = [m for m in self.members if m != self.replica.id]
            if peers:
                self.replica.multicast(peers, GFlush(zone=self.zone, commit_upto=upto_now))
        # Retransmit accepts that lost their race with the network: under
        # normal operation slots commit well within one flush interval, so
        # this only fires after drops.
        upto = self._commit_upto()
        now = self.replica.now
        for slot, entry in self._slots.items():
            if entry.committed or entry.quorum is None:
                continue
            if now - entry.sent_at < RETRANSMIT_GRACE:
                continue  # acks plausibly still in flight
            entry.sent_at = now
            behind = [
                m
                for m in self.members
                if m != self.replica.id and m not in entry.quorum.acks
            ]
            if behind:
                self.replica.multicast(
                    behind,
                    GAccept(zone=self.zone, slot=slot, item=entry.item, commit_upto=upto),
                )
        self.replica.set_timer(self.flush_interval, self._flush_tick)

    def _advance(self) -> None:
        while True:
            entry = self._slots.get(self._execute_index)
            if entry is None or not entry.committed or entry.executed:
                break
            entry.executed = True
            self._execute_index += 1
            self.on_execute(entry.item, self.is_leader)
