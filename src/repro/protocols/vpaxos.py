"""Vertical Paxos (Lamport, Malkhi, Zhou 2009), augmented per the paper.

VPaxos separates the control plane from the data plane: a **master** Paxos
cluster owns the object-to-group assignment, while per-zone Paxos groups
execute commands on the objects assigned to them.  Relocating an object to
a different group is a *reconfiguration* decided by the master — unlike
WPaxos (which steals via core Paxos phase-1) and unlike WanKeeper (whose
master also executes contested commands itself).

The paper evaluates "our augmented version of Vertical Paxos" with the same
three-consecutive access policy as the other locality-aware protocols: a
zone leader forwards commands for objects owned elsewhere, and after three
consecutive local requests it asks the master to reassign the object.
Reassignment drains the current owner's in-flight commands and carries the
object's committed history to the new owner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command, Message
from repro.paxi.protocol import Protocol
from repro.protocols.group import GroupEngine
from repro.protocols.log import RequestInfo

CMD, ADOPT = "cmd", "adopt"


@dataclass(frozen=True, slots=True)
class VPForward(Message):
    """A command forwarded to the owning zone's leader."""

    command: Command | None = None
    request: RequestInfo | None = None
    origin_zone: int = 0


@dataclass(frozen=True, slots=True)
class VPAcquire(Message):
    """Ask the master to assign an (unowned) object to ``zone``."""

    key: Hashable = None
    zone: int = 0
    trigger: VPForward | None = None


@dataclass(frozen=True, slots=True)
class VPReassign(Message):
    """Ask the master to move an object to ``zone`` (locality settled)."""

    key: Hashable = None
    zone: int = 0
    trigger: VPForward | None = None


@dataclass(frozen=True, slots=True)
class VPOwner(Message):
    """Master's answer when the object already has a different owner."""

    key: Hashable = None
    owner_zone: int = 0
    trigger: VPForward | None = None


@dataclass(frozen=True, slots=True)
class VPRelease(Message):
    key: Hashable = None


@dataclass(frozen=True, slots=True)
class VPReleased(Message):
    SIZE_BYTES = 300

    key: Hashable = None
    history: tuple = ()


@dataclass(frozen=True, slots=True)
class VPAssigned(Message):
    SIZE_BYTES = 300

    key: Hashable = None
    history: tuple = ()
    trigger: VPForward | None = None


@dataclass(frozen=True, slots=True)
class VPAssignAck(Message):
    key: Hashable = None


@dataclass
class _MappingInfo:
    owner: int | None = None  # zone number
    moving: bool = False
    assigning: bool = False  # VPAssigned sent, ack outstanding
    pending: list[Message] = field(default_factory=list)


class VPaxos(Protocol):
    """A Vertical Paxos replica.

    Recognized config params:

    - ``master_zone``: zone hosting the configuration master (default 2);
    - ``reassign_threshold``: consecutive local accesses before requesting
      a reassignment (default 3);
    - ``flush_interval``: group commit-watermark period (default 0.02 s).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        zones = self.config.zones
        default_master = zones[1] if len(zones) > 1 else zones[0]
        self.master_zone: int = self.config.param("master_zone", default_master)
        self.reassign_threshold: int = self.config.param("reassign_threshold", 3)
        flush = self.config.param("flush_interval", 0.02)
        self.group = GroupEngine(
            self, self.config.ids_in_zone(self.id.zone), self._execute_item, flush
        )
        self.is_zone_leader = self.group.is_leader
        self.is_master = self.is_zone_leader and self.id.zone == self.master_zone
        self.master_leader = NodeID(self.master_zone, 1)
        # Zone-leader state.
        self.owned: set[Hashable] = set()
        self._streak: dict[Hashable, int] = {}
        self._outstanding: dict[Hashable, int] = {}
        self._releasing: set[Hashable] = set()
        self._acquiring: dict[Hashable, list[VPForward]] = {}
        self._owner_cache: dict[Hashable, int] = {}
        # Master state.
        self._mapping: dict[Hashable, _MappingInfo] = {}
        self._request_cache: dict[tuple[Hashable, int], Any] = {}

        self.register(VPForward, self.on_forward)
        self.register(VPAcquire, self.on_acquire)
        self.register(VPReassign, self.on_reassign)
        self.register(VPOwner, self.on_owner)
        self.register(VPRelease, self.on_release)
        self.register(VPReleased, self.on_released)
        self.register(VPAssigned, self.on_assigned)
        self.register(VPAssignAck, self.on_assign_ack)

    # ------------------------------------------------------------------
    # Client path
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        cache_key = (m.client, m.request_id)
        if cache_key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[cache_key],
                    replied_by=self.id,
                ),
            )
            return
        if not self.is_zone_leader:
            self.send(self.group.leader, m)
            return
        forward = VPForward(
            command=m.command,
            request=RequestInfo(m.client, m.request_id),
            origin_zone=self.id.zone,
        )
        self._handle_forward(forward)

    def _handle_forward(self, forward: VPForward) -> None:
        key = forward.command.key
        if key in self.owned and key not in self._releasing:
            self._note_access(key, forward.origin_zone)
            self._propose(key, forward.command, forward.request)
            return
        if key in self._acquiring:
            self._acquiring[key].append(forward)
            return
        owner = self._owner_cache.get(key)
        if owner is None:
            self._acquiring[key] = []
            self.send(
                self.master_leader,
                VPAcquire(key=key, zone=self.id.zone, trigger=forward),
            )
            return
        self.send(NodeID(owner, 1), forward)

    def on_forward(self, src: Hashable, m: VPForward) -> None:
        if not self.is_zone_leader:
            self.send(self.group.leader, m)
            return
        key = m.command.key
        if key in self.owned and key not in self._releasing:
            self._note_access(key, m.origin_zone)
            self._propose(key, m.command, m.request)
        else:
            # We no longer own it: let the master re-route.
            self.send(self.master_leader, VPAcquire(key=key, zone=m.origin_zone, trigger=m))

    def _note_access(self, key: Hashable, origin_zone: int) -> None:
        """Owner-side three-consecutive policy: the owner sees every access
        to its objects; when one *remote* zone makes ``reassign_threshold``
        consecutive requests, hand the object over via the master."""
        if origin_zone == self.id.zone:
            self._streak.pop(key, None)
            return
        last_zone, count = self._streak.get(key, (origin_zone, 0))
        if last_zone == origin_zone:
            count += 1
        else:
            last_zone, count = origin_zone, 1
        if count >= self.reassign_threshold and key not in self._releasing:
            self._streak.pop(key, None)
            self.send(
                self.master_leader,
                VPReassign(key=key, zone=origin_zone, trigger=None),
            )
        else:
            self._streak[key] = (last_zone, count)

    def _propose(self, key: Hashable, command: Command, request: RequestInfo | None) -> None:
        self._outstanding[key] = self._outstanding.get(key, 0) + 1
        self.group.propose((CMD, command, request))

    # ------------------------------------------------------------------
    # Master: the configuration plane
    # ------------------------------------------------------------------

    def on_acquire(self, src: Hashable, m: VPAcquire) -> None:
        if not self.is_master:
            return
        info = self._mapping.setdefault(m.key, _MappingInfo())
        if info.moving or info.assigning:
            info.pending.append(m)
            return
        if info.owner is None:
            info.owner = m.zone
            info.assigning = True
            self.send(NodeID(m.zone, 1), VPAssigned(key=m.key, history=(), trigger=m.trigger))
        else:
            self.send(
                NodeID(m.zone, 1),
                VPOwner(key=m.key, owner_zone=info.owner, trigger=m.trigger),
            )

    def on_reassign(self, src: Hashable, m: VPReassign) -> None:
        if not self.is_master:
            return
        info = self._mapping.setdefault(m.key, _MappingInfo())
        if info.moving or info.assigning:
            info.pending.append(m)
            return
        if info.owner is None or info.owner == m.zone:
            info.owner = m.zone
            info.assigning = True
            self.send(NodeID(m.zone, 1), VPAssigned(key=m.key, history=(), trigger=m.trigger))
            return
        info.moving = True
        info.pending.append(m)
        self.send(NodeID(info.owner, 1), VPRelease(key=m.key))

    def on_released(self, src: Hashable, m: VPReleased) -> None:
        if not self.is_master:
            return
        info = self._mapping.setdefault(m.key, _MappingInfo())
        info.moving = False
        # The first buffered reassignment wins the object.
        pending, info.pending = info.pending, []
        new_owner: int | None = None
        trigger: VPForward | None = None
        rest: list[Message] = []
        for message in pending:
            if new_owner is None and isinstance(message, VPReassign):
                new_owner = message.zone
                trigger = message.trigger
            else:
                rest.append(message)
        if new_owner is None:
            # Nobody wants it any more; keep it unassigned.
            info.owner = None
            for message in rest:
                self._replay(message)
            return
        info.owner = new_owner
        info.assigning = True
        self.send(
            NodeID(new_owner, 1),
            VPAssigned(key=m.key, history=tuple(m.history), trigger=trigger),
        )
        info.pending = rest

    def on_assign_ack(self, src: Hashable, m: VPAssignAck) -> None:
        if not self.is_master:
            return
        info = self._mapping.get(m.key)
        if info is None or not info.assigning:
            return
        info.assigning = False
        pending, info.pending = info.pending, []
        for message in pending:
            self._replay(message)

    def _replay(self, message: Message) -> None:
        if isinstance(message, VPAcquire):
            self.on_acquire(self.id, message)
        elif isinstance(message, VPReassign):
            self.on_reassign(self.id, message)

    # ------------------------------------------------------------------
    # Zone leader: ownership transitions
    # ------------------------------------------------------------------

    def on_owner(self, src: Hashable, m: VPOwner) -> None:
        if not self.is_zone_leader:
            return
        self._owner_cache[m.key] = m.owner_zone
        backlog = self._acquiring.pop(m.key, [])
        if m.trigger is not None:
            backlog.insert(0, m.trigger)
        if m.owner_zone == self.id.zone:
            # Assignment raced ahead of us; we own it (or will shortly).
            for forward in backlog:
                self._handle_forward(forward)
            return
        for forward in backlog:
            self.send(NodeID(m.owner_zone, 1), forward)

    def on_assigned(self, src: Hashable, m: VPAssigned) -> None:
        if not self.is_zone_leader:
            return
        self.owned.add(m.key)
        self._owner_cache[m.key] = self.id.zone
        if m.history:
            self.group.propose((ADOPT, m.key, tuple(m.history)))
        self.send(self.master_leader, VPAssignAck(key=m.key))
        backlog = self._acquiring.pop(m.key, [])
        if m.trigger is not None:
            backlog.insert(0, m.trigger)
        for forward in backlog:
            self._handle_forward(forward)

    def on_release(self, src: Hashable, m: VPRelease) -> None:
        if not self.is_zone_leader or m.key not in self.owned:
            self.send(self.master_leader, VPReleased(key=m.key, history=()))
            return
        self._releasing.add(m.key)
        self._maybe_finish_release(m.key)

    def _maybe_finish_release(self, key: Hashable) -> None:
        if key not in self._releasing:
            return
        if self._outstanding.get(key, 0) > 0:
            return
        self._releasing.discard(key)
        self.owned.discard(key)
        self._owner_cache.pop(key, None)
        self.send(
            self.master_leader,
            VPReleased(key=key, history=tuple(self.store.history(key))),
        )

    # ------------------------------------------------------------------
    # Group execution callback
    # ------------------------------------------------------------------

    def _execute_item(self, item: tuple, is_leader: bool) -> None:
        kind = item[0]
        if kind == ADOPT:
            _kind, key, history = item
            self.store.adopt(key, list(history))
            return
        _kind, command, request = item
        cache_key = (request.client, request.request_id) if request is not None else None
        if cache_key is not None and cache_key in self._request_cache:
            value = self._request_cache[cache_key]
        else:
            value = self.store.execute(command)
            if cache_key is not None:
                self._request_cache[cache_key] = value
        if is_leader:
            if command is not None:
                count = self._outstanding.get(command.key, 0)
                if count > 0:
                    self._outstanding[command.key] = count - 1
                self._maybe_finish_release(command.key)
            if request is not None:
                self.send(
                    request.client,
                    ClientReply(
                        request_id=request.request_id,
                        ok=True,
                        value=value,
                        replied_by=self.id,
                    ),
                )
