"""Iterative strongly-connected-components (Tarjan) for EPaxos execution.

EPaxos executes committed commands in dependency order: strongly connected
components of the dependency graph are executed atomically, ordered by their
position in the condensation (dependencies first) and, within a component,
by sequence number.  Dependency chains can be thousands of commands long
under a hot-key workload, so the traversal must be iterative.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

Node = Hashable


def tarjan_sccs(
    roots: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> list[list[Node]]:
    """Strongly connected components reachable from ``roots``.

    Components are returned in reverse topological order of the
    condensation: every component appears **after** the components it has
    edges into.  With edges pointing at *dependencies*, that means
    dependencies come first — exactly EPaxos execution order.
    """
    index_counter = 0
    indexes: dict[Node, int] = {}
    lowlinks: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []

    for root in roots:
        if root in indexes:
            continue
        # Iterative Tarjan: work items are (node, iterator over successors).
        work: list[tuple[Node, Iterable[Node]]] = []
        indexes[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(list(successors(root)))))
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in indexes:
                    indexes[succ] = lowlinks[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components
