"""MultiPaxos: single stable leader, majority quorums (paper section 2).

The implementation follows the paper's description and optimizations:

- **multi-decree**: the leader runs phase-1 once and then drives every slot
  through phase-2 only, as long as its ballot stays the highest seen;
- **piggybacked commit**: phase-3 rides on the next phase-2 broadcast as a
  ``commit_upto`` watermark (plus a periodic heartbeat that doubles as the
  liveness signal for leader election);
- **full replication**: the leader broadcasts accepts to every replica
  (the paper's evaluation setting), with a thrifty option for the analytic
  comparisons;
- **forwarding**: any replica accepts client requests and forwards them to
  the leader; replies carry a leader hint so clients go direct afterwards.

Leader failure is handled with randomized election timeouts: a replica that
stops hearing from the leader runs phase-1 with a higher ballot, recovers
uncommitted entries from its phase-1 quorum, and takes over.

Crash recovery (durable configs): promises and accepts are persisted to the
node's write-ahead log *before* the corresponding P1b/P2b leaves the node,
and the leader counts its own accept toward a slot's quorum only once the
record is durable.  A rebooted replica replays its WAL (and latest disk
snapshot) to restore ``promised`` and the accepted log, then catches up on
recently-committed slots through the generic catch-up exchange in
:mod:`repro.paxi.recovery`.  A wiped replica (or a rebooted one in an
in-memory config) rejoins as a *learner*: it abstains from promises, votes,
and accepts — so forgotten promises can never un-commit a value — until
state transfer has caught it up to a donor's commit frontier.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.detector import (
    DEGRADED,
    HEALTHY,
    AdaptiveTimeout,
    NodeHealthMonitor,
)
from repro.paxi.ids import NodeID
from repro.paxi.lease import FollowerGrant, LeaderLease
from repro.paxi.message import Batch, ClientReply, ClientRequest, Command, Message
from repro.paxi.node import wal_record_bytes
from repro.paxi.protocol import Protocol
from repro.paxi.quorum import MajorityQuorum, Quorum
from repro.paxi.recovery import (
    CatchupReply,
    CatchupRequest,
    CatchupRunner,
    entries_payload_bytes,
)
from repro.protocols.ballot import Ballot, ZERO, initial_ballot
from repro.sim.storage import Snapshot
from repro.protocols.log import (
    CommandLog,
    Entry,
    EntryCommand,
    RequestInfo,
    entry_pairs,
    request_infos,
)

# Transferable snapshot of one log entry: (slot, ballot, command, request, committed);
# command may be a Batch, in which case request is a tuple of RequestInfos.
EntrySnapshot = tuple[int, Ballot, EntryCommand, Any, bool]


@dataclass(frozen=True, slots=True)
class P1a(Message):
    """Phase-1a: ``lead with ballot b?`` plus the candidate's commit frontier.

    ``handoff_from`` is only set when the campaign was solicited by a
    planned leader handoff: it names the old leader, whose released lease
    lets followers promise immediately instead of waiting out their grant
    window (see :meth:`repro.paxi.lease.FollowerGrant.releases`).
    """

    ballot: Ballot = ZERO
    commit_upto: int = 0
    handoff_from: NodeID | None = None


@dataclass(frozen=True, slots=True)
class P1b(Message):
    """Phase-1b: promise (or rejection) with the follower's log suffix."""

    SIZE_BYTES = 400

    ballot: Ballot = ZERO
    ok: bool = True
    entries: tuple[EntrySnapshot, ...] = ()


@dataclass(frozen=True, slots=True)
class P2a(Message):
    """Phase-2a: accept this command in this slot (carries commit watermark).

    ``command`` may be a :class:`~repro.paxi.message.Batch`; the wire size
    then grows with the number of carried commands so the NIC accounting
    reflects the fatter accept.
    """

    ballot: Ballot = ZERO
    slot: int = 0
    command: EntryCommand = None
    request: Any = None
    commit_upto: int = 0
    lease_seq: int = 0  # nonzero: also renews the leader lease

    def wire_size(self) -> int:
        if isinstance(self.command, Batch):
            return self.SIZE_BYTES + self.command.extra_bytes()
        return self.SIZE_BYTES


@dataclass(frozen=True, slots=True)
class P2b(Message):
    """Phase-2b: accepted (or rejected because of a higher promise)."""

    ballot: Ballot = ZERO
    slot: int = 0
    ok: bool = True
    lease_seq: int = 0  # echoes the P2a's lease round (0 = no lease)


@dataclass(frozen=True, slots=True)
class Commit(Message):
    """Periodic commit watermark broadcast; doubles as leader heartbeat."""

    ballot: Ballot = ZERO
    commit_upto: int = 0
    lease_seq: int = 0  # nonzero: also renews the leader lease
    #: Leader-clock stamp at heartbeat-timer fire, set only when the φ
    #: detector is on (0.0 otherwise, keeping default traffic identical).
    #: Receipt time minus this exposes the *emission* delay — a heartbeat
    #: queued behind a degraded leader's data plane arrives late even
    #: though the timer keeps its cadence, which is exactly the gray-
    #: failure signature interval statistics alone cannot see.
    sent_at: float = 0.0


@dataclass(frozen=True, slots=True)
class LeaseGrant(Message):
    """A follower's lease grant for one heartbeat's renewal round."""

    ballot: Ballot = ZERO
    seq: int = 0


@dataclass(frozen=True, slots=True)
class ReadQuery(Message):
    """Quorum read: ask an acceptor for its accepted-slot frontier."""

    rid: int = 0


@dataclass(frozen=True, slots=True)
class ReadReply(Message):
    """Quorum read: the acceptor's highest accepted slot."""

    rid: int = 0
    frontier: int = 0


@dataclass(frozen=True, slots=True)
class HandoffRequest(Message):
    """Follower -> leader: "you look degraded; consider handing off".

    Sent (rate-limited) by a follower whose φ-accrual monitor classifies
    the leader as *degraded* — alive, heartbeating, but stretched well
    past its healthy cadence.  The sender implicitly volunteers as the
    successor: its request arriving at all is evidence it is reachable.
    """

    SIZE_BYTES = 40

    ballot: Ballot = ZERO


@dataclass(frozen=True, slots=True)
class Handoff(Message):
    """Old leader -> successor: "I have stopped; the log ends at
    ``frontier``; campaign now with my consent"."""

    SIZE_BYTES = 60

    ballot: Ballot = ZERO
    frontier: int = 0


@dataclass(frozen=True, slots=True)
class FillRequest(Message):
    """Ask the leader for slots this replica never received."""

    slots: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class FillReply(Message):
    SIZE_BYTES = 400

    entries: tuple[EntrySnapshot, ...] = ()


class MultiPaxos(Protocol):
    """A MultiPaxos replica.

    Batching and pipelining come from the typed config fields
    (``Config.batch_size`` / ``batch_window`` / ``pipeline_depth``): the
    leader coalesces admitted requests through a
    :class:`~repro.paxi.node.Batcher` into one multi-command slot per
    flush, and bounds how many uncommitted slots it keeps in flight.

    Recognized config params:

    - ``leader``: initial leader :class:`NodeID` (default: first node);
    - ``heartbeat_interval``: seconds between commit/heartbeat broadcasts
      (default 0.02; ``None`` disables);
    - ``election_timeout``: base follower timeout before starting phase-1
      (default ``None`` = failover disabled, the paper's steady-state
      benchmarks);
    - ``thrifty``: leader sends P2a only to a minimal quorum (default False,
      the paper's full-replication evaluation setting);
    - ``relaxed_reads``: serve reads from any replica's local state machine
      without a consensus round (default False).  This implements the
      paper's section-7 future work: consistency relaxes from
      linearizability to bounded staleness, and to session consistency
      (read-your-writes + monotonic reads) when clients send version
      tokens (``Client.session_reads``);
    - ``lease_duration``: leader lease length in seconds (default ``None``
      = leases disabled).  Enables ``read_mode="lease"`` reads served from
      the leader's local store while a grant quorum's promises are in
      force (see :mod:`repro.paxi.lease` and ``docs/READS.md``);
    - ``max_clock_skew``: bound on per-node clock drift the lease math
      discounts (default 0.0; a ``skew`` fault larger than this voids the
      lease safety argument — by design, for the adversarial tests);
    - ``detector``: enable the φ-accrual failure detector (default False).
      Followers grade the leader's heartbeat cadence; elections switch
      from the fixed ``election_timeout`` to a Jacobson adaptive timeout
      (and are armed even when ``election_timeout`` is unset), a spurious
      expiry is vetoed while φ still reads healthy, and a *degraded*
      (alive-but-slow) leader is handed off without an availability gap;
    - ``phi_threshold``: suspicion level at which a silent leader counts
      as failed (default 8.0 — a 1-in-10^8 silence);
    - ``slow_ratio``: heartbeat-cadence stretch (recent mean over frozen
      healthy baseline) at which the leader counts as degraded and a
      handoff is solicited (default 2.5);
    - ``handoff``: allow the planned-handoff reaction (default True when
      the detector is on; False detects but never reacts);
    - ``handoff_votes``: distinct followers that must report degradation
      within ``handoff_vote_window`` seconds before the leader steps
      aside (default 2, so one follower behind a bad link cannot trigger
      a handoff on its own).

    Per-command read paths (``Command.read_mode``, reachable through
    ``Session(consistency=...)``): ``"lease"`` as above (falls back to a
    full consensus round when the lease is invalid), ``"quorum"`` polls a
    read quorum of acceptors for their accepted frontier and serves after
    the local state machine has executed past it (linearizable, leader
    off the critical path), ``"local"`` serves from any replica's store
    (bounded staleness, like ``relaxed_reads`` but per-command).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        params = self.config.params
        self.initial_leader: NodeID = params.get("leader", self.config.node_ids[0])
        self.heartbeat_interval: float | None = params.get("heartbeat_interval", 0.02)
        self.election_timeout: float | None = params.get("election_timeout")
        self.thrifty: bool = bool(params.get("thrifty", False))
        self.relaxed_reads: bool = bool(params.get("relaxed_reads", False))
        #: Catch-up donors ship a snapshot instead of log entries once the
        #: requester is this many slots behind the donor's executed frontier.
        self.catchup_snapshot_gap: int = params.get("catchup_snapshot_gap", 64)
        #: Committed entries per CatchupReply (the requester re-asks).
        self.catchup_max_entries: int = params.get("catchup_max_entries", 256)

        self.promised: Ballot = ZERO
        self.ballot: Ballot = ZERO  # own ballot while leading / campaigning
        self.active = False  # completed phase-1 and currently leading
        self.leader_hint: NodeID = self.initial_leader
        self.log = CommandLog()

        self._p1_quorum: Quorum | None = None
        self._p1_entries: dict[int, EntrySnapshot] = {}
        self._buffered: list[tuple[Hashable, ClientRequest]] = []
        self._request_cache: dict[tuple[Hashable, int], Any] = {}
        self._inflight: set[tuple[Hashable, int]] = set()
        self._fill_deadline = 0.0  # earliest time the next FillRequest may go out
        self.retransmit_timeout: float = params.get("retransmit_timeout", 0.3)
        self._uncommitted_slots: dict[int, float] = {}  # slot -> last sent at
        self._read_waiters: dict[Hashable, list[ClientRequest]] = {}
        self._heartbeat_armed = False
        self._election_handle = None
        self._rng = deployment.cluster.streams.stream(f"paxos-{node_id}")

        # Leader leases and the non-default read paths (all strictly
        # opt-in: with lease_duration unset and no read_mode commands,
        # none of this machinery sends a byte or draws a random number).
        self.lease_duration: float | None = params.get("lease_duration")
        self.max_clock_skew: float = params.get("max_clock_skew", 0.0)
        if self.lease_duration is not None:
            self._lease: LeaderLease | None = LeaderLease(
                self.clock,
                self.lease_duration,
                self.max_clock_skew,
                self.phase2_quorum().size,
                self.id,
            )
            self._grant: FollowerGrant | None = FollowerGrant(
                self.clock, self.lease_duration
            )
            if self.restart_reason is not None:
                # Whatever we granted before the restart is forgotten:
                # block every candidate for one full duration.
                self._grant.grant_unknown()
        else:
            self._lease = None
            self._grant = None
        self._read_barrier_slot = 0  # takeover frontier lease reads wait out
        self._pending_lease_reads: list[ClientRequest] = []
        self._quorum_reads: dict[int, list] = {}  # rid -> [request, quorum, frontier]
        self._next_read_id = 0
        self._rinse_waiters: list[list] = []  # [frontier, request]
        self._read_rng = None  # lazily created: default runs never draw from it

        # Gray-failure detection and planned handoff (strictly opt-in:
        # with ``detector`` unset nothing below allocates a timer, sends a
        # message, or draws a random number).
        self.detector_enabled: bool = bool(params.get("detector", False))
        self.phi_threshold: float = params.get("phi_threshold", 8.0)
        self.slow_ratio: float = params.get("slow_ratio", 2.5)
        self.handoff_enabled: bool = bool(params.get("handoff", True))
        self.handoff_votes_needed: int = params.get("handoff_votes", 2)
        self.handoff_vote_window: float = params.get("handoff_vote_window", 0.5)
        self.handoff_cooldown: float = params.get("handoff_cooldown", 1.0)
        if self.detector_enabled:
            self._monitor: NodeHealthMonitor | None = NodeHealthMonitor(
                phi_threshold=self.phi_threshold,
                slow_ratio=self.slow_ratio,
                window=params.get("phi_window", 64),
                min_samples=params.get("detector_min_samples", 8),
            )
            hb = self.heartbeat_interval or 0.02
            self._adaptive: AdaptiveTimeout | None = AdaptiveTimeout(
                initial=self.election_timeout or 0.15,
                floor=2.0 * hb,
                ceiling=params.get("adaptive_ceiling", 2.0),
            )
            self.adaptive_multiplier: float = params.get("adaptive_multiplier", 4.0)
        else:
            self._monitor = None
            self._adaptive = None
        self._handing_off = False  # leader: drain in progress
        self._handoff_point = 0  # leader: commit frontier the drain waits for
        self._handoff_successor: NodeID | None = None
        self._handoff_votes: dict[NodeID, float] = {}  # suspecting follower -> at
        self._handoff_cooldown_until = 0.0
        self._handoff_request_after = 0.0  # follower-side solicit rate limit
        self._handoff_grant: NodeID | None = None  # consent token for next campaign
        self.handoffs_completed = 0  # old-leader side
        self.handoffs_received = 0  # successor side
        self.handoff_requests_sent = 0

        self.batcher = self.make_batcher(self.propose_batch)
        self.pipeline_depth: int | None = self.config.pipeline_depth
        self._proposal_queue: deque[list[ClientRequest]] = deque()

        self.register(P1a, self.on_p1a)
        self.register(P1b, self.on_p1b)
        self.register(P2a, self.on_p2a)
        self.register(P2b, self.on_p2b)
        self.register(Commit, self.on_commit)
        self.register(LeaseGrant, self.on_lease_grant)
        self.register(ReadQuery, self.on_read_query)
        self.register(ReadReply, self.on_read_reply)
        self.register(FillRequest, self.on_fill_request)
        self.register(FillReply, self.on_fill_reply)
        self.register(HandoffRequest, self.on_handoff_request)
        self.register(Handoff, self.on_handoff)
        self.register(CatchupRequest, self.on_catchup_request)
        self.register(CatchupReply, self.on_catchup_reply)

        #: Learner mode: set while rejoining after a wipe (or a reboot with
        #: no disk).  A recovering replica must not promise, vote, or
        #: accept — its pre-failure promises are forgotten, so counting it
        #: toward quorums could un-commit decided values.
        self.recovering = False
        self._catchup: CatchupRunner | None = None

        if self.restart_reason is not None:
            self._recover()
        elif self.id == self.initial_leader:
            self.set_timer(0.0, self.start_phase1)
        elif self._failover_enabled:
            self._reset_election_timer()

    @property
    def _failover_enabled(self) -> bool:
        """Whether this replica arms election timers at all: a fixed
        ``election_timeout``, or the detector's adaptive timeout."""
        return self.election_timeout is not None or self._monitor is not None

    # ------------------------------------------------------------------
    # Quorum construction (overridden by FPaxos)
    # ------------------------------------------------------------------

    def phase1_quorum(self) -> Quorum:
        return MajorityQuorum(self.config.node_ids)

    def phase2_quorum(self) -> Quorum:
        return MajorityQuorum(self.config.node_ids)

    def read_quorum(self) -> Quorum:
        """Acceptors a quorum read polls.  Must intersect every phase-2
        quorum so a committed write's accepted frontier is visible to at
        least one polled member (majority here; ``n - q2 + 1`` in FPaxos)."""
        return MajorityQuorum(self.config.node_ids)

    def phase2_targets(self) -> list[NodeID]:
        """Peers to send P2a to (everyone, or a minimal set when thrifty)."""
        if not self.thrifty:
            return self.peers
        needed = self.phase2_quorum().size - 1  # leader self-votes
        ordered = self.deployment.nearest_nodes(self.site)
        return [nid for nid in ordered if nid != self.id][:needed]

    # ------------------------------------------------------------------
    # Phase 1: leader (re-)election
    # ------------------------------------------------------------------

    def start_phase1(self) -> None:
        """Campaign to lead with a ballot above everything seen so far."""
        self.ballot = Ballot(max(self.promised.counter, self.ballot.counter) + 1, self.id)
        if self.ballot <= self.promised:
            self.ballot = initial_ballot(self.id)
        self.promised = self.ballot
        self.active = False
        self.leader_hint = self.id
        self._p1_quorum = self.phase1_quorum()
        self._p1_quorum.ack(self.id)
        self._p1_entries = {}
        self._merge_snapshots(self._own_snapshots())
        if self._p1_quorum.satisfied():  # single-node cluster
            self.persist("promise", self.ballot)
            self._become_leader()
            return
        # The campaign ballot is a promise to ourselves: make it durable
        # before anyone can learn about it.  A pending handoff consent
        # token rides on the P1a so follower grant windows release early.
        ballot = self.ballot
        token, self._handoff_grant = self._handoff_grant, None
        self.persist(
            "promise",
            ballot,
            then=lambda: self.broadcast(
                P1a(
                    ballot=ballot,
                    commit_upto=self.log.commit_upto(),
                    handoff_from=token,
                )
            ),
        )

    def _own_snapshots(self) -> tuple[EntrySnapshot, ...]:
        return tuple(
            (slot, e.ballot, e.command, e.request, e.committed)
            for slot, e in sorted(self.log.entries.items())
        )

    def _merge_snapshots(self, snapshots: tuple[EntrySnapshot, ...]) -> None:
        for slot, ballot, command, request, committed in snapshots:
            current = self._p1_entries.get(slot)
            if current is not None and current[4]:
                continue  # already have a committed value for the slot
            if committed or current is None or ballot > current[1]:
                self._p1_entries[slot] = (slot, ballot, command, request, committed)

    def _drain_buffered(self) -> None:
        """Forward requests buffered during a failed candidacy to whoever
        won; otherwise they would wait for an election that may be
        disabled.  Requests caught mid-batch or queued behind the pipeline
        bound when we stepped down follow them to the new leader."""
        if self.active or self.leader_hint == self.id:
            return
        if self._handing_off:
            # Deposed mid-handoff by a competing ballot: the drain is moot.
            self._handing_off = False
            self._handoff_successor = None
        pending: list[ClientRequest] = (
            self.batcher.drain() if self.batcher is not None else []
        )
        while self._proposal_queue:
            pending.extend(self._proposal_queue.popleft())
        for m in pending:
            self._inflight.discard((m.client, m.request_id))
        if not self._buffered and not pending:
            return
        self._p1_quorum = None
        buffered, self._buffered = self._buffered, []
        for _src, request in buffered:
            self.send(self.leader_hint, request)
        for m in pending:
            self.send(self.leader_hint, m)

    def _lease_blocks_promise(
        self, candidate: NodeID, released_by: NodeID | None = None
    ) -> bool:
        """A live lease forbids promising to ``candidate``: either this
        node granted someone else and the grant hasn't expired on its own
        clock, or this node is the leaseholder itself and the counted
        grants (send time + duration, un-discounted) are still in force.

        ``released_by`` is a planned-handoff consent token: a grant held
        by exactly that node releases early, because the holder stopped
        serving lease reads before it signed the successor's campaign.
        The leaseholder-side window never releases this way — only its
        owner knows when it truly stopped serving."""
        if self._grant is not None and self._grant.blocks(candidate):
            if released_by is None or not self._grant.releases(released_by):
                return True
        return (
            self._lease is not None
            and candidate != self.id
            and self.clock.now < self._lease.valid_until + self.max_clock_skew
        )

    def on_p1a(self, src: Hashable, m: P1a) -> None:
        if self.recovering:
            return  # a learner's promise history is gone; abstain
        if self._lease_blocks_promise(m.ballot.owner, released_by=m.handoff_from):
            self.send(src, P1b(ballot=self.promised, ok=False))
            return
        if m.ballot > self.promised:
            self.promised = m.ballot
            self.leader_hint = m.ballot.owner
            if self.active:
                self.active = False  # step down
            self._drain_buffered()
            suffix = tuple(
                (slot, e.ballot, e.command, e.request, e.committed)
                for slot, e in sorted(self.log.entries.items())
                if slot > m.commit_upto
            )
            # The promise must survive a reboot before the candidate can
            # count it, so the P1b waits for the WAL record's fsync.
            reply = P1b(ballot=m.ballot, ok=True, entries=suffix)
            self.persist("promise", m.ballot, then=lambda: self.send(src, reply))
            self._reset_election_timer()
        else:
            self.send(src, P1b(ballot=self.promised, ok=False))

    def on_p1b(self, src: Hashable, m: P1b) -> None:
        if not m.ok:
            if m.ballot > self.promised:
                self.promised = m.ballot
                self.persist("promise", m.ballot)  # no reply gated on this
                self.leader_hint = m.ballot.owner
                self._p1_quorum = None
                self._reset_election_timer()
                self._drain_buffered()
            return
        if self._p1_quorum is None or m.ballot != self.ballot or self.active:
            return
        self._merge_snapshots(m.entries)
        self._p1_quorum.ack(src)
        if self._p1_quorum.satisfied():
            self._become_leader()

    def _become_leader(self) -> None:
        self.active = True
        self._p1_quorum = None
        self.leader_hint = self.id
        max_slot = max(self._p1_entries, default=0)
        max_slot = max(max_slot, self.log.next_slot - 1)
        if self._lease is not None:
            # Fresh term: grant rounds restart under the new ballot, and
            # lease reads wait until every slot adopted from the previous
            # leader has executed locally (that leader may have replied to
            # clients for them already).
            self._lease.reset()
            self._read_barrier_slot = max_slot
        # Adopt committed entries; re-propose uncommitted ones with our
        # ballot; fill gaps with no-ops (paper section 2: the leader must
        # instruct followers to accept pending commands it learned).
        for slot in range(1, max_slot + 1):
            local = self.log.entries.get(slot)
            if local is not None and local.committed:
                continue
            learned = self._p1_entries.get(slot)
            if learned is not None and learned[4]:
                self.log.accept(slot, learned[1], learned[2], learned[3])
                self.log.commit(slot)
                continue
            command = learned[2] if learned is not None else None
            request = learned[3] if learned is not None else None
            self._repropose(slot, command, request)
        self.log.next_slot = max(self.log.next_slot, max_slot + 1)
        self._p1_entries = {}
        self._advance_execution()
        if self.heartbeat_interval is not None and not self._heartbeat_armed:
            self._heartbeat_armed = True
            self.set_timer(self.heartbeat_interval, self._heartbeat)
        buffered, self._buffered = self._buffered, []
        for src, request in buffered:
            self.on_request(src, request)

    def _repropose(self, slot: int, command: EntryCommand, request: Any) -> None:
        quorum = self.phase2_quorum()
        if self.disk is None:
            quorum.ack(self.id)
        self.log.entries[slot] = Entry(self.ballot, command, request, quorum)
        self.log.next_slot = max(self.log.next_slot, slot + 1)
        self._uncommitted_slots[slot] = self.now
        self.multicast(
            self.phase2_targets(),
            P2a(
                ballot=self.ballot,
                slot=slot,
                command=command,
                request=request,
                commit_upto=self.log.commit_upto(),
                lease_seq=self._lease_stamp(),
            ),
        )
        if self.disk is not None:
            # Durable mode: our own accept joins the quorum only once the
            # WAL record is synced (it overlaps the P2a round trips).
            self._persist_accept(slot, command, request, check_commit=True)
        elif quorum.satisfied():
            self._on_slot_committed(slot)

    def _persist_accept(
        self, slot: int, command: EntryCommand, request: Any, check_commit: bool
    ) -> None:
        self.persist(
            "accept",
            (slot, self.ballot, command, request),
            slot=slot,
            size_bytes=wal_record_bytes(command),
            then=lambda: self._self_ack(slot, check_commit),
        )

    def _self_ack(self, slot: int, check_commit: bool) -> None:
        """Count the leader's own (now durable) accept toward ``slot``."""
        if not self.active:
            return
        entry = self.log.entries.get(slot)
        if entry is None or entry.quorum is None or entry.committed:
            return
        if entry.ballot != self.ballot:
            return  # re-led in between; the new ballot re-persisted it
        entry.quorum.ack(self.id)
        if check_commit and entry.quorum.satisfied():
            self._on_slot_committed(slot)

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        if m.command.is_read:
            mode = m.command.read_mode
            if mode == "local" or (mode is None and self.relaxed_reads):
                self._serve_local_read(m)
                return
            if mode == "quorum" and not self.recovering:
                self._start_quorum_read(m)
                return
            if mode == "lease" and self._try_lease_read(m):
                return
            # lease invalid (or this replica isn't the leaseholder): fall
            # through to the full consensus round — always linearizable.
        key = (m.client, m.request_id)
        if key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[key],
                    replied_by=self.id,
                    leader_hint=self.leader_hint if not self.active else self.id,
                ),
            )
            return
        if self.recovering:
            # Learners can't propose; hand the request to the cluster.
            if self.leader_hint != self.id:
                self.send(self.leader_hint, m)
            else:
                self._buffered.append((src, m))
            return
        if self.active:
            if self._handing_off:
                # Mid-handoff drain: no new slots past the transfer point.
                # The request follows the successor on completion (or is
                # replayed here if the handoff aborts).
                self._buffered.append((src, m))
                return
            if key in self._inflight:
                return  # duplicate while the original is still committing
            self._inflight.add(key)
            if self.batcher is not None:
                self.batcher.add(m)
            else:
                self._submit_group([m])
        elif self.leader_hint != self.id:
            self.send(self.leader_hint, m)  # forward to the believed leader
        else:
            self._buffered.append((src, m))

    def propose_batch(self, requests: list[ClientRequest]) -> None:
        """Replicate a coalesced group of requests as one log entry.

        This is the batcher's flush target.  If leadership was lost while
        the batch filled, the requests are re-admitted (and forwarded to
        whoever leads now).
        """
        if not self.active:
            for m in requests:
                self._inflight.discard((m.client, m.request_id))
                self.on_request(m.client, m)
            return
        self._submit_group(list(requests))

    def _submit_group(self, group: list[ClientRequest]) -> None:
        """Propose ``group`` now, or queue it behind the pipeline bound."""
        if (
            self.pipeline_depth is not None
            and len(self._uncommitted_slots) >= self.pipeline_depth
        ):
            self._proposal_queue.append(group)
            return
        self._propose_group(group)

    def _propose_group(self, group: list[ClientRequest]) -> None:
        if len(group) == 1:
            m = group[0]
            self._propose(m.command, RequestInfo(m.client, m.request_id))
        else:
            self._propose(
                Batch(tuple(m.command for m in group)),
                tuple(RequestInfo(m.client, m.request_id) for m in group),
            )

    def _release_pipeline(self) -> None:
        while self._proposal_queue and (
            self.pipeline_depth is None
            or len(self._uncommitted_slots) < self.pipeline_depth
        ):
            self._propose_group(self._proposal_queue.popleft())

    def _serve_local_read(self, m: ClientRequest) -> None:
        """Relaxed read: answer from the local state machine.  A session
        token (``min_version``) defers the reply until this replica has
        executed that many writes to the key, giving read-your-writes and
        monotonic reads without a consensus round."""
        key = m.command.key
        if self.store.version(key) < m.command.min_version:
            self._read_waiters.setdefault(key, []).append(m)
            return
        self.send(
            m.client,
            ClientReply(
                request_id=m.request_id,
                ok=True,
                value=self.store.read(key),
                replied_by=self.id,
                version=self.store.version(key),
            ),
        )

    def _drain_read_waiters(self, key: Hashable) -> None:
        waiters = self._read_waiters.get(key)
        if not waiters:
            return
        ready = [m for m in waiters if self.store.version(key) >= m.command.min_version]
        if ready:
            self._read_waiters[key] = [m for m in waiters if m not in ready]
            for m in ready:
                self._serve_local_read(m)

    # ------------------------------------------------------------------
    # Linearizable read paths: leader leases and quorum reads
    # ------------------------------------------------------------------

    def _lease_valid(self) -> bool:
        """Whether this node's leader lease currently permits serving
        local reads.  Override hook: the adversarial tests plant broken
        variants here and let the linearizability checker catch them."""
        return self._lease is not None and self._lease.valid

    def _try_lease_read(self, m: ClientRequest) -> bool:
        """Serve (or park) a lease read; False = caller must fall back."""
        if not self.active or not self._lease_valid():
            return False
        if self.log.execute_index > self._read_barrier_slot:
            self._serve_read_from_store(m)
        else:
            self._pending_lease_reads.append(m)
        return True

    def _serve_read_from_store(self, m: ClientRequest) -> None:
        key = m.command.key
        self.send(
            m.client,
            ClientReply(
                request_id=m.request_id,
                ok=True,
                value=self.store.read(key),
                replied_by=self.id,
                leader_hint=self.id if self.active else None,
                version=self.store.version(key),
            ),
        )

    def _start_quorum_read(self, m: ClientRequest) -> None:
        """PQR-style quorum read: poll a read quorum for its accepted
        frontier; any replica (not just the leader) coordinates."""
        quorum = self.read_quorum()
        quorum.ack(self.id)
        frontier = self.log.next_slot - 1
        if quorum.satisfied():  # single-node cluster
            self._finish_quorum_read(m, frontier)
            return
        self._next_read_id += 1
        rid = self._next_read_id
        self._quorum_reads[rid] = [m, quorum, frontier]
        self.multicast(self._read_targets(quorum.size - 1), ReadQuery(rid=rid))

    def _read_targets(self, needed: int) -> list[NodeID]:
        """Random sample of peers so concurrent readers spread the member
        work instead of piling onto the same acceptors."""
        peers = self.peers
        if needed >= len(peers):
            return peers
        if self._read_rng is None:
            self._read_rng = self.deployment.cluster.streams.stream(
                f"paxos-read-{self.id}"
            )
        return self._read_rng.sample(peers, needed)

    def on_read_query(self, src: Hashable, m: ReadQuery) -> None:
        if self.recovering:
            return  # an incomplete log would under-report the frontier
        self.send(src, ReadReply(rid=m.rid, frontier=self.log.next_slot - 1))

    def on_read_reply(self, src: Hashable, m: ReadReply) -> None:
        state = self._quorum_reads.get(m.rid)
        if state is None:
            return
        state[2] = max(state[2], m.frontier)
        quorum = state[1]
        quorum.ack(src)
        if quorum.satisfied():
            del self._quorum_reads[m.rid]
            self._finish_quorum_read(state[0], state[2])

    def _finish_quorum_read(self, m: ClientRequest, frontier: int) -> None:
        """Rinse: a committed write anywhere is accepted at some polled
        member, so the highest accepted slot bounds it — serve only after
        the local state machine has executed past that frontier."""
        if self.log.execute_index > frontier:
            self._serve_read_from_store(m)
        else:
            self._rinse_waiters.append([frontier, m])

    def _drain_read_backlog(self) -> None:
        """Execution advanced: settle rinse waiters and barrier-parked
        lease reads (re-admitting the latter if the lease lapsed)."""
        if self._rinse_waiters:
            still: list[list] = []
            for waiter in self._rinse_waiters:
                if self.log.execute_index > waiter[0]:
                    self._serve_read_from_store(waiter[1])
                else:
                    still.append(waiter)
            self._rinse_waiters = still
        if self._pending_lease_reads:
            pending, self._pending_lease_reads = self._pending_lease_reads, []
            for m in pending:
                if not self.active or not self._lease_valid():
                    self.on_request(m.client, m)  # fall back to consensus
                elif self.log.execute_index > self._read_barrier_slot:
                    self._serve_read_from_store(m)
                else:
                    self._pending_lease_reads.append(m)

    def _lease_stamp(self) -> int:
        """Open a lease grant round for an outgoing broadcast (0 = leases
        are off, and the field stays at its wire-neutral default)."""
        return self._lease.stamp() if self._lease is not None else 0

    def _propose(self, command: EntryCommand, request: Any) -> None:
        quorum = self.phase2_quorum()
        if self.disk is None:
            quorum.ack(self.id)
        slot = self.log.append(self.ballot, command, request, quorum)
        self._uncommitted_slots[slot] = self.now
        self.multicast(
            self.phase2_targets(),
            P2a(
                ballot=self.ballot,
                slot=slot,
                command=command,
                request=request,
                commit_upto=self.log.commit_upto(),
                lease_seq=self._lease_stamp(),
            ),
        )
        if self.disk is not None:
            self._persist_accept(slot, command, request, check_commit=True)

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------

    def on_p2a(self, src: Hashable, m: P2a) -> None:
        if self.recovering:
            return  # learners don't vote; catch-up will deliver the slot
        if m.ballot >= self.promised:
            self.promised = m.ballot
            if self.active and m.ballot.owner != self.id:
                self.active = False
            self.leader_hint = m.ballot.owner
            self._drain_buffered()
            self.log.accept(m.slot, m.ballot, m.command, m.request)
            # Accepting doubles as a lease grant: echo the round number so
            # the leader can anchor the window at its own broadcast time.
            lease_seq = m.lease_seq if self._grant is not None else 0
            if lease_seq:
                self._grant.grant(m.ballot.owner)
            # The accept record carries its ballot, so replay restores both
            # the entry and the implied promise; the P2b leaves only after
            # the record is durable (the paper's "fsync in critical path").
            reply = P2b(ballot=m.ballot, slot=m.slot, ok=True, lease_seq=lease_seq)
            self.persist(
                "accept",
                (m.slot, m.ballot, m.command, m.request),
                slot=m.slot,
                size_bytes=wal_record_bytes(m.command),
                then=lambda: self.send(src, reply),
            )
            self._apply_commit_watermark(m.commit_upto, m.ballot, src)
            self._reset_election_timer()
        else:
            self.send(src, P2b(ballot=self.promised, slot=m.slot, ok=False))

    def on_p2b(self, src: Hashable, m: P2b) -> None:
        if not m.ok:
            if m.ballot > self.promised:
                self.promised = m.ballot
                self.persist("promise", m.ballot)
                self.leader_hint = m.ballot.owner
                self.active = False
                self._reset_election_timer()
            return
        if not self.active or m.ballot != self.ballot:
            return
        if m.lease_seq and self._lease is not None:
            # Count the grant even if the slot already committed: grant
            # tallies are per round, not per entry.
            self._lease.record_grant(m.lease_seq, src)
        entry = self.log.entries.get(m.slot)
        if entry is None or entry.quorum is None or entry.committed:
            return
        entry.quorum.ack(src)
        if entry.quorum.satisfied():
            self._on_slot_committed(m.slot)

    def _on_slot_committed(self, slot: int) -> None:
        self.log.commit(slot)
        for info in request_infos(self.log.entries[slot].request):
            self.trace_mark(info)
        self._uncommitted_slots.pop(slot, None)
        if self.active:
            self._release_pipeline()
        self._advance_execution()
        if (
            self._handing_off
            and self.active
            and self.log.commit_upto() >= self._handoff_point
        ):
            self._complete_handoff()

    # ------------------------------------------------------------------
    # Commit propagation and execution
    # ------------------------------------------------------------------

    def on_commit(self, src: Hashable, m: Commit) -> None:
        if self.recovering:
            return  # catch-up owns a learner's commit progress
        if m.ballot >= self.promised:
            if m.ballot > self.promised:
                self.promised = m.ballot
                self.persist("promise", m.ballot)
            self.leader_hint = m.ballot.owner
            if self._monitor is not None and src != self.id:
                delay = self.clock.now - m.sent_at if m.sent_at > 0.0 else None
                self._observe_leader(src, m.ballot, delay)
            if m.lease_seq and self._grant is not None:
                self._grant.grant(m.ballot.owner)
                self.send(src, LeaseGrant(ballot=m.ballot, seq=m.lease_seq))
            self._drain_buffered()
            self._apply_commit_watermark(m.commit_upto, m.ballot, src)
            self._reset_election_timer()

    def on_lease_grant(self, src: Hashable, m: LeaseGrant) -> None:
        if self.active and m.ballot == self.ballot and self._lease is not None:
            self._lease.record_grant(m.seq, src)

    def _apply_commit_watermark(self, upto: int, ballot: Ballot, leader: Hashable) -> None:
        """Commit slots at or below the watermark.

        Only entries accepted under the watermark's own ballot are safe to
        commit from a bare slot number: an entry this replica accepted
        under an *older* ballot may have been superseded by whatever the
        new leader adopted and re-proposed into that slot (a partitioned
        ex-leader's pipelined proposals are the classic case).  Those
        slots, like never-received ones, are re-fetched from the leader —
        with a retry deadline so a lost FillReply cannot wedge gap-fill.
        """
        stale: list[int] = []
        for slot in range(self.log.execute_index, upto + 1):
            entry = self.log.entries.get(slot)
            if entry is None or entry.committed:
                continue
            if entry.ballot == ballot:
                entry.committed = True
            else:
                stale.append(slot)
        need = sorted(set(self.log.missing_slots(upto)) | set(stale))
        if need and self.now >= self._fill_deadline:
            self._fill_deadline = self.now + self.retransmit_timeout
            self.send(leader, FillRequest(slots=tuple(need[:64])))
        self._advance_execution()

    def on_fill_request(self, src: Hashable, m: FillRequest) -> None:
        if self.recovering:
            return  # nothing trustworthy to serve
        entries = tuple(
            (slot, e.ballot, e.command, e.request, e.committed)
            for slot in m.slots
            if (e := self.log.entries.get(slot)) is not None
        )
        self.send(src, FillReply(entries=entries))

    def on_fill_reply(self, src: Hashable, m: FillReply) -> None:
        self._fill_deadline = 0.0
        for slot, ballot, command, request, committed in m.entries:
            if committed:
                self.log.accept(slot, ballot, command, request)
                self.log.commit(slot)
        self._advance_execution()

    def _advance_execution(self) -> None:
        for slot, entry in self.log.executable():
            # A batched slot fans out into one (command, request) pair per
            # coalesced client command: each executes, caches, and replies
            # individually, so batching is invisible above this point.
            for command, info in entry_pairs(entry.command, entry.request):
                value = None
                if command is not None:
                    request_key = None
                    if info is not None:
                        request_key = (info.client, info.request_id)
                    if request_key is not None and request_key in self._request_cache:
                        value = self._request_cache[request_key]
                    else:
                        value = self.store.execute(command)
                        if request_key is not None:
                            self._request_cache[request_key] = value
                            self._inflight.discard(request_key)
                if command is not None and command.is_write:
                    self._drain_read_waiters(command.key)
                if info is not None and entry.ballot.owner == self.id and self.active:
                    self.send(
                        info.client,
                        ClientReply(
                            request_id=info.request_id,
                            ok=True,
                            value=value,
                            replied_by=self.id,
                            leader_hint=self.id,
                            version=(
                                self.store.version(command.key)
                                if command is not None
                                else 0
                            ),
                        ),
                    )
            self.log.mark_executed(slot)
        if self._rinse_waiters or self._pending_lease_reads:
            self._drain_read_backlog()
        self.maybe_snapshot(self.log.execute_index - 1)

    # ------------------------------------------------------------------
    # Heartbeats and elections
    # ------------------------------------------------------------------

    def _heartbeat(self) -> None:
        if not self.active:
            self._heartbeat_armed = False
            return
        self.broadcast(
            Commit(
                ballot=self.ballot,
                commit_upto=self.log.commit_upto(),
                lease_seq=self._lease_stamp(),
                sent_at=self.clock.now if self.detector_enabled else 0.0,
            )
        )
        self._retransmit_uncommitted()
        self.set_timer(self.heartbeat_interval, self._heartbeat)

    def _retransmit_uncommitted(self) -> None:
        """Re-send accepts that lost their race with the network: in normal
        operation slots commit well within one heartbeat, so this only
        fires after drops or partitions (liveness, not the common path)."""
        upto = self.log.commit_upto()
        now = self.now
        for slot in sorted(self._uncommitted_slots):
            if now - self._uncommitted_slots[slot] < self.retransmit_timeout:
                continue  # acks are plausibly still in flight
            entry = self.log.entries.get(slot)
            if entry is None or entry.committed or entry.quorum is None:
                self._uncommitted_slots.pop(slot, None)
                continue
            if entry.ballot != self.ballot:
                continue
            self._uncommitted_slots[slot] = now
            behind = [p for p in self.phase2_targets() if p not in entry.quorum.acks]
            if behind:
                self.multicast(
                    behind,
                    P2a(
                        ballot=self.ballot,
                        slot=slot,
                        command=entry.command,
                        request=entry.request,
                        commit_upto=upto,
                    ),
                )

    def _reset_election_timer(self) -> None:
        if not self._failover_enabled:
            return
        if self._election_handle is not None:
            self._election_handle.cancel()
        delay = self._election_delay() * (1.0 + self._rng.random())
        self._election_handle = self.set_timer(delay, self._election_expired)

    def _election_delay(self) -> float:
        """Base follower timeout before campaigning.  With the detector on
        this is the Jacobson estimate over observed heartbeat cadence (so
        it self-tunes to the topology instead of being hand-set); the
        fixed ``election_timeout`` otherwise."""
        adaptive = self._adaptive
        if adaptive is not None and adaptive.samples >= 4:
            return adaptive.timeout * self.adaptive_multiplier
        return self.election_timeout if self.election_timeout is not None else 0.15

    def _election_expired(self) -> None:
        if self.active or self.recovering:
            return
        if self._grant is not None and self._grant.blocks(self.id):
            # A live lease grant forbids campaigning: a P1a from us would
            # be refused anyway, so wait out the window instead.
            self._reset_election_timer()
            return
        if self._monitor is not None:
            leader = self.leader_hint
            if (
                leader != self.id
                and self._monitor.samples(leader) > 0
                and self._monitor.assess(leader, self.clock.now) == HEALTHY
            ):
                # φ veto: the timer fired but the accrual evidence says the
                # leader is fine (an unlucky jitter streak, not a failure).
                # Degraded and silent leaders fall through to the campaign.
                self._reset_election_timer()
                return
        self.start_phase1()
        self._reset_election_timer()

    # ------------------------------------------------------------------
    # Gray-failure detection and planned leader handoff
    # ------------------------------------------------------------------

    def _observe_leader(
        self, src: NodeID, ballot: Ballot, delay: float | None = None
    ) -> None:
        """Heartbeat receipt: feed the φ-accrual monitor and the adaptive
        timeout, then grade the leader.  A *degraded* verdict (alive but
        stretched past ``slow_ratio``) solicits a planned handoff instead
        of waiting for a disruptive election that may never trigger."""
        interval = self._monitor.observe(src, self.clock.now, delay=delay)
        if interval is not None and self._adaptive is not None:
            self._adaptive.observe(interval)
        if not self.handoff_enabled or self.active or self.recovering:
            return
        if self.now < self._handoff_request_after:
            return
        if self._monitor.assess(src, self.clock.now) != DEGRADED:
            return
        self._handoff_request_after = self.now + self.handoff_vote_window / 2.0
        self.handoff_requests_sent += 1
        self.send(src, HandoffRequest(ballot=ballot))

    def on_handoff_request(self, src: Hashable, m: HandoffRequest) -> None:
        """Leader side: tally degradation reports; once enough distinct
        followers agree within the vote window, hand off to the latest
        reporter (its request arriving proves it is reachable)."""
        if (
            not self.active
            or self.recovering
            or self._handing_off
            or m.ballot != self.ballot
            or not self.handoff_enabled
        ):
            return
        now = self.now
        if now < self._handoff_cooldown_until:
            return
        horizon = now - self.handoff_vote_window
        self._handoff_votes = {
            peer: at for peer, at in self._handoff_votes.items() if at >= horizon
        }
        self._handoff_votes[src] = now
        if len(self._handoff_votes) >= self.handoff_votes_needed:
            self._begin_handoff(src)

    def _begin_handoff(self, successor: NodeID) -> None:
        """Handoff phase 1: stop proposing and drain to a transfer point.

        The transfer point is the current log frontier — everything at or
        below it must commit before leadership moves, so no slot this
        leader may already have answered a client for can be lost in the
        transition.  Requests arriving during the drain buffer and follow
        the successor once it takes over."""
        self._handing_off = True
        self._handoff_successor = successor
        self._handoff_votes = {}
        self._handoff_cooldown_until = self.now + self.handoff_cooldown
        if self.batcher is not None:
            self.batcher.flush()
        while self._proposal_queue:
            self._propose_group(self._proposal_queue.popleft())
        self._handoff_point = self.log.next_slot - 1
        if self.log.commit_upto() >= self._handoff_point:
            self._complete_handoff()
            return
        # Liveness fallback: if the drain cannot finish (lost acks, a
        # crashed follower holding a slot open), resume normal leadership
        # rather than wedging the group in a half-handoff.
        successor_token = self._handoff_successor
        self.set_timer(
            self.retransmit_timeout,
            lambda: self._handoff_drain_expired(successor_token),
        )

    def _handoff_drain_expired(self, successor: NodeID) -> None:
        if self._handing_off and self._handoff_successor == successor:
            self._handing_off = False
            self._handoff_successor = None
            # Still the leader: requests parked during the drain resume.
            buffered, self._buffered = self._buffered, []
            for src, request in buffered:
                self.on_request(src, request)

    def _complete_handoff(self) -> None:
        """Handoff phase 2: release the lease, step down, and solicit the
        successor's campaign.  Ordering matters: our own validity window
        dies *before* the Handoff leaves, so by the time the successor's
        consent-bearing P1a releases the followers' grant windows this
        node can no longer serve a lease read."""
        successor = self._handoff_successor
        self._handing_off = False
        self._handoff_successor = None
        if successor is None or not self.active:
            return
        if self._lease is not None:
            self._lease.valid_until = float("-inf")
            # Clears in-flight grant rounds too, so a straggling grant
            # reply cannot resurrect the window we just released.
            self._lease.reset()
        self.active = False
        self.leader_hint = successor
        self.handoffs_completed += 1
        ballot = self.ballot
        self.send(
            successor,
            Handoff(ballot=ballot, frontier=self.log.next_slot - 1),
        )
        self.set_timer(
            self.retransmit_timeout,
            lambda: self._retransmit_handoff(successor, ballot, 3),
        )
        self._drain_buffered()
        self._reset_election_timer()

    def _retransmit_handoff(
        self, successor: NodeID, ballot: Ballot, attempts: int
    ) -> None:
        """Liveness: the Handoff travels over the same lossy network as
        everything else.  Re-send until the successor's campaign shows up
        (our promise advances past the handed-off ballot); the ordinary
        election timer is the ultimate fallback."""
        if self.active or self.recovering or self.promised > ballot or attempts <= 0:
            return
        self.send(
            successor, Handoff(ballot=ballot, frontier=self.log.next_slot - 1)
        )
        self.set_timer(
            self.retransmit_timeout,
            lambda: self._retransmit_handoff(successor, ballot, attempts - 1),
        )

    def on_handoff(self, src: Hashable, m: Handoff) -> None:
        """Successor side: campaign immediately, carrying the old leader's
        consent so follower grant windows release instead of stalling the
        election for a lease duration."""
        if self.recovering or self.active:
            return
        if m.ballot < self.promised and m.ballot.owner != self.promised.owner:
            return  # a newer leader already exists; stale handoff
        self.handoffs_received += 1
        self._handoff_grant = m.ballot.owner
        self.start_phase1()

    # ------------------------------------------------------------------
    # Crash recovery: WAL replay, catch-up, and state transfer
    # ------------------------------------------------------------------

    def snapshot_payload(self, executed_upto: int) -> tuple[Any, int]:
        """Applied state through ``executed_upto``: the full multi-version
        store dump plus the request cache (so a restored replica still
        deduplicates retried client requests)."""
        dump = self.store.dump()
        cache = dict(self._request_cache)
        size = (
            256
            + sum(64 + 16 * len(chain) for chain in dump.values())
            + 32 * len(cache)
        )
        return (dump, cache), size

    def _recover(self) -> None:
        """Rebuild state for a restarted incarnation.

        Reboot with a disk: reinstall the latest snapshot and replay the
        WAL, restoring ``promised`` and every accepted entry — then catch
        up on commits through the generic catch-up exchange (commit flags
        are deliberately not persisted; they are re-learned from peers).
        Wipe, or reboot without a disk: nothing to replay — rejoin as a
        learner and rely entirely on state transfer.
        """
        had_state = False
        if self.disk is not None:
            snap = self.disk.snapshot
            if snap is not None:
                had_state = True
                self._install_state(snap)
            for record in self.disk.wal.records:
                had_state = True
                if record.kind == "promise":
                    if record.data > self.promised:
                        self.promised = record.data
                elif record.kind == "accept":
                    slot, ballot, command, request = record.data
                    if slot >= self.log.execute_index:
                        self.log.accept(slot, ballot, command, request)
                    if ballot > self.promised:
                        self.promised = ballot
        self.recovering = self.restart_reason == "wipe" or not had_state
        if not self.recovering:
            self.leader_hint = self.promised.owner if self.promised != ZERO else self.initial_leader
            if self._failover_enabled:
                self._reset_election_timer()
            elif self.id == self.initial_leader:
                # Static-leader deployments: re-campaign; the P1b suffixes
                # (sent relative to our low commit frontier) re-teach us
                # everything committed while we were down.
                self.set_timer(0.0, self.start_phase1)
        self.set_timer(0.0, self._start_catchup)

    def _install_state(self, snap: Snapshot) -> None:
        """Adopt a state-machine snapshot (from disk or a donor)."""
        dump, cache = snap.payload
        self.store.restore(dump)
        self._request_cache = dict(cache)
        self.log.compact(snap.upto)
        self.log.execute_index = max(self.log.execute_index, snap.upto + 1)
        self.log.next_slot = max(self.log.next_slot, snap.upto + 1)

    def _start_catchup(self) -> None:
        if self._halted or not self.peers:
            self.recovering = False
            return
        self._catchup = CatchupRunner(self, self.peers, self._make_catchup_request)
        self._catchup.start()

    def _make_catchup_request(self) -> CatchupRequest:
        return CatchupRequest(from_slot=self.log.commit_upto() + 1)

    def on_catchup_request(self, src: Hashable, m: CatchupRequest) -> None:
        if self.recovering:
            return  # can't donate; the requester rotates to another peer
        upto = self.log.commit_upto()
        snapshot = None
        snap_bytes = 0
        from_slot = m.from_slot
        if self.log.execute_index - from_slot > self.catchup_snapshot_gap:
            # Too far behind to serve from the log economically: ship the
            # applied state machine through our executed frontier instead.
            snap_upto = self.log.execute_index - 1
            payload, snap_bytes = self.snapshot_payload(snap_upto)
            snapshot = Snapshot(snap_upto, payload, snap_bytes)
            from_slot = snap_upto + 1
        entries = []
        commands = 0
        for slot in sorted(s for s in self.log.entries if s >= from_slot):
            entry = self.log.entries[slot]
            if not entry.committed:
                continue
            entries.append((slot, entry.ballot, entry.command, entry.request, True))
            commands += len(entry.command) if isinstance(entry.command, Batch) else 1
            if len(entries) >= self.catchup_max_entries:
                break
        self.send(
            src,
            CatchupReply(
                from_slot=m.from_slot,
                commit_upto=upto,
                snapshot=snapshot,
                entries=tuple(entries),
                payload_bytes=snap_bytes + entries_payload_bytes(len(entries), commands),
                leader_hint=self.leader_hint,
                extra=self.promised,
            ),
        )

    def on_catchup_reply(self, src: Hashable, m: CatchupReply) -> None:
        if self._catchup is None or not self._catchup.active:
            return
        if m.snapshot is not None and m.snapshot.upto >= self.log.execute_index:
            self._install_state(m.snapshot)
        for slot, ballot, command, request, _committed in m.entries:
            if slot < self.log.execute_index:
                continue
            self.log.accept(slot, ballot, command, request)
            self.log.commit(slot)
        if isinstance(m.extra, Ballot) and m.extra > self.promised:
            # Adopting the donor's promise is always safe (promising more
            # restricts us) and lets a wiped ex-leader pick a fresh ballot.
            self.promised = m.extra
            self.persist("promise", m.extra)
        if m.leader_hint is not None:
            self.leader_hint = m.leader_hint
        self._advance_execution()
        if self.log.commit_upto() >= m.commit_upto:
            self._finish_catchup()
        else:
            self._catchup.on_progress()

    def _finish_catchup(self) -> None:
        """Caught up with a donor's commit frontier: rejoin as a voter."""
        runner, self._catchup = self._catchup, None
        if runner is not None:
            runner.stop()
        was_recovering = self.recovering
        self.recovering = False
        if self.disk is not None and self.log.execute_index > 1:
            # Durably capture the adopted state so the *next* reboot
            # replays from here instead of re-transferring everything.
            upto = self.log.execute_index - 1
            payload, size = self.snapshot_payload(upto)
            self._snapshot_inflight = True
            cost = self.disk.profile.sync_cost(size)
            self._server.submit(cost, self._install_snapshot, Snapshot(upto, payload, size))
        if self._failover_enabled:
            self._reset_election_timer()
        elif was_recovering and self.id == self.initial_leader and not self.active:
            self.set_timer(0.0, self.start_phase1)
        self._drain_buffered()
