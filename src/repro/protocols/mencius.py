"""Mencius (Mao, Junqueira, Marzullo, OSDI 2008): rotating-leader consensus.

The paper cites Mencius among the works that observed the single-leader
bottleneck (section 5.2) and closes by anticipating that its framework
"will lead the way to the development of new protocols".  This module is
that demonstration: a complete additional protocol built on the same Paxi
building blocks, used to contrast the *rotating* multi-leader design point
with WPaxos's *locality* -based one.

Design (simplified Mencius):

- the slot space is partitioned round-robin: node ``i`` of ``N`` owns slots
  ``i, i+N, i+2N, ...`` and is the pre-agreed leader for them, so commands
  commit in one phase-2 round from any node — no single leader;
- when a node sees another node's accept for slot ``s``, it **skips** all
  of its own unused slots below ``s`` (broadcasting a skip range) so the
  shared log keeps advancing even for idle nodes;
- execution is strictly in slot order, so a command's latency includes
  waiting for every other node's skips — the known Mencius trade-off: the
  slowest/most distant replica paces everyone (unlike EPaxos, which only
  waits for a fast quorum, or WPaxos, which commits locally).

Like the paper's EPaxos evaluation, this implements the failure-free path
(no revocation of a crashed node's slots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command, Message
from repro.paxi.protocol import Protocol
from repro.paxi.quorum import MajorityQuorum, Quorum
from repro.protocols.log import RequestInfo


@dataclass(frozen=True, slots=True)
class MAccept(Message):
    """Accept for a slot its sender owns (phase-2 only, by construction)."""

    slot: int = 0
    command: Command | None = None
    request: RequestInfo | None = None


@dataclass(frozen=True, slots=True)
class MAcceptAck(Message):
    slot: int = 0


@dataclass(frozen=True, slots=True)
class MCommit(Message):
    slot: int = 0
    command: Command | None = None
    request: RequestInfo | None = None


@dataclass(frozen=True, slots=True)
class MSkip(Message):
    """``owner`` skips every slot it owns in ``[from_slot, below)``."""

    from_slot: int = 0
    below: int = 0


@dataclass
class _MSlot:
    command: Command | None = None
    request: RequestInfo | None = None
    committed: bool = False
    executed: bool = False
    skipped: bool = False
    quorum: Quorum | None = None


class Mencius(Protocol):
    """A Mencius replica.

    Recognized config params:

    - ``skip_flush_interval``: how often an idle node re-announces its skip
      frontier so laggards can execute (default 0.02 s).
    """

    def __init__(self, deployment: Deployment, node_id: NodeID) -> None:
        super().__init__(deployment, node_id)
        self.order = list(self.config.node_ids)
        self.index = self.order.index(node_id)
        self.n = len(self.order)
        self.flush_interval: float = self.config.param("skip_flush_interval", 0.02)
        self.slots: dict[int, _MSlot] = {}
        self.next_own_slot = self.index  # slots are 0-based: index, index+N, ...
        self.execute_index = 0
        self.skip_below: dict[int, int] = {i: 0 for i in range(self.n)}
        self._request_cache: dict[tuple[Hashable, int], Any] = {}
        self._retransmit: dict[int, float] = {}
        self.retransmit_timeout: float = self.config.param("retransmit_timeout", 0.3)

        self.register(MAccept, self.on_accept)
        self.register(MAcceptAck, self.on_accept_ack)
        self.register(MCommit, self.on_commit)
        self.register(MSkip, self.on_skip)
        self.set_timer(self.flush_interval, self._flush_tick)

    # ------------------------------------------------------------------
    # Slot arithmetic
    # ------------------------------------------------------------------

    def owner_of(self, slot: int) -> int:
        return slot % self.n

    def _own_unused_below(self, below: int) -> tuple[int, int] | None:
        """Range of this node's unused own slots strictly below ``below``."""
        if self.next_own_slot >= below:
            return None
        start = self.next_own_slot
        # Advance our own frontier past the skipped range.
        while self.next_own_slot < below:
            self.next_own_slot += self.n
        return (start, below)

    # ------------------------------------------------------------------
    # Proposing
    # ------------------------------------------------------------------

    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        cache_key = (m.client, m.request_id)
        if cache_key in self._request_cache:
            self.send(
                m.client,
                ClientReply(
                    request_id=m.request_id,
                    ok=True,
                    value=self._request_cache[cache_key],
                    replied_by=self.id,
                ),
            )
            return
        slot = self.next_own_slot
        self.next_own_slot += self.n
        quorum = MajorityQuorum(self.config.node_ids)
        quorum.ack(self.id)
        self.slots[slot] = _MSlot(
            command=m.command, request=RequestInfo(m.client, m.request_id), quorum=quorum
        )
        self._retransmit[slot] = self.now
        self.broadcast(MAccept(slot=slot, command=m.command, request=self.slots[slot].request))

    # ------------------------------------------------------------------
    # Acceptor side
    # ------------------------------------------------------------------

    def on_accept(self, src: Hashable, m: MAccept) -> None:
        entry = self.slots.setdefault(m.slot, _MSlot())
        if entry.command is None:
            entry.command = m.command
            entry.request = m.request
        self.send(src, MAcceptAck(slot=m.slot))
        self._skip_up_to(m.slot)

    def _skip_up_to(self, slot: int) -> None:
        """Seeing activity at ``slot`` means our own earlier slots would
        block execution: give them up (the Mencius skip rule)."""
        skipped = self._own_unused_below(slot)
        if skipped is not None:
            start, below = skipped
            self._apply_skip(self.index, start, below)
            self.broadcast(MSkip(from_slot=start, below=below))
            self._try_execute()

    def on_skip(self, src: Hashable, m: MSkip) -> None:
        owner = self.order.index(src)
        self._apply_skip(owner, m.from_slot, m.below)
        self._try_execute()

    def _apply_skip(self, owner: int, from_slot: int, below: int) -> None:
        self.skip_below[owner] = max(self.skip_below[owner], below)
        slot = from_slot
        while slot < below:
            if self.owner_of(slot) == owner:
                entry = self.slots.setdefault(slot, _MSlot())
                if entry.command is None and not entry.committed:
                    entry.skipped = True
                    entry.committed = True
            slot += 1

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------

    def on_accept_ack(self, src: Hashable, m: MAcceptAck) -> None:
        entry = self.slots.get(m.slot)
        if entry is None or entry.quorum is None or entry.committed:
            return
        entry.quorum.ack(src)
        if entry.quorum.satisfied():
            entry.committed = True
            self.trace_mark(entry.request)
            self._retransmit.pop(m.slot, None)
            self.broadcast(MCommit(slot=m.slot, command=entry.command, request=entry.request))
            self._try_execute()

    def on_commit(self, src: Hashable, m: MCommit) -> None:
        entry = self.slots.setdefault(m.slot, _MSlot())
        if entry.command is None:
            entry.command = m.command
            entry.request = m.request
        entry.committed = True
        self._skip_up_to(m.slot)
        self._try_execute()

    # ------------------------------------------------------------------
    # Execution: strict slot order
    # ------------------------------------------------------------------

    def _try_execute(self) -> None:
        while True:
            entry = self.slots.get(self.execute_index)
            if entry is None or not entry.committed or entry.executed:
                break
            entry.executed = True
            value = None
            if entry.command is not None and not entry.skipped:
                cache_key = None
                if entry.request is not None:
                    cache_key = (entry.request.client, entry.request.request_id)
                if cache_key is not None and cache_key in self._request_cache:
                    value = self._request_cache[cache_key]
                else:
                    value = self.store.execute(entry.command)
                    if cache_key is not None:
                        self._request_cache[cache_key] = value
            if (
                entry.request is not None
                and self.owner_of(self.execute_index) == self.index
            ):
                self.send(
                    entry.request.client,
                    ClientReply(
                        request_id=entry.request.request_id,
                        ok=True,
                        value=value,
                        replied_by=self.id,
                    ),
                )
            self.execute_index += 1

    # ------------------------------------------------------------------
    # Liveness: idle-skip announcements and retransmission
    # ------------------------------------------------------------------

    def _flush_tick(self) -> None:
        # Re-announce our skip frontier so replicas that missed a skip (or
        # joined the conversation late) can keep executing.
        frontier = self.next_own_slot
        known = self.skip_below[self.index]
        if frontier > known:
            # We have not used slots in [known-aligned, frontier): they are
            # live proposals, not skips, so only announce genuinely unused
            # ranges (handled by _skip_up_to); here we just retransmit.
            pass
        now = self.now
        for slot, sent_at in list(self._retransmit.items()):
            if now - sent_at < self.retransmit_timeout:
                continue
            entry = self.slots.get(slot)
            if entry is None or entry.committed or entry.quorum is None:
                self._retransmit.pop(slot, None)
                continue
            self._retransmit[slot] = now
            behind = [p for p in self.peers if p not in entry.quorum.acks]
            if behind:
                self.multicast(
                    behind, MAccept(slot=slot, command=entry.command, request=entry.request)
                )
        self.set_timer(self.flush_interval, self._flush_tick)
