"""Latency-breakdown reports: measured spans next to the analytic model.

``breakdown_table`` prints per-request ``wQ / ts / DL / DQ`` rows from a
:class:`~repro.obs.tracing.Tracer`; ``model_comparison`` puts the measured
means side by side with a :class:`~repro.core.protocol_models.ProtocolModel`
prediction at a given arrival rate — the table the paper's dissection
argument is made of.
"""

from __future__ import annotations

from repro.obs.tracing import Tracer


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.4f}"


def breakdown_table(tracer: Tracer, limit: int = 10, since: float | None = None) -> str:
    """Per-request latency decomposition (milliseconds), newest first."""
    decompositions = tracer.breakdowns(since=since)
    lines = ["request latency breakdown (ms):"]
    header = f"{'':>4}  {'wQ':>9}  {'ts':>9}  {'DL':>9}  {'DQ':>9}  {'total':>9}"
    lines.append(header)
    for i, d in enumerate(decompositions[-limit:]):
        lines.append(
            f"{i:>4}  {_ms(d['wq'])}  {_ms(d['ts'])}  {_ms(d['dl'])}  "
            f"{_ms(d['dq'])}  {_ms(d['total'])}"
        )
    if not decompositions:
        lines.append("  (no completed spans with canonical events)")
        return "\n".join(lines)
    lines.append(
        f"{'mean':>4}  {_ms(_mean([d['wq'] for d in decompositions]))}  "
        f"{_ms(_mean([d['ts'] for d in decompositions]))}  "
        f"{_ms(_mean([d['dl'] for d in decompositions]))}  "
        f"{_ms(_mean([d['dq'] for d in decompositions]))}  "
        f"{_ms(_mean([d['total'] for d in decompositions]))}"
        f"   (n={len(decompositions)})"
    )
    return "\n".join(lines)


def model_comparison(tracer: Tracer, model, system_rate: float, since: float | None = None) -> str:
    """Measured means vs. a ``ProtocolModel`` prediction at ``system_rate``.

    The model's ``ts`` covers the *whole* round at the leader while the
    measured ``ts`` only includes processing on the reply path (the rest of
    the round's work is what the follower acks overlap with), so measured
    ``ts`` is expected to undershoot; ``wQ`` and ``DL + DQ`` are the
    directly comparable rows.
    """
    decompositions = tracer.breakdowns(since=since)
    measured = {
        "wQ": _mean([d["wq"] for d in decompositions]),
        "ts": _mean([d["ts"] for d in decompositions]),
        "DL+DQ": _mean([d["dl"] + d["dq"] for d in decompositions]),
        "total": _mean([d["total"] for d in decompositions]),
    }
    predicted = {
        "wQ": model.busy_node().wait_time(system_rate),
        "ts": model.round_service_time(),
        "DL+DQ": model.network_delay_ms() / 1e3,
        "total": model.latency_s(system_rate),
    }
    lines = [
        f"measured vs {model.name} model at {system_rate:.0f} req/s (ms, n={len(decompositions)}):",
        f"{'component':>9}  {'measured':>9}  {'model':>9}",
    ]
    for row in ("wQ", "ts", "DL+DQ", "total"):
        lines.append(f"{row:>9}  {_ms(measured[row])}  {_ms(predicted[row])}")
    return "\n".join(lines)
