"""Request lifecycle tracing on virtual time.

One :class:`Span` covers one client request, keyed by
``(client_address, request_id)`` — the same pair every protocol already
carries in ``ClientRequest``/``ClientReply``/``RequestInfo``, which is why
the runtime can stamp events without protocol cooperation.  The canonical
event sequence is::

    submit          client issues the request               (client, t0)
    server_enqueue  request hits a replica's CPU+NIC queue  (replica, t1)
    handler         the request's handler runs; the event   (replica, t2)
                    carries ``service`` = the queue
                    occupancy charged for the message,
                    so wQ = t2 - t1 - service
    quorum          protocol commit point (one-line         (replica, t3)
                    ``self.trace_mark(request)`` in the
                    protocol; see docs/WRITING_A_PROTOCOL.md)
    reply_sent      the serving replica queues the reply    (replica, t4)
    reply_recv      the client observes the reply           (client, t5)

Forwarded or retried requests repeat ``server_enqueue``/``handler`` once
per hop; the breakdown helpers use the serving pair (the last one at the
replica that sent the reply).  Every span ends exactly once: ``reply_recv``
on success, ``failed`` when the client gives up — the invariants the
property tests assert (no orphan spans, monotone timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

SpanKey = tuple[Hashable, int]


@dataclass
class SpanEvent:
    name: str
    t: float
    actor: Hashable
    service: float | None = None  # queue occupancy, on ``handler`` events

    def to_dict(self) -> dict:
        out = {"name": self.name, "t": self.t, "actor": str(self.actor)}
        if self.service is not None:
            out["service"] = self.service
        return out


@dataclass
class Span:
    """The life of one client request, in virtual time."""

    client: Hashable
    request_id: int
    op: str
    key: Any
    submitted_at: float
    events: list[SpanEvent] = field(default_factory=list)
    done: bool = False
    failed: bool = False

    @property
    def span_key(self) -> SpanKey:
        return (self.client, self.request_id)

    @property
    def completed_at(self) -> float | None:
        return self.events[-1].t if self.done and self.events else None

    def mark(self, name: str, t: float, actor: Hashable, service: float | None = None) -> None:
        self.events.append(SpanEvent(name, t, actor, service))

    def first(self, name: str) -> SpanEvent | None:
        for event in self.events:
            if event.name == name:
                return event
        return None

    def last(self, name: str, before: float | None = None) -> SpanEvent | None:
        found = None
        for event in self.events:
            if event.name == name and (before is None or event.t <= before):
                found = event
        return found

    def monotone(self) -> bool:
        return all(a.t <= b.t for a, b in zip(self.events, self.events[1:]))

    def breakdown(self) -> dict[str, float] | None:
        """Map the span onto the paper's ``wQ / ts / DL / DQ`` decomposition.

        Uses the serving hop: the last ``server_enqueue``/``handler`` pair
        emitted by the replica that sent the reply.  Returns ``None`` for
        spans missing the canonical events (failed or un-annotated
        protocols).

        - ``DL``  = client->replica wire time + reply wire time,
        - ``wQ``  = queue wait of the request message at the replica,
        - ``ts``  = the request's own service charge plus commit-to-reply
          processing (execution + reply serialization queueing),
        - ``DQ``  = handler -> quorum: the replication round trip.
        """
        if not self.done or self.failed:
            return None
        reply_sent = self.last("reply_sent")
        reply_recv = self.last("reply_recv")
        if reply_sent is None or reply_recv is None:
            return None
        enqueue = self.last("server_enqueue", before=reply_sent.t)
        handler = self.last("handler", before=reply_sent.t)
        quorum = self.last("quorum", before=reply_sent.t)
        if enqueue is None or handler is None or handler.service is None:
            return None
        if handler.t < enqueue.t:  # unmatched pair (e.g. retry mid-flight)
            return None
        t0 = self.submitted_at
        wq = max(0.0, handler.t - enqueue.t - handler.service)
        dl = max(0.0, enqueue.t - t0) + max(0.0, reply_recv.t - reply_sent.t)
        dq = max(0.0, quorum.t - handler.t) if quorum is not None else 0.0
        commit_at = quorum.t if quorum is not None else handler.t
        ts = handler.service + max(0.0, reply_sent.t - commit_at)
        return {
            "wq": wq,
            "ts": ts,
            "dl": dl,
            "dq": dq,
            "total": reply_recv.t - t0,
        }

    def to_dict(self) -> dict:
        return {
            "client": str(self.client),
            "request_id": self.request_id,
            "op": self.op,
            "key": str(self.key),
            "submitted_at": self.submitted_at,
            "done": self.done,
            "failed": self.failed,
            "events": [event.to_dict() for event in self.events],
        }


class Tracer:
    """Collects spans.  Disabled by default; every hook checks ``enabled``
    first, so the tracing seams cost one attribute load when off."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.open: dict[SpanKey, Span] = {}
        self.finished: list[Span] = []
        self.unmatched_events = 0

    # -- lifecycle --------------------------------------------------------

    def begin(self, client: Hashable, request_id: int, t: float, op: str, key: Any) -> None:
        if not self.enabled:
            return
        span = Span(client, request_id, op, key, t)
        span.mark("submit", t, client)
        self.open[span.span_key] = span

    def event(
        self,
        span_key: SpanKey,
        name: str,
        t: float,
        actor: Hashable,
        service: float | None = None,
    ) -> None:
        if not self.enabled:
            return
        span = self.open.get(span_key)
        if span is None:
            # Late messages for an already-completed request (duplicate
            # replies, retries racing the original) are normal; count them
            # so the property tests can assert nothing *else* goes missing.
            self.unmatched_events += 1
            return
        span.mark(name, t, actor, service)

    def end(self, span_key: SpanKey, t: float, actor: Hashable) -> None:
        if not self.enabled:
            return
        span = self.open.pop(span_key, None)
        if span is None:
            self.unmatched_events += 1
            return
        span.mark("reply_recv", t, actor)
        span.done = True
        self.finished.append(span)

    def fail(self, span_key: SpanKey, t: float, actor: Hashable) -> None:
        if not self.enabled:
            return
        span = self.open.pop(span_key, None)
        if span is None:
            self.unmatched_events += 1
            return
        span.mark("gave_up", t, actor)
        span.done = True
        span.failed = True
        self.finished.append(span)

    # -- queries ----------------------------------------------------------

    @property
    def open_count(self) -> int:
        return len(self.open)

    def completed(self) -> list[Span]:
        return [span for span in self.finished if not span.failed]

    def breakdowns(self, since: float | None = None) -> list[dict[str, float]]:
        out = []
        for span in self.finished:
            if since is not None and span.submitted_at < since:
                continue
            decomposition = span.breakdown()
            if decomposition is not None:
                out.append(decomposition)
        return out

    def to_json(self) -> dict:
        return {
            "finished": [span.to_dict() for span in self.finished],
            "open": [span.to_dict() for span in self.open.values()],
            "unmatched_events": self.unmatched_events,
        }
