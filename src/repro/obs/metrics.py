"""Per-node metric counters and gauges.

Counters are fed by :meth:`repro.sim.network.Network.transit` (one call per
message, a few dict updates — cheap enough to stay always-on), gauges are
read from each node's :class:`~repro.sim.server.Server`:

==========================  ====================================================
metric                      meaning
==========================  ====================================================
``sent[type]``              messages of ``type`` put on the wire by this node
``received[type]``          messages of ``type`` delivered to this node
``dropped[type]``           messages lost to faults (charged to the sender)
``bytes_sent/received``     NIC byte counters (same attribution)
``busy_seconds``            CPU+NIC queue occupancy (utilization = busy/window)
``jobs_completed``          jobs drained from the CPU+NIC queue
``mean_wait_s``             average queueing delay across those jobs
``mean_queue_depth``        time-averaged CPU+NIC queue length
``max_queue_depth``         high-water queue length
``queue_samples``           ``(t, depth)`` series, recorded while sampling
==========================  ====================================================

Message counts are keyed by the message dataclass name (``"P2a"``,
``"ClientRequest"``, ...), which is what makes the Table-2 role accounting
assertable: the per-request delta of ``sent``/``received`` at the busiest
node must match :class:`repro.core.service.RoundWork`.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:
    from repro.sim.clock import EventLoop
    from repro.sim.server import Server


class NodeMetrics:
    """Counters and gauges for one network endpoint."""

    __slots__ = (
        "sent",
        "received",
        "dropped",
        "bytes_sent",
        "bytes_received",
        "queue_samples",
    )

    def __init__(self) -> None:
        self.sent: Counter = Counter()
        self.received: Counter = Counter()
        self.dropped: Counter = Counter()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.queue_samples: list[tuple[float, int]] = []

    def messages_sent(self) -> int:
        return sum(self.sent.values())

    def messages_received(self) -> int:
        return sum(self.received.values())

    def to_dict(self) -> dict:
        return {
            "sent": dict(self.sent),
            "received": dict(self.received),
            "dropped": dict(self.dropped),
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
        }


class MetricsHub:
    """All per-node metrics of one cluster, keyed by endpoint address."""

    def __init__(self) -> None:
        self._nodes: dict[Hashable, NodeMetrics] = {}
        self._servers: dict[Hashable, "Server"] = {}

    def node(self, address: Hashable) -> NodeMetrics:
        metrics = self._nodes.get(address)
        if metrics is None:
            metrics = NodeMetrics()
            self._nodes[address] = metrics
        return metrics

    @property
    def nodes(self) -> dict[Hashable, NodeMetrics]:
        return dict(self._nodes)

    def attach_server(self, address: Hashable, server: "Server") -> None:
        """Let the hub read busy-time and queue gauges for ``address``."""
        self._servers[address] = server

    def server_of(self, address: Hashable) -> "Server | None":
        return self._servers.get(address)

    # -- network feed (called once per message) -------------------------

    def on_sent(self, src: Hashable, type_name: str, size_bytes: int) -> None:
        metrics = self.node(src)
        metrics.sent[type_name] += 1
        metrics.bytes_sent += size_bytes

    def on_received(self, dst: Hashable, type_name: str, size_bytes: int) -> None:
        metrics = self.node(dst)
        metrics.received[type_name] += 1
        metrics.bytes_received += size_bytes

    def on_dropped(self, src: Hashable, type_name: str, size_bytes: int) -> None:
        self.node(src).dropped[type_name] += 1

    # -- gauges ----------------------------------------------------------

    def sample_queues(self, now: float) -> None:
        """Record ``(now, queue depth)`` for every attached server."""
        for address, server in self._servers.items():
            self.node(address).queue_samples.append((now, server.queue_length))

    def busy_seconds(self) -> dict[Hashable, float]:
        """Current cumulative busy-time per attached server."""
        return {addr: srv.stats.busy_seconds for addr, srv in self._servers.items()}

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready per-node dump (cumulative since cluster start)."""
        out: dict = {}
        for address in set(self._nodes) | set(self._servers):
            entry = (
                self._nodes[address].to_dict() if address in self._nodes else NodeMetrics().to_dict()
            )
            server = self._servers.get(address)
            if server is not None:
                stats = server.stats
                entry.update(
                    busy_seconds=stats.busy_seconds,
                    jobs_completed=stats.jobs_completed,
                    mean_wait_s=stats.mean_wait(),
                    max_queue_depth=stats.max_queue_length,
                )
            out[str(address)] = entry
        return out


class WindowObservation:
    """Measurement-window view of a hub: utilization and queue depth.

    Benchmarks arm one of these before running: at ``warmup_end`` it
    snapshots each server's cumulative busy-time and queue-area integral
    (via :meth:`repro.sim.server.ServerStats.queue_area`), and — when
    ``samples > 0`` — schedules periodic queue-depth sampling across the
    window.  After the run, :meth:`snapshot` reports per-node utilization
    ``rho`` and mean queue depth *for the window only*, which is what the
    M/D/1 cross-checks need.
    """

    def __init__(
        self,
        hub: MetricsHub,
        loop: "EventLoop",
        warmup_end: float,
        end: float,
        samples: int = 0,
    ) -> None:
        self.hub = hub
        self.warmup_end = warmup_end
        self.end = end
        self._busy_base: dict[Hashable, float] = {}
        self._area_base: dict[Hashable, float] = {}
        loop.call_at(warmup_end, self._capture_baseline)
        if samples > 0 and end > warmup_end:
            step = (end - warmup_end) / samples
            for i in range(1, samples + 1):
                at = warmup_end + i * step
                loop.call_at(at, self._sample, at)

    def _capture_baseline(self) -> None:
        for address, server in self.hub._servers.items():
            server.touch_queue_area()
            self._busy_base[address] = server.stats.busy_seconds
            self._area_base[address] = server.stats.queue_area

    def _sample(self, at: float) -> None:
        self.hub.sample_queues(at)

    def snapshot(self) -> dict:
        """Per-node window metrics plus the cumulative counters."""
        window = max(self.end - self.warmup_end, 1e-12)
        out = self.hub.snapshot()
        for address, server in self.hub._servers.items():
            server.touch_queue_area()
            stats = server.stats
            busy = stats.busy_seconds - self._busy_base.get(address, 0.0)
            area = stats.queue_area - self._area_base.get(address, 0.0)
            entry = out.setdefault(str(address), {})
            entry["window_s"] = window
            entry["utilization"] = min(1.0, max(0.0, busy / window))
            entry["mean_queue_depth"] = max(0.0, area / window)
            samples = self.hub.node(address).queue_samples
            if samples:
                entry["queue_samples"] = [(t, d) for t, d in samples]
        return out

    def utilization(self, address: Hashable) -> float:
        server = self.hub.server_of(address)
        if server is None:
            return 0.0
        window = max(self.end - self.warmup_end, 1e-12)
        busy = server.stats.busy_seconds - self._busy_base.get(address, 0.0)
        return busy / window
