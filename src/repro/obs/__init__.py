"""Observability: per-node metrics and request lifecycle tracing.

The paper's method is *dissection* — attributing latency to queue wait
``wQ``, service time ``ts``, and network delay ``DL + DQ``, and deriving
capacity from per-role message counts (Table 2).  This package makes those
quantities observable in the simulator so they can be asserted against
:mod:`repro.core.protocol_models` instead of eyeballed:

- :class:`MetricsHub` / :class:`NodeMetrics` — always-on counters of
  messages sent/received/dropped by type, bytes on the NIC, plus busy-time
  and queue-depth gauges read from the per-node
  :class:`~repro.sim.server.Server` (``sim/network.py`` feeds the counters,
  ``sim/cluster.py`` owns the hub);
- :class:`Tracer` / :class:`Span` — opt-in request lifecycle tracing
  (client submit -> server enqueue -> handler -> quorum -> reply) with
  virtual timestamps, wired through ``paxi/client.py`` and
  ``paxi/node.py``; protocols annotate their commit point with one line
  (``self.trace_mark(request)``);
- :class:`ObsCapture` — a context manager that collects the observability
  state of every cluster built inside it, which is how the experiments CLI
  ``--trace`` flag reaches deployments constructed deep inside a driver;
- :mod:`repro.obs.report` — latency-breakdown tables, side by side with
  the analytic model.

See ``docs/OBSERVABILITY.md`` for the metric names and the span model.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsHub, NodeMetrics, WindowObservation
from repro.obs.tracing import Span, Tracer


class Observability:
    """Per-cluster bundle: one metrics hub plus one tracer."""

    def __init__(self, trace: bool = False) -> None:
        self.metrics = MetricsHub()
        self.tracer = Tracer(enabled=trace)

    def snapshot(self) -> dict:
        """JSON-ready dump of counters, gauges, and completed spans."""
        out = {"metrics": self.metrics.snapshot()}
        if self.tracer.enabled:
            out["trace"] = self.tracer.to_json()
        return out


class ObsCapture:
    """Collects the :class:`Observability` of every cluster built while
    active.  Entering installs the capture globally; clusters register
    themselves at construction (see ``Cluster.__init__``), so drivers need
    no plumbing::

        with ObsCapture(trace=True) as capture:
            run_experiment()
        for obs in capture.observed:
            ...
    """

    def __init__(self, trace: bool = True) -> None:
        self.trace = trace
        self.observed: list[Observability] = []
        self._previous: ObsCapture | None = None

    def adopt(self, obs: Observability) -> None:
        obs.tracer.enabled = self.trace
        self.observed.append(obs)

    def __enter__(self) -> "ObsCapture":
        global _ACTIVE_CAPTURE
        self._previous = _ACTIVE_CAPTURE
        _ACTIVE_CAPTURE = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE_CAPTURE
        _ACTIVE_CAPTURE = self._previous
        self._previous = None


_ACTIVE_CAPTURE: ObsCapture | None = None


def active_capture() -> ObsCapture | None:
    """The capture installed by the innermost ``with ObsCapture():``, if any."""
    return _ACTIVE_CAPTURE


__all__ = [
    "MetricsHub",
    "NodeMetrics",
    "Observability",
    "ObsCapture",
    "Span",
    "Tracer",
    "WindowObservation",
    "active_capture",
]
