"""The sharded multi-group runtime: N deployments, one key space.

A :class:`ShardedCluster` instantiates one full
:class:`~repro.paxi.deployment.Deployment` per shard — each an independent
consensus group with its own replicas, network, and seeded randomness
(``Config.for_shard`` derives the per-group config, spreading initial
leaders across node positions) — while every group schedules on **one
shared event loop**, so all groups advance on a single virtual-time axis
and the merged operation history carries globally comparable timestamps.

Commands route through a pluggable key→shard placement map
(:mod:`repro.shard.placement`); clients and sessions created here are
routing facades that lazily open one real per-group client per shard they
touch.  Cross-shard multi-key transactions are layered on top by
:mod:`repro.shard.txn`; bucket rebalancing migrates a hash slot between
groups at runtime (freeze → drain → copy chains → flip placement →
flush), mirroring slot migration in production hash-sharded stores.

See ``docs/SHARDING.md`` for the full architecture.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Hashable

from repro.errors import ConfigError, PlacementError
from repro.paxi.deployment import Deployment, ReplicaFactory
from repro.paxi.history import Operation
from repro.paxi.message import Command
from repro.sim.clock import EventLoop
from repro.shard.placement import HashPlacement, ShardSpec
from repro.shard.txn import recover_transactions

if TYPE_CHECKING:
    from repro.paxi.client import Client
    from repro.paxi.ids import NodeID
    from repro.paxi.session import SessionOptions
    from repro.shard.session import ShardedSession


class _RoutedClient:
    """A `Client`-shaped facade that routes each command to its key's shard.

    Sessions and the benchmarker treat it exactly like a
    :class:`~repro.paxi.client.Client` — ``invoke`` / ``attempts`` /
    ``abandoned`` / ``completed`` / ``failed`` — while underneath it lazily
    opens one real per-group client (co-located at the same site) per shard
    it touches.  With one shard it degenerates to a passthrough around a
    single group client.
    """

    def __init__(self, cluster: "ShardedCluster", site: str, zone: int | None) -> None:
        self.cluster = cluster
        self.site = site
        self._zone = zone
        self.address = ("shard-client", next(cluster._client_ids))
        self._per_shard: dict[int, "Client"] = {}
        self._issued: dict[int, tuple["Client", int]] = {}
        self._next_request_id = 0
        self._retry_timeout: float | None = None
        self._max_attempts: int | None = None

    # Retry knobs: the benchmarker/session set them once; forward to every
    # per-shard client, including ones opened later.
    @property
    def retry_timeout(self) -> float | None:
        return self._retry_timeout

    @retry_timeout.setter
    def retry_timeout(self, value: float | None) -> None:
        self._retry_timeout = value
        for client in self._per_shard.values():
            client.retry_timeout = value

    @property
    def max_attempts(self) -> int | None:
        return self._max_attempts

    @max_attempts.setter
    def max_attempts(self, value: int | None) -> None:
        self._max_attempts = value
        for client in self._per_shard.values():
            client.max_attempts = value

    def client_for_shard(self, shard: int) -> "Client":
        client = self._per_shard.get(shard)
        if client is None:
            client = self.cluster.group(shard).new_client(site=self.site)
            client.retry_timeout = self._retry_timeout
            client.max_attempts = self._max_attempts
            self._per_shard[shard] = client
        return client

    def invoke(
        self,
        command: Command,
        target: "NodeID | None" = None,
        on_done=None,
        record: bool = True,
        on_fail=None,
        deadline: float | None = None,
    ) -> int:
        self._next_request_id += 1
        request_id = self._next_request_id
        self.cluster._route_invoke(
            self, request_id, command, target, on_done, record, on_fail, deadline
        )
        return request_id

    def attempts(self, request_id: int) -> int:
        issued = self._issued.get(request_id)
        if issued is None:
            return 1  # still deferred behind a migrating bucket
        client, underlying = issued
        return client.attempts(underlying)

    def abandoned(self, request_id: int) -> bool:
        issued = self._issued.get(request_id)
        if issued is None:
            return False
        client, underlying = issued
        return client.abandoned(underlying)

    def failure_reason(self, request_id: int) -> str | None:
        issued = self._issued.get(request_id)
        if issued is None:
            return None  # still deferred behind a migrating bucket
        client, underlying = issued
        return client.failure_reason(underlying)

    @property
    def completed(self) -> int:
        return sum(c.completed for c in self._per_shard.values())

    @property
    def failed(self) -> int:
        return sum(c.failed for c in self._per_shard.values())

    @property
    def outstanding(self) -> int:
        return sum(c.outstanding for c in self._per_shard.values())

    # Fault-command passthroughs (the Session facade calls these through
    # ``deployment.crash`` etc., which ShardedCluster also provides).

    def shards_touched(self) -> list[int]:
        return sorted(self._per_shard)


class _MergedHistory:
    """Read-only union of the per-group operation histories.

    All groups share one event loop, so ``invoked_at`` / ``returned_at``
    are globally comparable and the merged history is a sound input for
    the (per-key) linearizability checker: every key's operations all come
    from whichever group(s) owned it.
    """

    def __init__(self, cluster: "ShardedCluster") -> None:
        self._cluster = cluster

    def _recorders(self):
        return [group.history for group in self._cluster.groups]

    @property
    def operations(self) -> list[Operation]:
        out: list[Operation] = []
        for recorder in self._recorders():
            out.extend(recorder.operations)
        out.sort(key=lambda op: op.invoked_at)
        return out

    def snapshot(self) -> list[Operation]:
        out: list[Operation] = []
        for recorder in self._recorders():
            out.extend(recorder.snapshot())
        out.sort(key=lambda op: op.invoked_at)
        return out

    def per_key(self) -> dict[Hashable, list[Operation]]:
        grouped: dict[Hashable, list[Operation]] = {}
        for operation in self.operations:
            grouped.setdefault(operation.key, []).append(operation)
        return grouped

    def latencies(self) -> list[float]:
        return [op.latency for op in self.operations]

    @property
    def in_flight(self) -> int:
        return sum(r.in_flight for r in self._recorders())

    def __len__(self) -> int:
        return sum(len(r) for r in self._recorders())


@dataclass
class _Migration:
    """One in-flight bucket rebalance."""

    bucket: int
    src: int
    dst: int
    started_at: float
    deferred: list[tuple] = field(default_factory=list)
    deadline_handle: Any = None
    forced: bool = False


@dataclass(frozen=True)
class RebalanceRecord:
    """A completed bucket move, for tests and traces."""

    bucket: int
    src: int
    dst: int
    started_at: float
    finished_at: float
    keys_moved: int
    deferred_ops: int
    forced: bool


class ShardedCluster:
    """N consensus groups behind one routed key space."""

    def __init__(self, config, spec: ShardSpec | None = None) -> None:
        if spec is not None:
            config = replace(config, shards=spec)
        self.spec = config.shards if config.shards is not None else ShardSpec()
        if config.shards is None:
            config = replace(config, shards=self.spec)
        self.config = config
        self.placement = self.spec.build()
        self.loop = EventLoop()
        self.groups = [
            Deployment(config.for_shard(index), loop=self.loop)
            for index in range(self.spec.count)
        ]
        self._client_ids = itertools.count(1)
        self._client_seq = 0
        self._txn_ids = itertools.count(1)
        #: Coordinator write-ahead logs: txn_id -> list of records.  Owned
        #: here (not by any one group) because the coordinator is a client
        #: and its durable log must survive the coordinator's crash.
        self.txn_wal: dict[str, list[tuple]] = {}
        self._migrations: dict[int, _Migration] = {}
        self._inflight: dict[int, set[tuple["Client", int]]] = {}
        # Only hash-style placements can rebalance, and a single group has
        # nowhere to move a bucket — skip in-flight tracking entirely then
        # (keeps the one-shard fast path identical to a plain deployment).
        self._track = self.spec.count > 1 and isinstance(self.placement, HashPlacement)
        self.rebalances: list[RebalanceRecord] = []

    # ------------------------------------------------------------------
    # Construction / lifecycle
    # ------------------------------------------------------------------

    def start(self, factory: ReplicaFactory) -> "ShardedCluster":
        for group in self.groups:
            group.start(factory)
        return self

    @property
    def shard_count(self) -> int:
        return self.spec.count

    def group(self, shard: int) -> Deployment:
        if not 0 <= shard < len(self.groups):
            raise PlacementError(
                f"unknown shard {shard}; this cluster has shards "
                f"0..{len(self.groups) - 1}"
            )
        return self.groups[shard]

    def shard_of(self, key: Hashable) -> int:
        return self.placement.shard_of(key)

    #: The benchmarker reaches ``deployment.cluster`` for the loop, seeded
    #: streams, and observability; group 0 is the representative (the loop
    #: is shared with every other group anyway).
    @property
    def cluster(self):
        return self.groups[0].cluster

    @property
    def history(self) -> _MergedHistory:
        return _MergedHistory(self)

    # ------------------------------------------------------------------
    # Clients and sessions
    # ------------------------------------------------------------------

    def new_client(self, site: str | None = None, zone: int | None = None) -> _RoutedClient:
        """A routing client facade (see :class:`_RoutedClient`)."""
        if site is None and zone is not None:
            site = self.config.zone_site(zone)
        if site is None:
            sites = self.config.topology.sites
            site = sites[self._client_seq % len(sites)]
        if site not in self.config.topology.sites:
            raise ConfigError(f"unknown client site {site!r}")
        self._client_seq += 1
        return _RoutedClient(self, site, zone)

    def new_session(
        self,
        options: "SessionOptions | None" = None,
        site: str | None = None,
        zone: int | None = None,
        max_wait: float | None = None,
        consistency: str | None = None,
    ) -> "ShardedSession":
        from repro.shard.session import ShardedSession

        return ShardedSession(
            self,
            options,
            site=site,
            zone=zone,
            max_wait=max_wait,
            consistency=consistency,
        )

    def next_txn_id(self) -> str:
        txn_id = f"txn-{next(self._txn_ids)}"
        self.txn_wal[txn_id] = []
        return txn_id

    # ------------------------------------------------------------------
    # Routing (with migration freeze/defer)
    # ------------------------------------------------------------------

    def _route_invoke(
        self, rc, request_id, command, target, on_done, record,
        on_fail=None, deadline=None,
    ) -> None:
        if self._migrations:
            migration = self._migrations.get(self.placement.bucket_of(command.key))
            if migration is not None:
                # The key's bucket is mid-move: admit nothing new until the
                # flip, then replay in arrival order.  Costs latency, never
                # correctness.
                migration.deferred.append(
                    (rc, request_id, command, target, on_done, record, on_fail, deadline)
                )
                return
        self._issue(rc, request_id, command, target, on_done, record, on_fail, deadline)

    def _issue(
        self, rc, request_id, command, target, on_done, record,
        on_fail=None, deadline=None,
    ) -> None:
        shard = self.placement.shard_of(command.key)
        client = rc.client_for_shard(shard)
        if not self._track:
            underlying = client.invoke(
                command, target, on_done, record, on_fail=on_fail, deadline=deadline
            )
            rc._issued[request_id] = (client, underlying)
            return
        bucket = self.placement.bucket_of(command.key)
        entry: list = [client, None]

        def done(reply, latency):
            self._inflight.get(bucket, set()).discard((entry[0], entry[1]))
            if on_done is not None:
                on_done(reply, latency)
            migration = self._migrations.get(bucket)
            if migration is not None and not self._inflight.get(bucket):
                self._finish_rebalance(bucket)

        def failed(reason, latency):
            self._inflight.get(bucket, set()).discard((entry[0], entry[1]))
            if on_fail is not None:
                on_fail(reason, latency)
            migration = self._migrations.get(bucket)
            if migration is not None and not self._inflight.get(bucket):
                self._finish_rebalance(bucket)

        underlying = client.invoke(
            command, target, done, record, on_fail=failed, deadline=deadline
        )
        entry[1] = underlying
        rc._issued[request_id] = (client, underlying)
        self._inflight.setdefault(bucket, set()).add((client, underlying))

    # ------------------------------------------------------------------
    # Bucket rebalancing
    # ------------------------------------------------------------------

    def rebalance(
        self,
        bucket: int,
        dst: int,
        at: float | None = None,
        drain_timeout: float = 0.25,
    ) -> None:
        """Move hash ``bucket`` (and every key in it) to shard ``dst``.

        Freeze → drain → copy → flip → flush: new operations for the
        bucket are deferred, in-flight ones get ``drain_timeout`` virtual
        seconds to finish (stragglers are abandoned — their open-interval
        history records keep the checker sound), then each key's longest
        committed chain is adopted into the destination group
        (``Deployment.seed_chain``), the placement map flips, and deferred
        operations replay in order against the new owner.
        """
        if not isinstance(self.placement, HashPlacement):
            raise PlacementError(
                f"{type(self.placement).__name__} cannot rebalance buckets; "
                "use hash or ownership placement"
            )
        if not 0 <= bucket < self.spec.buckets:
            raise PlacementError(
                f"bucket {bucket} out of range: the ring has {self.spec.buckets} buckets"
            )
        self.spec._check_shard(dst, f"rebalance of bucket {bucket}")
        when = self.now if at is None else at
        self.loop.call_at(when, self._begin_rebalance, bucket, dst, drain_timeout)

    def _begin_rebalance(self, bucket: int, dst: int, drain_timeout: float) -> None:
        if bucket in self._migrations:
            return  # already moving; a second request is a no-op
        src = self.placement.shard_of_bucket(bucket)
        if src == dst:
            return
        migration = _Migration(bucket, src, dst, started_at=self.now)
        self._migrations[bucket] = migration
        if not self._inflight.get(bucket):
            self._finish_rebalance(bucket)
            return
        migration.deadline_handle = self.loop.call_after(
            drain_timeout, self._force_rebalance, bucket
        )

    def _force_rebalance(self, bucket: int) -> None:
        migration = self._migrations.get(bucket)
        if migration is None:
            return
        migration.forced = True
        for client, underlying in list(self._inflight.get(bucket, ())):
            client.abandon(underlying)
        self._inflight[bucket] = set()
        self._finish_rebalance(bucket)

    def _finish_rebalance(self, bucket: int) -> None:
        migration = self._migrations.get(bucket)
        if migration is None:
            return
        if migration.deadline_handle is not None:
            migration.deadline_handle.cancel()
            migration.deadline_handle = None
        src_group = self.groups[migration.src]
        dst_group = self.groups[migration.dst]
        # Longest committed chain per key across the source replicas: the
        # chain a quorum decided is on every up-to-date replica; laggards
        # have prefixes, so "longest" is the decided history.
        chains: dict[Hashable, list] = {}
        for replica in src_group.replicas.values():
            for key in replica.store.keys():
                if self.placement.bucket_of(key) != bucket:
                    continue
                values = replica.store.history(key)
                if len(values) > len(chains.get(key, ())):
                    chains[key] = values
        for key, values in chains.items():
            dst_group.seed_chain(key, values)
        self.placement.move_bucket(bucket, migration.dst)
        del self._migrations[bucket]
        self.rebalances.append(
            RebalanceRecord(
                bucket=bucket,
                src=migration.src,
                dst=migration.dst,
                started_at=migration.started_at,
                finished_at=self.now,
                keys_moved=len(chains),
                deferred_ops=len(migration.deferred),
                forced=migration.forced,
            )
        )
        for deferred in migration.deferred:
            self._route_invoke(*deferred)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def recover_txns(self, max_wait: float = 5.0) -> list[tuple[str, str]]:
        """Finish orphaned transactions after a coordinator crash (see
        :func:`repro.shard.txn.recover_transactions`)."""
        recovery_client = self.new_client()

        def issue(command, cb, record=True):
            return recovery_client.invoke(command, on_done=cb, record=record)

        return recover_transactions(
            self.txn_wal, issue, self.run_for, lambda: self.now, max_wait=max_wait
        )

    # ------------------------------------------------------------------
    # Execution and verification
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.now

    def run_for(self, seconds: float) -> None:
        self.loop.run_until(self.loop.now + seconds)

    def run_until(self, deadline: float) -> None:
        self.loop.run_until(deadline)

    def drain(self, max_events: int | None = None) -> None:
        self.loop.run(max_events)

    def verify(self) -> tuple[bool, bool]:
        """Linearizability over the merged history + per-group consensus.

        Transaction atomicity is checked separately:
        :func:`repro.checkers.txn.check_txn_atomicity`.
        """
        from repro.checkers.consensus import check_deployment
        from repro.checkers.linearizability import check_history

        linearizable = check_history(self.history.snapshot()).ok
        consensus_ok = all(check_deployment(group).ok for group in self.groups)
        return (linearizable, consensus_ok)

    # ------------------------------------------------------------------
    # Fault injection: Session passthroughs address shard 0 by default;
    # the shard Nemesis targets groups directly via ``group(i)``.
    # ------------------------------------------------------------------

    def crash(self, node, duration=None, at=None, shard: int = 0) -> None:
        self.group(shard).crash(node, duration, at)

    def reboot(self, node, downtime: float = 0.05, at=None, shard: int = 0) -> None:
        self.group(shard).reboot(node, downtime, at)

    def wipe(self, node, downtime: float = 0.05, at=None, shard: int = 0) -> None:
        self.group(shard).wipe(node, downtime, at)

    def drop(self, src, dst, duration, at=None, shard: int = 0) -> None:
        self.group(shard).drop(src, dst, duration, at)

    def slow(self, src, dst, duration, at=None, shard: int = 0) -> None:
        self.group(shard).slow(src, dst, duration, at)

    def flaky(self, src, dst, duration, probability: float = 0.5, at=None, shard: int = 0) -> None:
        self.group(shard).flaky(src, dst, duration, probability, at)
