"""Multi-group (sharded) runtime: N consensus groups behind one key space.

``repro.shard`` scales the single-group runtime horizontally: a
:class:`~repro.shard.cluster.ShardedCluster` instantiates one
:class:`~repro.paxi.deployment.Deployment` per shard, routes every command
through a pluggable key→shard :mod:`placement <repro.shard.placement>` map,
and layers two-phase commit over the groups for cross-shard multi-key
transactions (:mod:`repro.shard.txn`).  See ``docs/SHARDING.md``.

Only :mod:`repro.shard.placement` is imported eagerly — it is a leaf module
that ``repro.paxi.config`` depends on for the ``Config.shards`` schema; the
runtime modules import ``repro.paxi`` back and therefore load lazily.
"""

from __future__ import annotations

from repro.shard.placement import (  # noqa: F401  (re-exported)
    HashPlacement,
    OwnershipPlacement,
    PlacementMap,
    RangePlacement,
    ShardSpec,
    lock_key,
    routing_key,
)

_LAZY = {
    "ShardedCluster": ("repro.shard.cluster", "ShardedCluster"),
    "ShardedSession": ("repro.shard.session", "ShardedSession"),
    "TxnResult": ("repro.shard.txn", "TxnResult"),
    "ShardNemesis": ("repro.shard.nemesis", "ShardNemesis"),
}

__all__ = [
    "HashPlacement",
    "OwnershipPlacement",
    "PlacementMap",
    "RangePlacement",
    "ShardSpec",
    "ShardedCluster",
    "ShardedSession",
    "ShardNemesis",
    "TxnResult",
    "lock_key",
    "routing_key",
]


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    return getattr(module, target[1])
