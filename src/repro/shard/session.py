"""Session facade over a sharded cluster.

A :class:`ShardedSession` *is* a :class:`~repro.paxi.session.Session` —
same ``put``/``get``/``txn``/``execute`` surface, same
:class:`~repro.paxi.session.SessionOptions` — except its client is the
cluster's routing facade, so every command lands on its key's consensus
group, and ``txn`` runs two-phase commit across groups instead of through
one log.  Code written against the Session API moves to a sharded cluster
by changing only the constructor:

    session = ShardedCluster(config).start(MultiPaxos).new_session()

``SessionOptions.target`` still pins a replica, interpreted *within the
key's group* (every group shares the same node-ID scheme).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.paxi.session import Session, SessionOptions

if TYPE_CHECKING:
    from repro.shard.cluster import ShardedCluster


class ShardedSession(Session):
    """The Session API, routed across a :class:`ShardedCluster`."""

    def __init__(
        self,
        cluster: "ShardedCluster",
        options: SessionOptions | None = None,
        site: str | None = None,
        zone: int | None = None,
        max_wait: float | None = None,
        consistency: str | None = None,
    ) -> None:
        # Session.__init__ calls ``cluster.new_client(...)``, which hands
        # back the routing facade; everything else composes unchanged.
        super().__init__(
            cluster,
            options,
            site=site,
            zone=zone,
            max_wait=max_wait,
            consistency=consistency,
        )
        self.cluster: "ShardedCluster" = cluster

    def _txn_backend(self):
        if self._txn_runtime is None:
            from repro.shard.txn import ShardedTxnRuntime

            self._txn_runtime = ShardedTxnRuntime(
                self.cluster, site=self.options.site, zone=self.options.zone
            )
        return self._txn_runtime
