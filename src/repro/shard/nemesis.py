"""Chaos for sharded clusters: per-group faults plus bucket rebalances.

A :class:`ShardNemesis` composes one seeded
:class:`~repro.bench.nemesis.Nemesis` per consensus group — each group gets
its own quorum-preserving schedule, so every group stays able to make
progress while still suffering crashes, partitions, and link faults — and
adds the one fault class only a sharded cluster has: moving a placement
bucket between groups mid-run (``rebalance`` in
:data:`repro.bench.nemesis.ALL_KINDS`).

Rebalances exercise the drain/copy/flip path of
:meth:`repro.shard.cluster.ShardedCluster.rebalance` while transactions and
single-key traffic are in flight; the linearizability and 2PC-atomicity
checkers then audit the merged history as usual.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.bench.nemesis import KINDS, FaultEvent, Nemesis
from repro.paxi.ids import NodeID
from repro.shard.placement import HashPlacement

if TYPE_CHECKING:
    from repro.shard.cluster import ShardedCluster


@dataclass
class ShardNemesis:
    """Draws and applies a fault schedule across every group of a cluster.

    ``events`` faults are drawn *per group* (each group seeded
    independently from ``seed``), plus ``rebalances`` bucket moves spread
    over the horizon.  Every returned event carries its ``shard`` (or
    ``bucket``/``to_shard`` for rebalances) so a failing schedule replays
    exactly from the seed.
    """

    seed: int = 0
    horizon: float = 1.0
    events: int = 2
    rebalances: int = 1
    kinds: Sequence[str] = KINDS
    spare: Sequence[NodeID] = ()
    max_partition_size: int = 2
    max_duration: float = 0.4
    preserve_quorum: bool = True
    drain_timeout: float = 0.25

    def _group_nemesis(self, shard: int) -> Nemesis:
        return Nemesis(
            seed=self.seed + 7919 * (shard + 1),
            horizon=self.horizon,
            events=self.events,
            kinds=self.kinds,
            spare=self.spare,
            max_partition_size=self.max_partition_size,
            max_duration=self.max_duration,
            preserve_quorum=self.preserve_quorum,
        )

    def schedule_rebalances(self, cluster: "ShardedCluster") -> list[FaultEvent]:
        """Draw the bucket moves (without applying them).  Empty when the
        cluster has one group or a non-hash placement."""
        placement = cluster.placement
        if cluster.shard_count < 2 or not isinstance(placement, HashPlacement):
            return []
        rng = random.Random(self.seed * 6007 + 13)
        out: list[FaultEvent] = []
        for _ in range(self.rebalances):
            bucket = rng.randrange(cluster.spec.buckets)
            current = placement.shard_of_bucket(bucket)
            dst = (current + 1 + rng.randrange(cluster.shard_count - 1)) % cluster.shard_count
            start = rng.uniform(0.0, self.horizon)
            out.append(
                FaultEvent("rebalance", start, 0.0, bucket=bucket, to_shard=dst)
            )
        out.sort(key=lambda e: e.start)
        return out

    def unleash(self, cluster: "ShardedCluster", at: float | None = None) -> list[FaultEvent]:
        """Inject the full schedule into ``cluster``; returns the applied
        events (all groups merged, sorted by start time)."""
        base = cluster.now if at is None else at
        applied: list[FaultEvent] = []
        for shard, group in enumerate(cluster.groups):
            events = self._group_nemesis(shard).unleash(group, at=base)
            applied.extend(replace(event, shard=shard) for event in events)
        for event in self.schedule_rebalances(cluster):
            cluster.rebalance(
                event.bucket,
                event.to_shard,
                at=base + event.start,
                drain_timeout=self.drain_timeout,
            )
            applied.append(event)
        applied.sort(key=lambda e: e.start)
        return applied
