"""Cross-shard transactions: client-driven two-phase commit over groups.

Each consensus group is linearizable on its own; multi-key atomicity across
groups is layered on top, Percolator-style, by the **client** acting as the
2PC coordinator:

1. **Lock** — acquire a per-key lock with a CAS through each key's own
   consensus log (``lock_key(k)`` routes to ``k``'s group, so the lock and
   the data are ordered by the same log).  Locks cover every key the
   transaction touches and are taken one at a time in a global deterministic
   order — ``(shard, repr(key))`` — so two transactions contending for
   overlapping key sets cannot deadlock.
2. **Read** — with all locks held, read the snapshot.
3. **Commit** — write a COMMIT record to the coordinator's write-ahead log
   (the decision point), then apply every write through its group and
   release the locks.

A coordinator that dies mid-protocol leaves its locks held; recovery
(:func:`recover_transactions`, surfaced as
``ShardedCluster.recover_txns()``) replays the WAL: no COMMIT record means
the transaction aborts and its locks are released; a COMMIT record without
END is rolled forward — writes whose INVOKED record exists are re-applied
*without* re-recording them in the operation history (the original in-flight
invocation, with its open response interval, already accounts for them to
the linearizability checker), writes never invoked are applied and recorded
normally.

Lock traffic itself is invoked with ``record=False``: the linearizability
checker reasons about application keys, and the lock CAS round-trips are
protocol internals, exactly like a protocol's own leader-election messages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable, Mapping

from repro.errors import NoQuorum, TxnAborted
from repro.paxi.kvstore import CasFailed
from repro.paxi.message import Command
from repro.shard.placement import lock_key

if TYPE_CHECKING:
    from repro.paxi.deployment import Deployment
    from repro.shard.cluster import ShardedCluster

#: Coordinator-crash points a chaos plan can request, in protocol order.
CRASH_POINTS = (
    "after_first_lock",  # one lock held, the rest never acquired
    "after_locks",       # all locks held, nothing read or decided
    "before_commit",     # reads done, decision never logged -> must abort
    "after_commit",      # decision logged, no write applied -> roll forward
    "after_first_write", # decision logged, one write in flight
    "before_end",        # all writes applied, locks never released
)

#: How long a synchronous ``run()`` drives the simulation per step.
_STEP = 0.005


@dataclass
class TxnResult:
    """Outcome of one cross-shard transaction."""

    ok: bool
    txn_id: str
    values: dict[Hashable, Any] = field(default_factory=dict)
    latency_ms: float = 0.0
    reason: str | None = None

    def __bool__(self) -> bool:
        return self.ok


#: issue(command, on_done, record) -> request id, through some client.
Issuer = Callable[..., int]


class TxnCoordinator:
    """The 2PC state machine, driven entirely by reply callbacks.

    Asynchronous by construction so the benchmarker can keep many
    transactions in flight; :class:`SingleGroupTxnRuntime` /
    :class:`ShardedTxnRuntime` wrap it synchronously for sessions.

    ``crash_at`` (one of :data:`CRASH_POINTS`) makes the coordinator die at
    that point in the protocol: it stops reacting to replies, leaving locks
    and the WAL exactly as a real client crash would.
    """

    def __init__(
        self,
        issue: Issuer,
        wal_append: Callable[[tuple], None],
        shard_of: Callable[[Hashable], int],
        now: Callable[[], float],
        txn_id: str,
        writes: Mapping[Hashable, Any],
        reads: Iterable[Hashable],
        on_done: Callable[[TxnResult], None] | None = None,
        crash_at: str | None = None,
    ) -> None:
        if crash_at is not None and crash_at not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {crash_at!r}; expected one of {CRASH_POINTS}"
            )
        self._issue = issue
        self._wal = wal_append
        self._now = now
        self.txn_id = txn_id
        self.writes = dict(writes)
        self.reads = list(reads)
        self._on_done = on_done
        self.crash_at = crash_at
        # Global deterministic lock order: two transactions with overlapping
        # key sets acquire their common keys in the same order, so one of
        # them loses the CAS and aborts instead of deadlocking.
        self._lock_order = sorted(
            set(self.writes) | set(self.reads), key=lambda k: (shard_of(k), repr(k))
        )
        self._locked: list[Hashable] = []
        self._values: dict[Hashable, Any] = {}
        self._started = now()
        self.dead = False  # set by a crash plan: all callbacks go inert
        self.finished: TxnResult | None = None

    # ------------------------------------------------------------------
    # Protocol phases
    # ------------------------------------------------------------------

    def start(self) -> "TxnCoordinator":
        self._wal(("begin", self.txn_id, dict(self.writes), list(self.reads),
                   list(self._lock_order)))
        self._lock_next(0)
        return self

    def _crashed(self, point: str) -> bool:
        if self.crash_at == point:
            self.dead = True
            return True
        return False

    def _lock_next(self, index: int) -> None:
        if index == len(self._lock_order):
            if self._crashed("after_locks"):
                return
            self._read_phase()
            return
        key = self._lock_order[index]

        def on_reply(reply: Any, _latency: float) -> None:
            if self.dead:
                return
            if isinstance(reply.value, CasFailed):
                self._abort(f"lock-conflict:{key!r}:held-by:{reply.value.current!r}")
                return
            self._wal(("locked", key))
            self._locked.append(key)
            if index == 0 and self._crashed("after_first_lock"):
                return
            self._lock_next(index + 1)

        self._issue(Command.cas(lock_key(key), None, self.txn_id), on_reply, record=False)

    def _read_phase(self) -> None:
        if not self.reads:
            self._commit()
            return
        remaining = {"n": len(self.reads)}
        for key in self.reads:

            def on_reply(reply: Any, _latency: float, key: Hashable = key) -> None:
                if self.dead:
                    return
                self._values[key] = reply.value
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    self._commit()

            self._issue(Command.get(key), on_reply, record=True)

    def _commit(self) -> None:
        if self._crashed("before_commit"):
            return
        self._wal(("commit",))
        if self._crashed("after_commit"):
            return
        if not self.writes:
            self._release(ok=True)
            return
        items = sorted(self.writes.items(), key=lambda kv: repr(kv[0]))
        remaining = {"n": len(items)}

        def on_reply(_reply: Any, _latency: float) -> None:
            if self.dead:
                return
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._release(ok=True)

        for index, (key, value) in enumerate(items):
            self._wal(("invoked", key))
            self._issue(Command.put(key, value), on_reply, record=True)
            if index == 0 and self._crashed("after_first_write"):
                return

    def _release(self, ok: bool, reason: str | None = None) -> None:
        if ok and self._crashed("before_end"):
            return
        if not self._locked:
            self._finish(ok, reason)
            return
        remaining = {"n": len(self._locked)}

        def on_reply(_reply: Any, _latency: float) -> None:
            # A CasFailed here means the lock was already released or
            # re-taken (recovery racing a slow reply): nothing to do.
            if self.dead:
                return
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._finish(ok, reason)

        for key in self._locked:
            self._issue(
                Command.cas(lock_key(key), self.txn_id, None), on_reply, record=False
            )

    def _abort(self, reason: str) -> None:
        self._wal(("abort", reason))
        self._release(ok=False, reason=reason)

    def _finish(self, ok: bool, reason: str | None) -> None:
        self._wal(("end",))
        self.finished = TxnResult(
            ok=ok,
            txn_id=self.txn_id,
            values=dict(self._values),
            latency_ms=(self._now() - self._started) * 1e3,
            reason=reason,
        )
        if self._on_done is not None:
            self._on_done(self.finished)


# ----------------------------------------------------------------------
# Synchronous runtimes (Session.txn backends)
# ----------------------------------------------------------------------


class _SyncRuntime:
    """Shared synchronous driver: begin a coordinator, run the simulation
    until it resolves, translate failures into typed exceptions."""

    def run(
        self,
        writes: Mapping[Hashable, Any],
        reads: Iterable[Hashable],
        max_wait: float = 5.0,
    ) -> TxnResult:
        machine = self.begin(writes, reads)
        deadline = self._now() + max_wait
        while machine.finished is None and self._now() < deadline:
            self._run_for(min(_STEP, deadline - self._now()))
        if machine.finished is None:
            raise NoQuorum(
                f"transaction {machine.txn_id} did not resolve within "
                f"{max_wait}s of virtual time (participant group unreachable?)"
            )
        result = machine.finished
        if not result.ok:
            raise TxnAborted(result.txn_id, result.reason or "aborted")
        return result

    def begin(self, writes, reads, on_done=None, crash_at=None) -> TxnCoordinator:
        raise NotImplementedError

    def _now(self) -> float:
        raise NotImplementedError

    def _run_for(self, seconds: float) -> None:
        raise NotImplementedError


class SingleGroupTxnRuntime(_SyncRuntime):
    """``Session.txn`` backend for a plain (unsharded) deployment.

    Runs the identical coordinator state machine with every key on "shard
    0" — multi-key writes through one group still need the lock phase to be
    atomic, since other clients' commands interleave in the same log
    between the transaction's writes.
    """

    _ids = itertools.count(1)

    def __init__(
        self, deployment: "Deployment", site: str | None = None, zone: int | None = None
    ) -> None:
        self.deployment = deployment
        self.client = deployment.new_client(site=site, zone=zone)
        #: txn_id -> list of WAL records (the coordinator's durable log).
        self.wal: dict[str, list[tuple]] = {}

    def begin(self, writes, reads, on_done=None, crash_at=None) -> TxnCoordinator:
        txn_id = f"txn-g{next(self._ids)}"
        records = self.wal.setdefault(txn_id, [])

        def issue(command: Command, cb, record: bool = True) -> int:
            return self.client.invoke(command, on_done=cb, record=record)

        return TxnCoordinator(
            issue,
            records.append,
            shard_of=lambda _key: 0,
            now=lambda: self.deployment.now,
            txn_id=txn_id,
            writes=writes,
            reads=reads,
            on_done=on_done,
            crash_at=crash_at,
        ).start()

    def _now(self) -> float:
        return self.deployment.now

    def _run_for(self, seconds: float) -> None:
        self.deployment.run_for(seconds)


class ShardedTxnRuntime(_SyncRuntime):
    """``Session.txn`` backend over a :class:`ShardedCluster`: keys spread
    across their groups, the coordinator WAL lives on the cluster so
    ``recover_txns()`` can finish orphans after a coordinator crash."""

    def __init__(
        self,
        cluster: "ShardedCluster",
        site: str | None = None,
        zone: int | None = None,
        client=None,
    ) -> None:
        self.cluster = cluster
        # The benchmarker passes its driver's routing client so a closed
        # loop's transactions share that driver's retry budget and site.
        self.client = client if client is not None else cluster.new_client(site=site, zone=zone)

    def begin(self, writes, reads, on_done=None, crash_at=None) -> TxnCoordinator:
        txn_id = self.cluster.next_txn_id()
        records = self.cluster.txn_wal[txn_id]

        def issue(command: Command, cb, record: bool = True) -> int:
            return self.client.invoke(command, on_done=cb, record=record)

        return TxnCoordinator(
            issue,
            records.append,
            shard_of=self.cluster.shard_of,
            now=lambda: self.cluster.now,
            txn_id=txn_id,
            writes=writes,
            reads=reads,
            on_done=on_done,
            crash_at=crash_at,
        ).start()

    def _now(self) -> float:
        return self.cluster.now

    def _run_for(self, seconds: float) -> None:
        self.cluster.run_for(seconds)


# ----------------------------------------------------------------------
# Coordinator-crash recovery
# ----------------------------------------------------------------------


def recover_transactions(
    wal: Mapping[str, list[tuple]],
    issue: Issuer,
    run_for: Callable[[float], None],
    now: Callable[[], float],
    max_wait: float = 5.0,
) -> list[tuple[str, str]]:
    """Finish every transaction whose WAL has no END record.

    Returns ``[(txn_id, "rolled-forward" | "aborted"), ...]``.  Appends the
    records recovery writes (ABORT/END) to each transaction's WAL in place,
    so a second recovery pass is a no-op.
    """
    actions: list[tuple[str, str]] = []

    def sync(command: Command, record: bool) -> Any:
        done: dict[str, Any] = {}
        issue(command, lambda reply, _lat: done.setdefault("reply", reply), record=record)
        deadline = now() + max_wait
        while "reply" not in done and now() < deadline:
            run_for(min(_STEP, deadline - now()))
        if "reply" not in done:
            raise NoQuorum(
                f"recovery of {command.op}({command.key!r}) got no reply within "
                f"{max_wait}s of virtual time"
            )
        return done["reply"]

    for txn_id, records in wal.items():
        kinds = [r[0] for r in records]
        if "end" in kinds:
            continue
        begin = records[0]
        assert begin[0] == "begin", f"corrupt WAL for {txn_id}: {records[0]!r}"
        writes: dict = begin[2]
        locked = [r[1] for r in records if r[0] == "locked"]
        invoked = {r[1] for r in records if r[0] == "invoked"}
        if "commit" in kinds:
            # The decision was logged: roll the writes forward.  A write
            # whose INVOKED record exists may already have landed (its
            # original invocation is an open-interval history op), so the
            # re-apply stays out of the history; a never-invoked write is
            # applied and recorded like any fresh write.
            for key in sorted(writes, key=repr):
                sync(Command.put(key, writes[key]), record=key not in invoked)
            outcome = "rolled-forward"
        else:
            records.append(("abort", "coordinator-crash"))
            outcome = "aborted"
        for key in locked:
            # Expect-mismatch (already released / re-taken) is fine; the
            # CAS reply just carries CasFailed and nothing is appended.
            sync(Command.cas(lock_key(key), txn_id, None), record=False)
        records.append(("end",))
        actions.append((txn_id, outcome))
    return actions
