"""Key→shard placement maps for the multi-group runtime.

A :class:`ShardSpec` is the validated configuration (``Config.shards``)
describing how many consensus groups exist and how keys map onto them; a
:class:`PlacementMap` is the runtime object the router consults per key.

Three placements are supported:

- ``hash`` (default) — keys hash into a fixed ring of ``buckets``; buckets
  map onto shards round-robin.  The bucket is the unit of rebalancing: a
  shard-rebalance fault moves one bucket (and every key in it) to another
  group, mirroring how production hash-sharded stores move slots.
- ``range`` — integer keyspace split into contiguous ranges, each owned by
  a shard (lexicographic locality, scans); static, validated to cover the
  whole line with no gaps or overlaps.
- ``ownership`` — explicit per-key assignments over a hash fallback: the
  generalization of the single-object ownership VPaxos and WPaxos
  prototype (a master moves individual hot objects; everything else
  hashes).

Lock keys: the 2PC layer stores its per-key lock at ``lock_key(k)``; the
placement routes a lock key wherever ``k`` itself lives (see
:func:`routing_key`), so a data key and its lock are always decided by the
same consensus group — that is what makes the lock CAS and the data write
atomically ordered with respect to each other.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import PlacementError, UnknownShardError

#: Reserved key-space prefix for 2PC lock keys.
LOCK_PREFIX = "__txnlock__"

PLACEMENTS = ("hash", "range", "ownership")
LEADER_POLICIES = ("spread", "first")


def lock_key(key: Hashable) -> tuple:
    """The reserved key that holds ``key``'s transaction lock."""
    return (LOCK_PREFIX, key)


def routing_key(key: Hashable) -> Hashable:
    """The key placement decisions are made on: a lock key routes exactly
    like the data key it guards, so both live in the same group."""
    if isinstance(key, tuple) and len(key) == 2 and key[0] == LOCK_PREFIX:
        return key[1]
    return key


def stable_bucket(key: Hashable, buckets: int) -> int:
    """Deterministic, process-independent hash bucket for ``key``.

    ``hash()`` is randomized per process (PYTHONHASHSEED), which would
    break replayable schedules, so we CRC the key's repr instead.
    """
    return zlib.crc32(repr(key).encode()) % buckets


@dataclass(frozen=True)
class ShardSpec:
    """Validated description of the shard layout (``Config.shards``).

    - ``count`` — number of independent consensus groups;
    - ``placement`` — ``"hash"`` | ``"range"`` | ``"ownership"``;
    - ``buckets`` — hash-ring size (unit of rebalancing) for hash and
      ownership placements;
    - ``ranges`` — for range placement: ``((lo, hi, shard), ...)`` entries
      covering the whole integer line; ``lo=None`` means unbounded below,
      ``hi=None`` unbounded above, and entry ``i``'s ``hi`` must equal
      entry ``i+1``'s ``lo`` (half-open ``[lo, hi)`` intervals);
    - ``assignments`` — for ownership placement: explicit ``(key, shard)``
      pairs that override the hash fallback;
    - ``leaders`` — ``"spread"`` rotates each group's initial leader
      across node positions so per-shard leaders land on different nodes;
      ``"first"`` leaves every group on its default first node.
    """

    count: int = 1
    placement: str = "hash"
    buckets: int = 64
    ranges: tuple[tuple[Any, Any, int], ...] | None = None
    assignments: tuple[tuple[Hashable, int], ...] | None = None
    leaders: str = "spread"

    def __post_init__(self) -> None:
        if not isinstance(self.count, int) or isinstance(self.count, bool) or self.count < 1:
            raise PlacementError(
                f"shards.count must be a positive integer, got {self.count!r}"
            )
        if self.placement not in PLACEMENTS:
            raise PlacementError(
                f"unknown shards.placement {self.placement!r}; "
                f"expected one of {PLACEMENTS}"
            )
        if self.leaders not in LEADER_POLICIES:
            raise PlacementError(
                f"unknown shards.leaders policy {self.leaders!r}; "
                f"expected one of {LEADER_POLICIES}"
            )
        if not isinstance(self.buckets, int) or isinstance(self.buckets, bool) or self.buckets < 1:
            raise PlacementError(
                f"shards.buckets must be a positive integer, got {self.buckets!r}"
            )
        if self.placement in ("hash", "ownership") and self.buckets < self.count:
            raise PlacementError(
                f"shards.buckets ({self.buckets}) < shards.count ({self.count}): "
                "at least one bucket per shard is needed for every shard to "
                f"own keys; raise buckets to >= {self.count}"
            )
        if self.placement == "range":
            if not self.ranges:
                raise PlacementError(
                    "range placement needs a non-empty shards.ranges list, "
                    'e.g. [[null, 500, 0], [500, null, 1]]'
                )
            self._validate_ranges()
        elif self.ranges:
            raise PlacementError(
                f"shards.ranges only applies to placement='range', "
                f"not {self.placement!r}"
            )
        if self.placement == "ownership":
            for key, shard in self.assignments or ():
                self._check_shard(shard, f"assignment for key {key!r}")
        elif self.assignments:
            raise PlacementError(
                "shards.assignments only applies to placement='ownership', "
                f"not {self.placement!r}"
            )

    def _check_shard(self, shard: Any, where: str) -> None:
        if not isinstance(shard, int) or isinstance(shard, bool):
            raise UnknownShardError(
                f"{where} names shard {shard!r}, which is not an integer"
            )
        if not 0 <= shard < self.count:
            raise UnknownShardError(
                f"{where} names shard {shard}, but only shards 0..{self.count - 1} "
                f"exist (shards.count = {self.count})"
            )

    def _validate_ranges(self) -> None:
        assert self.ranges is not None
        for entry in self.ranges:
            if len(entry) != 3:
                raise PlacementError(
                    f"each range must be (lo, hi, shard), got {entry!r}"
                )
            lo, hi, shard = entry
            self._check_shard(shard, f"range {entry!r}")
            for bound, name in ((lo, "lo"), (hi, "hi")):
                if bound is not None and (
                    not isinstance(bound, int) or isinstance(bound, bool)
                ):
                    raise PlacementError(
                        f"range bound {name}={bound!r} in {entry!r} must be an "
                        "integer or null (unbounded)"
                    )
            if lo is not None and hi is not None and lo >= hi:
                raise PlacementError(
                    f"empty range {entry!r}: lo must be < hi (half-open [lo, hi))"
                )
        first, last = self.ranges[0], self.ranges[-1]
        if first[0] is not None:
            raise PlacementError(
                f"placement map does not cover keys below {first[0]}: the first "
                "range's lo must be null (unbounded below)"
            )
        if last[1] is not None:
            raise PlacementError(
                f"placement map does not cover keys at or above {last[1]}: the "
                "last range's hi must be null (unbounded above)"
            )
        for left, right in zip(self.ranges, self.ranges[1:]):
            if left[1] is None or right[0] is None or left[1] != right[0]:
                raise PlacementError(
                    f"ranges {left!r} and {right!r} must meet exactly "
                    "(previous hi == next lo); the placement map may not "
                    "leave gaps or overlap"
                )

    # ------------------------------------------------------------------
    # (De)serialization — the Config.from_dict "shards" section
    # ------------------------------------------------------------------

    @staticmethod
    def from_dict(payload: Any) -> "ShardSpec":
        if not isinstance(payload, dict):
            raise PlacementError(
                f"'shards' must be a mapping, got {type(payload).__name__}"
            )
        known = {"count", "placement", "buckets", "ranges", "assignments", "leaders"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise PlacementError(
                f"unknown shards key(s) {unknown}; valid keys are {sorted(known)}"
            )
        ranges = payload.get("ranges")
        if ranges is not None:
            try:
                ranges = tuple(tuple(entry) for entry in ranges)
            except TypeError as exc:
                raise PlacementError(
                    f"shards.ranges must be a list of [lo, hi, shard] triples, "
                    f"got {payload['ranges']!r}"
                ) from exc
        assignments = payload.get("assignments")
        if assignments is not None:
            if not isinstance(assignments, dict):
                raise PlacementError(
                    "shards.assignments must be a mapping of key -> shard, "
                    f"got {assignments!r}"
                )
            assignments = tuple(sorted(assignments.items(), key=lambda kv: repr(kv[0])))
        return ShardSpec(
            count=payload.get("count", 1),
            placement=payload.get("placement", "hash"),
            buckets=payload.get("buckets", 64),
            ranges=ranges,
            assignments=assignments,
            leaders=payload.get("leaders", "spread"),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "placement": self.placement,
            "buckets": self.buckets,
            "leaders": self.leaders,
        }
        if self.ranges is not None:
            out["ranges"] = [list(entry) for entry in self.ranges]
        if self.assignments is not None:
            out["assignments"] = {key: shard for key, shard in self.assignments}
        return out

    def build(self) -> "PlacementMap":
        """Instantiate the runtime placement map this spec describes."""
        if self.placement == "hash":
            return HashPlacement(self)
        if self.placement == "range":
            return RangePlacement(self)
        return OwnershipPlacement(self)


class PlacementMap:
    """Runtime key→shard resolver.  Subclasses implement :meth:`_locate`."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec

    def shard_of(self, key: Hashable) -> int:
        """The shard responsible for ``key`` (lock keys follow their data
        key — see :func:`routing_key`)."""
        return self._locate(routing_key(key))

    def _locate(self, key: Hashable) -> int:
        raise NotImplementedError

    # Rebalancing hooks (overridden where supported) -------------------

    def bucket_of(self, key: Hashable) -> int:
        raise PlacementError(
            f"{type(self).__name__} has no hash buckets; only hash and "
            "ownership placements support bucket rebalancing"
        )

    def move_bucket(self, bucket: int, shard: int) -> None:
        raise PlacementError(
            f"{type(self).__name__} is static: range placements cannot "
            "rebalance at runtime (recreate the cluster with new ranges)"
        )


class HashPlacement(PlacementMap):
    """Hash keys into ``buckets`` slots; slots map to shards round-robin.

    ``move_bucket`` re-homes one slot — the rebalancing primitive the
    shard Nemesis exercises.
    """

    def __init__(self, spec: ShardSpec) -> None:
        super().__init__(spec)
        self._bucket_to_shard = [b % spec.count for b in range(spec.buckets)]

    def bucket_of(self, key: Hashable) -> int:
        return stable_bucket(routing_key(key), self.spec.buckets)

    def _locate(self, key: Hashable) -> int:
        return self._bucket_to_shard[stable_bucket(key, self.spec.buckets)]

    def shard_of_bucket(self, bucket: int) -> int:
        return self._bucket_to_shard[bucket]

    def move_bucket(self, bucket: int, shard: int) -> None:
        if not 0 <= bucket < self.spec.buckets:
            raise PlacementError(
                f"bucket {bucket} out of range: the ring has "
                f"{self.spec.buckets} buckets"
            )
        self.spec._check_shard(shard, f"rebalance of bucket {bucket}")
        self._bucket_to_shard[bucket] = shard

    def buckets_of(self, shard: int) -> list[int]:
        return [b for b, s in enumerate(self._bucket_to_shard) if s == shard]


class RangePlacement(PlacementMap):
    """Contiguous integer ranges, each owned by one shard.  Static."""

    def __init__(self, spec: ShardSpec) -> None:
        super().__init__(spec)
        assert spec.ranges is not None
        self._ranges = spec.ranges

    def _locate(self, key: Hashable) -> int:
        if not isinstance(key, int) or isinstance(key, bool):
            raise UnknownShardError(
                f"range placement only covers integer keys, got {key!r}; "
                "use hash or ownership placement for non-integer key spaces"
            )
        for lo, hi, shard in self._ranges:
            if (lo is None or key >= lo) and (hi is None or key < hi):
                return shard
        raise UnknownShardError(f"no range covers key {key!r}")  # unreachable


class OwnershipPlacement(HashPlacement):
    """Explicit per-key owners over a hash fallback (VPaxos/WPaxos-style
    single-object ownership, generalized)."""

    def __init__(self, spec: ShardSpec) -> None:
        super().__init__(spec)
        self._owners: dict[Hashable, int] = dict(spec.assignments or ())

    def _locate(self, key: Hashable) -> int:
        owner = self._owners.get(key)
        if owner is not None:
            return owner
        return super()._locate(key)

    def move_key(self, key: Hashable, shard: int) -> None:
        """Re-home one object (the WPaxos "steal" analogue)."""
        self.spec._check_shard(shard, f"ownership move of key {key!r}")
        self._owners[routing_key(key)] = shard
