"""Node identifiers.

Paxi names each node ``zone.node`` (e.g. ``1.3`` is node 3 in zone 1).  The
zone component is what lets grid quorum systems, WPaxos, WanKeeper, and the
WAN experiments reason about region placement directly from the ID.
Zones and node numbers are 1-based, following the Go implementation.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import ConfigError


class NodeID(NamedTuple):
    """A ``zone.node`` identifier."""

    zone: int
    node: int

    def __str__(self) -> str:
        return f"{self.zone}.{self.node}"

    @classmethod
    def parse(cls, text: str) -> "NodeID":
        """Parse ``"zone.node"`` into a :class:`NodeID`."""
        zone_str, sep, node_str = text.partition(".")
        if not sep:
            raise ConfigError(f"malformed node id {text!r}, expected 'zone.node'")
        try:
            return cls(int(zone_str), int(node_str))
        except ValueError:
            raise ConfigError(f"malformed node id {text!r}") from None


def grid_ids(zones: int, nodes_per_zone: int) -> tuple[NodeID, ...]:
    """All node IDs for a ``zones x nodes_per_zone`` deployment, zone-major."""
    if zones < 1 or nodes_per_zone < 1:
        raise ConfigError(
            f"grid needs positive dimensions, got {zones}x{nodes_per_zone}"
        )
    return tuple(
        NodeID(zone, node)
        for zone in range(1, zones + 1)
        for node in range(1, nodes_per_zone + 1)
    )
