"""Python port of the Paxi prototyping framework (paper section 4).

Paxi factors strongly-consistent replication protocols into shared building
blocks — configuration, quorum systems, networking, a multi-version
key-value store, a client library, and a benchmarker — so that a protocol
implementation only supplies its message types and replica logic.  This
package reproduces that architecture on top of :mod:`repro.sim`.
"""

from repro.paxi.ids import NodeID, grid_ids
from repro.paxi.message import Batch, Command, ClientRequest, ClientReply, Message
from repro.paxi.quorum import (
    MajorityQuorum,
    ThresholdQuorum,
    FastQuorum,
    GridQuorum,
    GroupQuorum,
)
from repro.paxi.config import Config
from repro.paxi.node import Batcher, Replica
from repro.paxi.protocol import Protocol
from repro.paxi.deployment import Deployment
from repro.paxi.client import Client
from repro.paxi.session import Result, Session
from repro.paxi.kvstore import MultiVersionStore
from repro.paxi.history import HistoryRecorder, Operation

__all__ = [
    "NodeID",
    "grid_ids",
    "Command",
    "Batch",
    "ClientRequest",
    "ClientReply",
    "Message",
    "MajorityQuorum",
    "ThresholdQuorum",
    "FastQuorum",
    "GridQuorum",
    "GroupQuorum",
    "Config",
    "Replica",
    "Protocol",
    "Batcher",
    "Deployment",
    "Client",
    "Session",
    "Result",
    "MultiVersionStore",
    "HistoryRecorder",
    "Operation",
]
