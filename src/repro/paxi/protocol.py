"""The documented surface for protocol authors.

Historically protocols subclassed :class:`~repro.paxi.node.Replica`
directly and inherited a grab-bag of runtime plumbing.  :class:`Protocol`
makes the contract explicit.  A protocol author implements

- :meth:`on_request` — handle one client request (the only abstract method;
  the runtime wires ``ClientRequest`` to it automatically), and optionally
- :meth:`propose_batch` — admit a group of coalesced requests as one
  proposal.  The default degrades gracefully by re-admitting each request
  individually, so protocols without native batching still run (without the
  amortization benefit) under a batching config.

and *uses* the inherited runtime surface:

- :meth:`~repro.paxi.node.Replica.register` — route a message dataclass to
  a handler,
- ``send`` / ``multicast`` / ``broadcast`` / ``set_timer`` / ``local_work``
  — the non-blocking messaging primitives,
- :meth:`~repro.paxi.node.Replica.trace_mark` — annotate a request's span
  at the protocol's commit point,
- :meth:`make_batcher` — construct a :class:`~repro.paxi.node.Batcher`
  honoring the deployment's typed batching knobs (``Config.batch_size`` /
  ``Config.batch_window``), or ``None`` when batching is disabled.

See ``docs/WRITING_A_PROTOCOL.md`` for a walkthrough.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Hashable

from repro.paxi.message import ClientRequest
from repro.paxi.node import Batcher, Replica

if TYPE_CHECKING:
    from repro.paxi.deployment import Deployment
    from repro.paxi.ids import NodeID


class Protocol(Replica, abc.ABC):
    """Base class every replication protocol implements.

    Subclass, implement :meth:`on_request`, and register handlers for your
    own message types in ``__init__`` (after calling ``super().__init__``;
    the base constructor registers ``ClientRequest`` -> ``on_request`` for
    you).
    """

    def __init__(self, deployment: "Deployment", node_id: "NodeID") -> None:
        super().__init__(deployment, node_id)
        self.register(ClientRequest, self.on_request)

    @abc.abstractmethod
    def on_request(self, src: Hashable, m: ClientRequest) -> None:
        """Handle one client request (forward, propose, or serve it)."""

    def propose_batch(self, requests: list[ClientRequest]) -> None:
        """Admit a coalesced group of requests as one proposal.

        Protocols with native batching (MultiPaxos, Raft) override this to
        replicate the group as a single multi-command log entry.  The
        default keeps unbatched protocols functional by degrading to one
        proposal per request.
        """
        for request in requests:
            self.on_request(request.client, request)

    def make_batcher(
        self, flush_fn: Callable[[list[ClientRequest]], None] | None = None
    ) -> Batcher | None:
        """Build a batcher from the config's typed knobs, or ``None``.

        Batching is enabled when ``Config.batch_size > 1`` or a
        ``Config.batch_window`` is set; otherwise every request proposes
        immediately and this returns ``None``.  ``flush_fn`` defaults to
        :meth:`propose_batch`.
        """
        cfg = self.config
        if cfg.batch_size <= 1 and cfg.batch_window is None:
            return None
        window = cfg.batch_window if cfg.batch_window is not None else 0.0
        return Batcher(
            self,
            flush_fn if flush_fn is not None else self.propose_batch,
            window=window,
            max_size=max(1, cfg.batch_size),
        )
