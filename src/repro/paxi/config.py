"""Cluster, protocol, and benchmark configuration (paper section 4.1).

A :class:`Config` carries everything a deployment needs: the topology, the
node IDs and their placement, the machine service profile, the seed, and a
free-form parameter mapping for protocol-specific knobs (quorum sizes,
fault-tolerance levels, stealing policies, ...).

Like Paxi, configurations can be managed "via a JSON file distributed to
every node": :meth:`Config.to_json` / :meth:`Config.from_json` round-trip
the standard deployments (LAN grids and AWS WAN grids).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core import topology as topo
from repro.errors import ConfigError
from repro.paxi.ids import NodeID, grid_ids
from repro.sim.server import ServiceProfile


@dataclass
class Config:
    """Static description of one deployment."""

    topology: topo.Topology
    node_ids: tuple[NodeID, ...]
    profile: ServiceProfile = field(default_factory=ServiceProfile)
    seed: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.node_ids) != self.topology.n_nodes:
            raise ConfigError(
                f"{len(self.node_ids)} node ids but topology places "
                f"{self.topology.n_nodes} nodes"
            )
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigError("duplicate node ids")

    # ------------------------------------------------------------------
    # Derived lookups
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.node_ids)

    def site_of(self, node_id: NodeID) -> str:
        return self.topology.node_site(self.node_ids.index(node_id))

    def ids_in_zone(self, zone: int) -> list[NodeID]:
        return [nid for nid in self.node_ids if nid.zone == zone]

    def ids_in_site(self, site: str) -> list[NodeID]:
        return [nid for nid in self.node_ids if self.site_of(nid) == site]

    @property
    def zones(self) -> list[int]:
        seen: list[int] = []
        for nid in self.node_ids:
            if nid.zone not in seen:
                seen.append(nid.zone)
        return seen

    def zone_site(self, zone: int) -> str:
        members = self.ids_in_zone(zone)
        if not members:
            raise ConfigError(f"no nodes in zone {zone}")
        return self.site_of(members[0])

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    # ------------------------------------------------------------------
    # Builders matching the paper's deployments
    # ------------------------------------------------------------------

    @staticmethod
    def lan(
        zones: int = 3,
        nodes_per_zone: int = 3,
        seed: int = 0,
        profile: ServiceProfile | None = None,
        **params: Any,
    ) -> "Config":
        """A single-site LAN cluster (paper section 5.2: 9 nodes).

        Zones are logical here — WPaxos still forms a 3x3 grid, but every
        node sees LAN round-trip times.
        """
        ids = grid_ids(zones, nodes_per_zone)
        return Config(
            topology=topo.lan(zones * nodes_per_zone),
            node_ids=ids,
            profile=profile if profile is not None else ServiceProfile(),
            seed=seed,
            params=dict(params),
        )

    @staticmethod
    def wan(
        regions: tuple[str, ...] = ("VA", "OH", "CA"),
        nodes_per_zone: int = 3,
        seed: int = 0,
        profile: ServiceProfile | None = None,
        **params: Any,
    ) -> "Config":
        """A multi-region WAN cluster; zone ``i`` lives in ``regions[i-1]``.

        The paper's WAN experiments use 3 regions x 3 nodes for the
        locality/conflict studies and 5 regions x 1 node for the EPaxos
        model (Figure 12).
        """
        ids = grid_ids(len(regions), nodes_per_zone)
        return Config(
            topology=topo.aws_wan(regions, nodes_per_zone),
            node_ids=ids,
            profile=profile if profile is not None else ServiceProfile(),
            seed=seed,
            params=dict(params),
        )

    # ------------------------------------------------------------------
    # JSON round trip (Paxi distributes configuration as a JSON file)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize a standard (LAN or AWS WAN grid) deployment."""
        zones = self.zones
        nodes_per_zone = len(self.ids_in_zone(zones[0]))
        if self.node_ids != grid_ids(len(zones), nodes_per_zone):
            raise ConfigError("only rectangular grid deployments serialize to JSON")
        is_lan = self.topology.sites == ("LAN",)
        payload = {
            "deployment": "lan" if is_lan else "wan",
            "regions": list(self.topology.sites) if not is_lan else None,
            "zones": len(zones),
            "nodes_per_zone": nodes_per_zone,
            "seed": self.seed,
            "profile": {
                "t_in": self.profile.t_in,
                "t_out": self.profile.t_out,
                "bandwidth_bps": self.profile.bandwidth_bps,
                "default_message_bytes": self.profile.default_message_bytes,
            },
            "params": _jsonable_params(self.params),
        }
        return json.dumps(payload, indent=2)

    @staticmethod
    def from_json(text: str) -> "Config":
        """Rebuild a configuration serialized with :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed configuration JSON: {exc}") from exc
        profile = ServiceProfile(**payload.get("profile", {}))
        params = _params_from_json(payload.get("params", {}))
        common = {
            "nodes_per_zone": payload["nodes_per_zone"],
            "seed": payload.get("seed", 0),
            "profile": profile,
        }
        if payload.get("deployment") == "lan":
            return Config.lan(zones=payload["zones"], **common, **params)
        return Config.wan(regions=tuple(payload["regions"]), **common, **params)


def _jsonable_params(params: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, NodeID):
            out[name] = {"__node_id__": str(value)}
        else:
            out[name] = value
    return out


def _params_from_json(params: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, dict) and "__node_id__" in value:
            out[name] = NodeID.parse(value["__node_id__"])
        else:
            out[name] = value
    return out
