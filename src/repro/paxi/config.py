"""Cluster, protocol, and benchmark configuration (paper section 4.1).

A :class:`Config` carries everything a deployment needs: the topology, the
node IDs and their placement, the machine service profile, the seed, and a
free-form parameter mapping for protocol-specific knobs (quorum sizes,
fault-tolerance levels, stealing policies, ...).

Like Paxi, configurations can be managed "via a JSON file distributed to
every node": :meth:`Config.to_json` / :meth:`Config.from_json` round-trip
the standard deployments (LAN grids and AWS WAN grids).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from repro.core import topology as topo
from repro.errors import ConfigError, UnknownShardError
from repro.paxi.ids import NodeID, grid_ids
from repro.shard.placement import ShardSpec
from repro.sim.server import ServiceProfile
from repro.sim.storage import DURABILITY_MODES, DiskProfile

#: Seed offset between consecutive shards' deployments (prime, so derived
#: streams across shards never line up with each other).
SHARD_SEED_STRIDE = 9973

#: Knobs that live in the nested ``replication`` section of the JSON
#: schema.  The flat spellings are still accepted for one release (with a
#: DeprecationWarning) — see :meth:`Config.from_dict`.
_REPLICATION_KEYS = (
    "batch_window",
    "batch_size",
    "pipeline_depth",
    "durability",
    "disk",
    "snapshot_interval",
)

#: Admission-control knobs live in the nested ``admission`` JSON section.
_ADMISSION_KEYS = ("max_inflight", "queue_limit", "shed_policy")

#: What a replica does with a client request it will not queue.
SHED_POLICIES = ("reject", "drop_oldest", "deadline")


@dataclass
class Config:
    """Static description of one deployment.

    The batching / pipelining knobs are typed fields (not ``params``
    entries) because every protocol shares them:

    - ``batch_size`` — maximum commands coalesced into one log entry;
      ``1`` disables batching unless a window is set;
    - ``batch_window`` — seconds of virtual time the leader waits to fill
      a batch before flushing it (``None`` disables, ``0.0`` coalesces
      only same-instant arrivals);
    - ``pipeline_depth`` — maximum consensus instances a leader keeps in
      flight concurrently (``None`` = unbounded, the historical behavior).

    Durability is strictly opt-in (the default keeps the seed's in-memory
    behavior byte-identical):

    - ``durability`` — ``"none"`` (in-memory), ``"fsync"`` (every WAL
      record synced on the critical path) or ``"group"`` (group-commit
      fsync, amortized across concurrent records);
    - ``disk`` — the :class:`~repro.sim.storage.DiskProfile` to charge
      sync costs from (requires ``durability != "none"``);
    - ``snapshot_interval`` — write a disk snapshot and truncate the WAL
      every this many executed slots (``None`` disables periodic
      snapshots; state transfer to wiped nodes works either way).
    """

    topology: topo.Topology
    node_ids: tuple[NodeID, ...]
    profile: ServiceProfile = field(default_factory=ServiceProfile)
    seed: int = 0
    params: dict[str, Any] = field(default_factory=dict)
    batch_window: float | None = None
    batch_size: int = 1
    pipeline_depth: int | None = None
    durability: str = "none"
    disk: DiskProfile | None = None
    snapshot_interval: int | None = None
    #: Admission control / load shedding (strictly opt-in; the defaults
    #: keep the unbounded-queue seed behavior byte-identical):
    #:
    #: - ``queue_limit`` — max jobs a replica's CPU+NIC queue may hold when
    #:   a new client request arrives; beyond it the request is shed
    #:   (``None`` = unbounded, the historical behavior);
    #: - ``max_inflight`` — max distinct admitted-but-unanswered client
    #:   requests per replica (``None`` = unbounded);
    #: - ``shed_policy`` — what shedding does: ``"reject"`` bounces the new
    #:   arrival, ``"drop_oldest"`` bounces the oldest *queued* client
    #:   request instead (fresher work is likelier to meet its deadline),
    #:   ``"deadline"`` additionally sheds any request whose propagated
    #:   deadline cannot be met given the current backlog.
    max_inflight: int | None = None
    queue_limit: int | None = None
    shed_policy: str = "reject"
    #: Shard layout for the multi-group runtime (``repro.shard``).  ``None``
    #: keeps the historical single-group behavior; the topology above then
    #: describes the (one and only) group.  With ``shards`` set, every
    #: shard gets its *own* grid of this shape — see ``Config.for_shard``.
    shards: ShardSpec | None = None

    def __post_init__(self) -> None:
        if len(self.node_ids) != self.topology.n_nodes:
            raise ConfigError(
                f"{len(self.node_ids)} node ids but topology places "
                f"{self.topology.n_nodes} nodes"
            )
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigError("duplicate node ids")
        if self.batch_window is not None and self.batch_window < 0:
            raise ConfigError(
                f"batch_window must be >= 0 seconds, got {self.batch_window!r}: "
                "a negative coalescing window cannot be waited for "
                "(use batch_window=None to disable batching)"
            )
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size!r}: "
                "a batch holds at least one command (use batch_size=1 to disable)"
            )
        if self.pipeline_depth is not None and self.pipeline_depth < 1:
            raise ConfigError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth!r}: "
                "a leader needs at least one instance in flight "
                "(use pipeline_depth=None for unbounded)"
            )
        if self.durability not in DURABILITY_MODES:
            raise ConfigError(
                f"durability must be one of {DURABILITY_MODES}, got {self.durability!r}"
            )
        if self.disk is not None and self.durability == "none":
            raise ConfigError(
                "a disk profile was given but durability='none'; "
                "set durability='fsync' or 'group' to use it"
            )
        if self.snapshot_interval is not None:
            if self.durability == "none":
                raise ConfigError(
                    "snapshot_interval requires durability != 'none': "
                    "snapshots only exist on a durable disk"
                )
            if not isinstance(self.snapshot_interval, int) or self.snapshot_interval < 1:
                raise ConfigError(
                    f"snapshot_interval must be a positive integer number of "
                    f"slots or None, got {self.snapshot_interval!r}"
                )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        for name, value in (
            ("queue_limit", self.queue_limit),
            ("max_inflight", self.max_inflight),
        ):
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise ConfigError(
                    f"{name} must be a positive integer or None, got {value!r}: "
                    "a replica needs room for at least one request "
                    f"(use {name}=None for the historical unbounded behavior)"
                )
        if self.shards is not None and not isinstance(self.shards, ShardSpec):
            raise ConfigError(
                f"shards must be a ShardSpec or None, got {type(self.shards).__name__} "
                "(build one with ShardSpec(count=...) or the 'shards' JSON section)"
            )
        if (
            self.shards is not None
            and self.shards.count > 1
            and self.shards.leaders == "spread"
            and "leader" in self.params
        ):
            raise ConfigError(
                f"leader-placement conflict: params['leader']={self.params['leader']} "
                "pins every group's leader to one node, but shards.leaders='spread' "
                "asks for per-shard leaders on different nodes; drop the param or "
                "set shards.leaders='first'"
            )

    @property
    def batching_enabled(self) -> bool:
        return self.batch_size > 1 or self.batch_window is not None

    @property
    def admission_enabled(self) -> bool:
        """True iff any admission gate is configured.  When False, replicas
        take the historical zero-overhead ingress path."""
        return self.queue_limit is not None or self.max_inflight is not None

    @property
    def durable(self) -> bool:
        return self.durability != "none"

    @property
    def disk_profile(self) -> DiskProfile:
        """The effective disk profile for durable deployments."""
        return self.disk if self.disk is not None else DiskProfile()

    # ------------------------------------------------------------------
    # Derived lookups
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self.node_ids)

    def site_of(self, node_id: NodeID) -> str:
        return self.topology.node_site(self.node_ids.index(node_id))

    def ids_in_zone(self, zone: int) -> list[NodeID]:
        return [nid for nid in self.node_ids if nid.zone == zone]

    def ids_in_site(self, site: str) -> list[NodeID]:
        return [nid for nid in self.node_ids if self.site_of(nid) == site]

    @property
    def zones(self) -> list[int]:
        seen: list[int] = []
        for nid in self.node_ids:
            if nid.zone not in seen:
                seen.append(nid.zone)
        return seen

    def zone_site(self, zone: int) -> str:
        members = self.ids_in_zone(zone)
        if not members:
            raise ConfigError(f"no nodes in zone {zone}")
        return self.site_of(members[0])

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self.shards.count if self.shards is not None else 1

    def for_shard(self, index: int) -> "Config":
        """The per-group configuration of shard ``index``.

        Each shard is an independent deployment: same topology shape and
        service profile, but its own derived seed (so groups do not march
        in lockstep) and — under the ``"spread"`` leader policy — a
        rotated initial leader, mirroring how co-located groups spread
        leader load across machines.  Shard 0 of a single-shard layout is
        the *identical* configuration (only ``shards`` cleared), which is
        what makes single-shard clusters byte-identical to a plain
        deployment.
        """
        spec = self.shards
        if spec is None or spec.count == 1:
            if index != 0:
                raise UnknownShardError(
                    f"shard {index} does not exist: this configuration has one shard"
                )
            return replace(self, shards=None)
        if not 0 <= index < spec.count:
            raise UnknownShardError(
                f"shard {index} does not exist: shards.count = {spec.count}"
            )
        params = dict(self.params)
        if spec.leaders == "spread":
            params["leader"] = self.node_ids[index % len(self.node_ids)]
        return replace(
            self,
            shards=None,
            seed=self.seed + index * SHARD_SEED_STRIDE,
            params=params,
        )

    # ------------------------------------------------------------------
    # Builders matching the paper's deployments
    # ------------------------------------------------------------------

    @staticmethod
    def lan(
        zones: int = 3,
        nodes_per_zone: int = 3,
        seed: int = 0,
        profile: ServiceProfile | None = None,
        batch_window: float | None = None,
        batch_size: int = 1,
        pipeline_depth: int | None = None,
        durability: str = "none",
        disk: DiskProfile | None = None,
        snapshot_interval: int | None = None,
        shards: ShardSpec | None = None,
        max_inflight: int | None = None,
        queue_limit: int | None = None,
        shed_policy: str = "reject",
        **params: Any,
    ) -> "Config":
        """A single-site LAN cluster (paper section 5.2: 9 nodes).

        Zones are logical here — WPaxos still forms a 3x3 grid, but every
        node sees LAN round-trip times.
        """
        ids = grid_ids(zones, nodes_per_zone)
        return Config(
            topology=topo.lan(zones * nodes_per_zone),
            node_ids=ids,
            profile=profile if profile is not None else ServiceProfile(),
            seed=seed,
            params=dict(params),
            batch_window=batch_window,
            batch_size=batch_size,
            pipeline_depth=pipeline_depth,
            durability=durability,
            disk=disk,
            snapshot_interval=snapshot_interval,
            shards=shards,
            max_inflight=max_inflight,
            queue_limit=queue_limit,
            shed_policy=shed_policy,
        )

    @staticmethod
    def wan(
        regions: tuple[str, ...] = ("VA", "OH", "CA"),
        nodes_per_zone: int = 3,
        seed: int = 0,
        profile: ServiceProfile | None = None,
        batch_window: float | None = None,
        batch_size: int = 1,
        pipeline_depth: int | None = None,
        durability: str = "none",
        disk: DiskProfile | None = None,
        snapshot_interval: int | None = None,
        shards: ShardSpec | None = None,
        max_inflight: int | None = None,
        queue_limit: int | None = None,
        shed_policy: str = "reject",
        **params: Any,
    ) -> "Config":
        """A multi-region WAN cluster; zone ``i`` lives in ``regions[i-1]``.

        The paper's WAN experiments use 3 regions x 3 nodes for the
        locality/conflict studies and 5 regions x 1 node for the EPaxos
        model (Figure 12).
        """
        ids = grid_ids(len(regions), nodes_per_zone)
        return Config(
            topology=topo.aws_wan(regions, nodes_per_zone),
            node_ids=ids,
            profile=profile if profile is not None else ServiceProfile(),
            seed=seed,
            params=dict(params),
            batch_window=batch_window,
            batch_size=batch_size,
            pipeline_depth=pipeline_depth,
            durability=durability,
            disk=disk,
            snapshot_interval=snapshot_interval,
            shards=shards,
            max_inflight=max_inflight,
            queue_limit=queue_limit,
            shed_policy=shed_policy,
        )

    # ------------------------------------------------------------------
    # JSON round trip (Paxi distributes configuration as a JSON file)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize a standard (LAN or AWS WAN grid) deployment.

        Emits the current nested schema: replication knobs live under
        ``"replication"`` and the shard layout under ``"shards"``.
        :meth:`from_dict` still reads the historical flat spellings (with a
        deprecation warning), so old files keep loading.
        """
        zones = self.zones
        nodes_per_zone = len(self.ids_in_zone(zones[0]))
        if self.node_ids != grid_ids(len(zones), nodes_per_zone):
            raise ConfigError("only rectangular grid deployments serialize to JSON")
        is_lan = self.topology.sites == ("LAN",)
        payload = {
            "deployment": "lan" if is_lan else "wan",
            "regions": list(self.topology.sites) if not is_lan else None,
            "zones": len(zones),
            "nodes_per_zone": nodes_per_zone,
            "seed": self.seed,
            "profile": {
                "t_in": self.profile.t_in,
                "t_out": self.profile.t_out,
                "bandwidth_bps": self.profile.bandwidth_bps,
                "default_message_bytes": self.profile.default_message_bytes,
            },
            "params": _jsonable_params(self.params),
            "replication": {
                "batch_window": self.batch_window,
                "batch_size": self.batch_size,
                "pipeline_depth": self.pipeline_depth,
                "durability": self.durability,
                "disk": (
                    {
                        "fsync_latency": self.disk.fsync_latency,
                        "write_bandwidth_bps": self.disk.write_bandwidth_bps,
                    }
                    if self.disk is not None
                    else None
                ),
                "snapshot_interval": self.snapshot_interval,
            },
            "admission": (
                {
                    "max_inflight": self.max_inflight,
                    "queue_limit": self.queue_limit,
                    "shed_policy": self.shed_policy,
                }
                if self.admission_enabled
                else None
            ),
            "shards": self.shards.to_dict() if self.shards is not None else None,
        }
        return json.dumps(payload, indent=2)

    @staticmethod
    def from_json(text: str) -> "Config":
        """Rebuild a configuration serialized with :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"malformed configuration JSON: {exc}") from exc
        return Config.from_dict(payload)

    @staticmethod
    def from_file(path: Any) -> "Config":
        """Load and validate a configuration from a JSON file.

        This is the Paxi deployment story — "a JSON file distributed to
        every node" — with validation: every error names the offending
        field and says how to fix it.
        """
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigError(f"cannot read configuration file {path!r}: {exc}") from exc
        return Config.from_json(text)

    @staticmethod
    def from_dict(payload: Any) -> "Config":
        """Build a validated :class:`Config` from a plain mapping.

        Accepts the :meth:`to_json` schema plus an optional ``protocol``
        name (validated against the registry and kept in ``params`` for
        CLIs to consume).  Raises :class:`~repro.errors.ConfigError` with
        an actionable message on any inconsistency: unknown keys, unknown
        protocol, a quorum system that cannot intersect, a negative batch
        window, and so on.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"configuration must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "deployment", "regions", "zones", "nodes_per_zone", "seed",
            "profile", "params", "protocol", "replication", "admission", "shards",
            # Deprecated flat spellings of the replication knobs (one
            # release of backward compatibility; see below).
            "batch_window", "batch_size", "pipeline_depth",
            "durability", "disk", "snapshot_interval",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                f"unknown configuration key(s) {unknown}; "
                f"valid keys are {sorted(known)}"
            )

        replication = payload.get("replication") or {}
        if not isinstance(replication, dict):
            raise ConfigError(
                f"'replication' must be a mapping, got {replication!r}"
            )
        bad_replication = sorted(set(replication) - set(_REPLICATION_KEYS))
        if bad_replication:
            raise ConfigError(
                f"unknown replication key(s) {bad_replication}; "
                f"valid keys are {sorted(_REPLICATION_KEYS)}"
            )
        flat = [k for k in _REPLICATION_KEYS if k in payload]
        if flat:
            conflicts = sorted(set(flat) & set(replication))
            if conflicts:
                raise ConfigError(
                    f"{conflicts} given both at the top level and under "
                    "'replication'; keep only the nested spelling"
                )
            warnings.warn(
                f"flat configuration key(s) {flat} are deprecated; nest them "
                "under 'replication' (e.g. {\"replication\": {\"batch_size\": 16}})",
                DeprecationWarning,
                stacklevel=3,
            )
            replication = {**replication, **{k: payload[k] for k in flat}}

        deployment = payload.get("deployment", "lan")
        if deployment not in ("lan", "wan"):
            raise ConfigError(
                f"deployment must be 'lan' or 'wan', got {deployment!r}"
            )
        regions = payload.get("regions")
        if deployment == "wan":
            if not regions or not isinstance(regions, (list, tuple)):
                raise ConfigError(
                    "wan deployment needs a non-empty 'regions' list, "
                    "e.g. [\"VA\", \"OH\", \"CA\"]"
                )
            zones = payload.get("zones", len(regions))
            if zones != len(regions):
                raise ConfigError(
                    f"'zones' ({zones}) disagrees with len(regions) "
                    f"({len(regions)}); drop 'zones' or make them match"
                )
        else:
            zones = payload.get("zones", 3)
        nodes_per_zone = payload.get("nodes_per_zone", 3)
        for name, value in (("zones", zones), ("nodes_per_zone", nodes_per_zone)):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ConfigError(f"{name} must be a positive integer, got {value!r}")

        profile_dict = payload.get("profile") or {}
        if not isinstance(profile_dict, dict):
            raise ConfigError(f"profile must be a mapping, got {profile_dict!r}")
        profile_keys = {"t_in", "t_out", "bandwidth_bps", "default_message_bytes"}
        bad_profile = sorted(set(profile_dict) - profile_keys)
        if bad_profile:
            raise ConfigError(
                f"unknown profile key(s) {bad_profile}; "
                f"valid keys are {sorted(profile_keys)}"
            )
        profile = ServiceProfile(**profile_dict)

        params = _params_from_json(payload.get("params") or {})
        migrated = sorted(
            k for k in ("batch_window", "batch_size", "pipeline_depth") if k in params
        )
        if migrated:
            raise ConfigError(
                f"{migrated} are typed configuration fields, not protocol params; "
                "move them out of 'params' to the top level of the document"
            )
        n = zones * nodes_per_zone
        protocol = payload.get("protocol")
        if protocol is not None:
            params["protocol"] = _validate_protocol(protocol)
        _validate_quorum(params, n)
        _validate_lease(params)

        batch_window = replication.get("batch_window")
        batch_size = replication.get("batch_size", 1)
        pipeline_depth = replication.get("pipeline_depth")
        if batch_window is not None and not isinstance(batch_window, (int, float)):
            raise ConfigError(
                f"batch_window must be a number of seconds or null, got {batch_window!r}"
            )
        for name, value in (("batch_size", batch_size), ("pipeline_depth", pipeline_depth)):
            if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
                raise ConfigError(f"{name} must be an integer, got {value!r}")
        durability = replication.get("durability", "none")
        if durability is None:
            durability = "none"
        if durability not in DURABILITY_MODES:
            raise ConfigError(
                f"durability must be one of {DURABILITY_MODES}, got {durability!r}"
            )
        disk_dict = replication.get("disk")
        disk = None
        if disk_dict is not None:
            if not isinstance(disk_dict, dict):
                raise ConfigError(f"disk must be a mapping, got {disk_dict!r}")
            disk_keys = {"fsync_latency", "write_bandwidth_bps"}
            bad_disk = sorted(set(disk_dict) - disk_keys)
            if bad_disk:
                raise ConfigError(
                    f"unknown disk key(s) {bad_disk}; valid keys are {sorted(disk_keys)}"
                )
            try:
                disk = DiskProfile(**disk_dict)
            except Exception as exc:  # SimulationError or bad field types
                raise ConfigError(f"invalid disk profile {disk_dict!r}: {exc}") from exc
        snapshot_interval = replication.get("snapshot_interval")
        if snapshot_interval is not None and (
            not isinstance(snapshot_interval, int) or isinstance(snapshot_interval, bool)
        ):
            raise ConfigError(
                f"snapshot_interval must be an integer or null, got {snapshot_interval!r}"
            )
        admission = payload.get("admission") or {}
        if not isinstance(admission, dict):
            raise ConfigError(f"'admission' must be a mapping, got {admission!r}")
        bad_admission = sorted(set(admission) - set(_ADMISSION_KEYS))
        if bad_admission:
            raise ConfigError(
                f"unknown admission key(s) {bad_admission}; "
                f"valid keys are {sorted(_ADMISSION_KEYS)}"
            )
        shards_dict = payload.get("shards")
        shards = ShardSpec.from_dict(shards_dict) if shards_dict is not None else None
        common = {
            "nodes_per_zone": nodes_per_zone,
            "seed": payload.get("seed", 0),
            "profile": profile,
            "batch_window": batch_window,
            "batch_size": 1 if batch_size is None else batch_size,
            "pipeline_depth": pipeline_depth,
            "durability": durability,
            "disk": disk,
            "snapshot_interval": snapshot_interval,
            "shards": shards,
            "max_inflight": admission.get("max_inflight"),
            "queue_limit": admission.get("queue_limit"),
            "shed_policy": admission.get("shed_policy") or "reject",
        }
        if deployment == "lan":
            return Config.lan(zones=zones, **common, **params)
        return Config.wan(regions=tuple(regions), **common, **params)


def _validate_protocol(name: Any) -> str:
    """Resolve a protocol name case-insensitively against the registry."""
    from repro.protocols import PROTOCOLS  # runtime import: avoids a cycle

    if isinstance(name, str):
        for canonical in PROTOCOLS:
            if canonical.lower() == name.lower():
                return canonical
    raise ConfigError(
        f"unknown protocol {name!r}; valid protocols are {sorted(PROTOCOLS)}"
    )


def _validate_quorum(params: dict[str, Any], n: int) -> None:
    """Reject phase-1/phase-2 quorum sizes that cannot intersect."""
    q2 = params.get("q2_size")
    if q2 is None:
        return
    if not isinstance(q2, int) or isinstance(q2, bool) or q2 < 1:
        raise ConfigError(
            f"q2_size must be a positive integer, got {q2!r}"
        )
    q1 = params.get("q1_size", n - q2 + 1)
    if q1 + q2 <= n:
        raise ConfigError(
            f"quorum system cannot intersect: q1_size={q1} + q2_size={q2} <= n={n}, "
            "so a phase-1 and a phase-2 quorum can be disjoint and safety is lost; "
            f"choose sizes with q1 + q2 > {n} (e.g. q1_size={n - q2 + 1})"
        )


def _validate_lease(params: dict[str, Any]) -> None:
    """Reject lease parameters that void the lease safety argument."""
    lease = params.get("lease_duration")
    skew = params.get("max_clock_skew", 0.0)
    if skew and lease is None:
        raise ConfigError(
            "max_clock_skew was given but lease_duration is unset; "
            "the skew bound only matters to leases — set lease_duration too"
        )
    if lease is None:
        return
    if not isinstance(lease, (int, float)) or isinstance(lease, bool) or lease <= 0:
        raise ConfigError(
            f"lease_duration must be a positive number of seconds, got {lease!r}"
        )
    if not isinstance(skew, (int, float)) or isinstance(skew, bool) or skew < 0:
        raise ConfigError(
            f"max_clock_skew must be a non-negative number of seconds, got {skew!r}"
        )
    if skew >= lease:
        raise ConfigError(
            f"max_clock_skew={skew} >= lease_duration={lease}: the leader's "
            "usable lease window (duration - skew) would be empty; shorten "
            "the skew bound or lengthen the lease"
        )


def _jsonable_params(params: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, NodeID):
            out[name] = {"__node_id__": str(value)}
        else:
            out[name] = value
    return out


def _params_from_json(params: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for name, value in params.items():
        if isinstance(value, dict) and "__node_id__" in value:
            out[name] = NodeID.parse(value["__node_id__"])
        else:
            out[name] = value
    return out
