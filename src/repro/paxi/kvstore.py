"""In-memory multi-version key-value store (paper section 4.1, "Data store").

Each replica owns a private store used as its deterministic state machine.
Every write creates a new version, and the full per-key version history is
retained so the consensus checker can compare state-machine histories across
nodes (the paper's consensus checker verifies all nodes' per-record
histories share a common prefix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.paxi.message import CAS, Command


@dataclass(frozen=True)
class Version:
    """One committed version of a key."""

    number: int
    value: Any


@dataclass(frozen=True)
class CasFailed:
    """Reply value for a compare-and-swap whose expectation did not hold.

    Carries the value the key actually had at execution time, so the caller
    (e.g. the 2PC lock manager) can see who holds a contended lock.  The
    command executes deterministically — every replica computes the same
    outcome at the same log position — so a failed CAS appends nothing and
    state machines stay identical.
    """

    current: Any


class MultiVersionStore:
    """A deterministic multi-version map from keys to version chains."""

    def __init__(self) -> None:
        self._chains: dict[Hashable, list[Version]] = {}
        self.executions = 0

    def execute(self, command: Command) -> Any:
        """Apply ``command`` and return the value the client should see.

        Reads return the latest committed value (or ``None`` for a key that
        was never written); writes append a new version and return the value
        they wrote, which lets the linearizability checker treat the reply
        as an acknowledgment.
        """
        self.executions += 1
        chain = self._chains.get(command.key)
        if command.is_read:
            return chain[-1].value if chain else None
        if command.op == CAS:
            current = chain[-1].value if chain else None
            if current != command.expect:
                return CasFailed(current)
        if chain is None:
            chain = []
            self._chains[command.key] = chain
        chain.append(Version(len(chain) + 1, command.value))
        return command.value

    def read(self, key: Hashable) -> Any:
        """Current value of ``key`` without counting as an execution."""
        chain = self._chains.get(key)
        return chain[-1].value if chain else None

    def version(self, key: Hashable) -> int:
        """Number of committed writes to ``key``."""
        chain = self._chains.get(key)
        return chain[-1].number if chain else 0

    def history(self, key: Hashable) -> list[Any]:
        """All values ever written to ``key``, oldest first."""
        return [v.value for v in self._chains.get(key, [])]

    def adopt(self, key: Hashable, values: list[Any]) -> None:
        """Replace ``key``'s chain with ``values`` if it is an extension.

        Used when object ownership migrates between replication groups
        (WanKeeper token transfer, Vertical Paxos reassignment): the new
        group splices in the full committed history so that per-key
        histories remain common-prefix consistent across all nodes.
        A shorter (stale) incoming chain is ignored.
        """
        current = self._chains.get(key, [])
        if len(values) <= len(current):
            return
        self._chains[key] = [Version(i + 1, v) for i, v in enumerate(values)]

    def dump(self) -> dict[Hashable, list[Any]]:
        """Full per-key histories, for snapshots / state transfer.

        The dump keeps every version (not just the latest value) so a
        restored replica stays common-prefix consistent with its peers
        under the consensus checker.
        """
        return {key: [v.value for v in chain] for key, chain in self._chains.items()}

    def restore(self, dump: dict[Hashable, list[Any]]) -> None:
        """Replace the store's contents with a :meth:`dump` (state transfer
        into a wiped or snapshot-restored replica)."""
        self._chains = {
            key: [Version(i + 1, v) for i, v in enumerate(values)]
            for key, values in dump.items()
        }

    def keys(self) -> list[Hashable]:
        return list(self._chains)

    def __len__(self) -> int:
        return len(self._chains)
