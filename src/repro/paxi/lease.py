"""Clock-skew-aware leader leases (shared by the Paxos family and Raft).

A lease lets the leader serve linearizable reads from its local state
machine without a quorum round: followers *grant* the leader a promise not
to promise/vote for anyone else for ``duration`` seconds measured on their
own clocks, and the leader serves reads only while it can prove a quorum
of such grants is still in force.

The safety argument under bounded clock skew (see ``docs/READS.md``):

- A follower that grants at local time ``g`` refuses other candidates
  until its local clock reads ``g + duration``.
- The leader timestamps each grant round at *broadcast* time ``s`` on its
  own clock (``s`` is earlier than any follower's receipt), and once a
  grant quorum has answered, treats the lease as valid only until
  ``s + duration - max_clock_skew`` on its own clock.
- If every clock's offset moves by at most ``max_clock_skew`` relative to
  real time over the lease window, the leader's discounted expiry passes
  before *any* granting follower's refusal window ends.  The grant quorum
  is chosen to intersect every phase-1 (election) quorum, so no new
  leader can form while the lease is valid — reads served under it
  cannot miss a committed write.

A ``skew`` fault that jumps a clock by *more* than ``max_clock_skew``
mid-window voids the argument; the adversarial tests inject exactly that
and let the linearizability checker adjudicate.
"""

from __future__ import annotations

from typing import Hashable

from repro.sim.clock import NodeClock

#: Grant holder recorded by a node that restarted mid-window: it may have
#: granted *someone* before the restart, so it blocks every candidate
#: until a full lease duration has passed on its clock.
UNKNOWN = object()


class LeaderLease:
    """Leader-side grant bookkeeping: stamp rounds, tally grants, and
    expose the discounted validity window."""

    def __init__(
        self,
        clock: NodeClock,
        duration: float,
        max_skew: float,
        quorum_size: int,
        self_id: Hashable,
    ) -> None:
        self.clock = clock
        self.duration = duration
        self.max_skew = max_skew
        self.quorum_size = quorum_size
        self.self_id = self_id
        self._seq = 0
        self._sent_at: dict[int, float] = {}
        self._grants: dict[int, set[Hashable]] = {}
        self.valid_until = float("-inf")

    def stamp(self) -> int:
        """Start a grant round: returns the sequence number to piggyback
        on the outgoing broadcast, remembering the send-time clock reading
        the eventual quorum will be anchored to."""
        self._seq += 1
        self._sent_at[self._seq] = self.clock.now
        # Rounds that can no longer extend the window are dead weight.
        horizon = self.clock.now - self.duration
        for seq in [s for s, at in self._sent_at.items() if at < horizon]:
            self._sent_at.pop(seq, None)
            self._grants.pop(seq, None)
        return self._seq

    def record_grant(self, seq: int, voter: Hashable) -> None:
        """A follower acknowledged round ``seq``.  Once a grant quorum
        (leader included) has answered, the lease extends to the round's
        send time plus the skew-discounted duration."""
        sent = self._sent_at.get(seq)
        if sent is None:
            return
        grants = self._grants.setdefault(seq, {self.self_id})
        grants.add(voter)
        if len(grants) >= self.quorum_size:
            self.valid_until = max(
                self.valid_until, sent + self.duration - self.max_skew
            )
            for s in [s for s in self._sent_at if s <= seq]:
                self._sent_at.pop(s, None)
                self._grants.pop(s, None)

    @property
    def valid(self) -> bool:
        return self.clock.now < self.valid_until

    def reset(self) -> None:
        """Forget in-flight rounds (leadership change).  The validity
        window itself is left alone: serving is separately gated on still
        *being* the leader."""
        self._sent_at.clear()
        self._grants.clear()


class FollowerGrant:
    """Follower-side grant: who holds this node's promise, and until when
    on this node's clock."""

    def __init__(self, clock: NodeClock, duration: float) -> None:
        self.clock = clock
        self.duration = duration
        self.holder: Hashable | None = None
        self.until = float("-inf")

    def grant(self, owner: Hashable) -> None:
        """(Re-)grant to ``owner`` for a full duration from local now."""
        self.holder = owner
        self.until = self.clock.now + self.duration

    def grant_unknown(self) -> None:
        """Restart path: the pre-restart grant (if any) is forgotten, so
        conservatively block every candidate for one full duration."""
        self.holder = UNKNOWN
        self.until = self.clock.now + self.duration

    def blocks(self, candidate: Hashable) -> bool:
        """True when a live grant to someone other than ``candidate``
        forbids promising/voting for them."""
        return (
            self.holder is not None
            and self.holder != candidate
            and self.clock.now < self.until
        )

    def releases(self, owner: Hashable) -> bool:
        """True when ``owner`` is the recorded grant holder and may
        therefore release this grant early (a planned leader handoff: the
        leaseholder's consent travels with the successor's campaign).  The
        post-restart :data:`UNKNOWN` sentinel never matches — a node that
        forgot who it granted to must sit out the full window."""
        return owner is not UNKNOWN and self.holder == owner
