"""Deployment: wires a protocol onto a simulated cluster.

A :class:`Deployment` owns the :class:`~repro.sim.cluster.Cluster`, builds
one replica per configured node via a protocol factory, creates clients, and
collects the global operation history for the checkers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable

from repro.errors import ConfigError, SimulationError
from repro.paxi.config import Config
from repro.paxi.history import HistoryRecorder
from repro.paxi.ids import NodeID
from repro.sim.clock import EventLoop, NodeClock
from repro.sim.cluster import Cluster
from repro.sim.network import FaultPlan
from repro.sim.server import Server
from repro.sim.storage import Disk, DiskProfile

if TYPE_CHECKING:
    from repro.paxi.client import Client
    from repro.paxi.node import Replica
    from repro.paxi.session import Session, SessionOptions

ReplicaFactory = Callable[["Deployment", NodeID], "Replica"]


def _down_sink(src: Hashable, message: object, size_bytes: int) -> None:
    """Receiver installed while a node is down: deliveries vanish."""


class Deployment:
    """A running (simulated) cluster of protocol replicas plus clients."""

    def __init__(
        self,
        config: Config,
        faults: FaultPlan | None = None,
        loop: "EventLoop | None" = None,
    ) -> None:
        self.config = config
        self.cluster = Cluster(
            config.topology,
            seed=config.seed,
            profile=config.profile,
            faults=faults,
            loop=loop,
        )
        self.history = HistoryRecorder()
        self.replicas: dict[NodeID, "Replica"] = {}
        self.clients: list["Client"] = []
        #: Open-loop workload engines driving this deployment register here
        #: so rate-affecting faults find them: a Nemesis ``"burst"`` event
        #: calls ``apply_burst(at, duration, multiplier)`` on each entry
        #: (no-op when empty, e.g. under closed-loop load).
        self.rate_controllers: list = []
        self._client_seq = 0
        self._pending_attach: NodeID | None = None
        self._factory: ReplicaFactory | None = None
        # Disks survive replica restarts, so they live here, not on the
        # replica.  Keyed lazily: empty unless the config is durable.
        self._disks: dict[NodeID, Disk] = {}
        # Per-node wall clocks (lease machinery reads these): skew applied
        # to a node must survive its restarts, so clocks also live here.
        self._clocks: dict[NodeID, NodeClock] = {}
        self._down: dict[NodeID, str] = {}  # node -> "reboot" | "wipe" while down
        self._restart_reason: dict[NodeID, str] = {}  # visible during rebuild
        # Per-key version chains migrated INTO this group by a shard
        # rebalance (repro.shard).  Kept here so replicas rebuilt after a
        # reboot/wipe re-adopt them before replaying their own log: the
        # migrated prefix predates every local log entry for those keys.
        self._seeded_chains: dict[Hashable, list] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def start(self, factory: ReplicaFactory) -> "Deployment":
        """Instantiate one replica per configured node."""
        if self.replicas:
            raise SimulationError("deployment already started")
        self._factory = factory
        for node_id in self.config.node_ids:
            replica = factory(self, node_id)
            if node_id not in self.replicas:
                raise SimulationError(
                    f"factory for {node_id} did not attach its replica"
                )
            if self.replicas[node_id] is not replica:
                raise SimulationError(f"replica mismatch at {node_id}")
        return self

    def attach_replica(self, replica: "Replica") -> Server:
        """Called from ``Replica.__init__``: create the machine and register
        the replica as its network endpoint.

        After a reboot/wipe the machine already exists — the fresh replica
        instance takes over the existing server and network address.
        """
        node_id = replica.id
        if node_id not in self.config.node_ids:
            raise ConfigError(f"{node_id} is not in the configuration")
        if node_id in self.replicas:
            raise SimulationError(f"replica {node_id} already attached")
        self.replicas[node_id] = replica
        for key, values in self._seeded_chains.items():
            replica.store.adopt(key, values)
        site = self.config.site_of(node_id)
        if node_id in self.cluster.servers:
            self.cluster.replace_receiver(node_id, replica.on_network_receive)
            return self.cluster.server(node_id)
        return self.cluster.add_server(node_id, site, replica.on_network_receive)

    def seed_chain(self, key: Hashable, values: list) -> None:
        """Adopt ``key``'s committed version chain into every replica of
        this group (and into replicas rebuilt later).

        This is the receiving half of a shard rebalance: the chain was
        decided by another consensus group, so it arrives as state, not as
        log entries — exactly like WanKeeper token transfer / Vertical
        Paxos reassignment splice migrated history via ``store.adopt``.
        """
        self._seeded_chains[key] = list(values)
        for replica in self.replicas.values():
            replica.store.adopt(key, values)

    def disk_for(self, node_id: NodeID) -> Disk | None:
        """The node's durable disk (created on first use), or None for
        in-memory deployments."""
        if not self.config.durable:
            return None
        disk = self._disks.get(node_id)
        if disk is None:
            disk = Disk(self.config.disk_profile)
            self._disks[node_id] = disk
        return disk

    def clock_for(self, node_id: NodeID) -> NodeClock:
        """The node's local wall clock (created on first use).  Like disks,
        clocks outlive replica restarts: a skewed clock stays skewed across
        a reboot."""
        clock = self._clocks.get(node_id)
        if clock is None:
            clock = NodeClock(self.cluster.loop)
            self._clocks[node_id] = clock
        return clock

    def restart_context(self, node_id: NodeID) -> str | None:
        """Why a replica is being rebuilt right now: ``"reboot"``,
        ``"wipe"``, or None for the initial construction."""
        return self._restart_reason.get(node_id)

    def new_client(self, site: str | None = None, zone: int | None = None) -> "Client":
        """Create a client co-located with the replicas of ``site``/``zone``.

        With neither given, clients round-robin across sites, mirroring the
        paper's benchmarker spreading load over regions.
        """
        from repro.paxi.client import Client

        if site is None and zone is not None:
            site = self.config.zone_site(zone)
        if site is None:
            sites = self.config.topology.sites
            site = sites[self._client_seq % len(sites)]
        if site not in self.config.topology.sites:
            raise ConfigError(f"unknown client site {site!r}")
        self._client_seq += 1
        client = Client(self, ("client", self._client_seq), site)
        self.clients.append(client)
        return client

    def new_session(
        self,
        options: "SessionOptions | None" = None,
        site: str | None = None,
        zone: int | None = None,
        max_wait: float | None = None,
        consistency: str | None = None,
    ) -> "Session":
        """Create a typed :class:`~repro.paxi.session.Session` facade.

        Sessions are the only supported way to issue individual commands:
        ``session.put(k, v)`` returns a :class:`~repro.paxi.session.Result`
        carrying the value, latency, and replying replica, and
        ``session.txn(...)`` runs a multi-key transaction.  Configure via a
        :class:`~repro.paxi.session.SessionOptions` (or the keyword
        shorthands, which build one) — e.g. ``consistency`` sets the
        session's default read path (``"lease"``, ``"quorum"``, ``"local"``,
        or ``None`` for the leader round; see ``docs/READS.md``).
        """
        from repro.paxi.session import Session

        return Session(
            self,
            options,
            site=site,
            zone=zone,
            max_wait=max_wait,
            consistency=consistency,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def replica(self, node_id: NodeID) -> "Replica":
        return self.replicas[node_id]

    def nearest_nodes(self, site: str) -> list[NodeID]:
        """Replica IDs sorted nearest-first from ``site``."""
        topo = self.config.topology
        return sorted(
            self.config.node_ids,
            key=lambda nid: (topo.site_rtt_mean_ms(site, self.config.site_of(nid)), nid),
        )

    # ------------------------------------------------------------------
    # Execution and fault injection passthroughs
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.cluster.now

    def run_for(self, seconds: float) -> None:
        self.cluster.run_for(seconds)

    def run_until(self, deadline: float) -> None:
        self.cluster.run_until(deadline)

    def drain(self, max_events: int | None = None) -> None:
        self.cluster.drain(max_events)

    def verify(self) -> tuple[bool, bool]:
        """Run the paper's two correctness checkers over this deployment.

        Returns ``(linearizable, consensus_ok)`` — the Paxi benchmarker's
        "LinearizabilityCheck" option (Table 3) plus the consensus checker.
        """
        from repro.checkers.consensus import check_deployment
        from repro.checkers.linearizability import check_history

        return (
            check_history(self.history.snapshot()).ok,
            check_deployment(self).ok,
        )

    def crash(
        self, node_id: NodeID, duration: float | None = None, at: float | None = None
    ) -> None:
        """Freeze ``node_id`` for ``duration`` seconds — the paper's
        ``Crash(t)``: volatile state survives, queued work resumes on thaw.
        ``duration=None`` is a permanent crash-stop."""
        self.cluster.crash(node_id, duration, at)

    def reboot(
        self, node_id: NodeID, downtime: float = 0.05, at: float | None = None
    ) -> None:
        """Power-cycle ``node_id``: volatile state (log, quorum tallies,
        timers, queued work, unsynced WAL records) is lost; disk contents
        survive.  After ``downtime`` seconds a fresh replica instance is
        built via the protocol factory and recovers from its WAL."""
        self._schedule_outage(node_id, "reboot", downtime, at)

    def wipe(
        self, node_id: NodeID, downtime: float = 0.05, at: float | None = None
    ) -> None:
        """Like :meth:`reboot`, but the disk is destroyed too: the node
        restarts empty and must rejoin via snapshot state transfer."""
        self._schedule_outage(node_id, "wipe", downtime, at)

    def _schedule_outage(
        self, node_id: NodeID, mode: str, downtime: float, at: float | None
    ) -> None:
        if node_id not in self.config.node_ids:
            raise ConfigError(f"{node_id} is not in the configuration")
        if downtime < 0:
            raise SimulationError(f"negative downtime {downtime!r}")
        when = self.now if at is None else at
        self.cluster.loop.call_at(when, self._take_down, node_id, mode, downtime)

    def _take_down(self, node_id: NodeID, mode: str, downtime: float) -> None:
        if node_id in self._down:
            # Already down; a wipe arriving during a reboot still destroys
            # the disk, otherwise overlapping outages are a no-op.
            if mode == "wipe":
                self._down[node_id] = "wipe"
                disk = self._disks.get(node_id)
                if disk is not None:
                    disk.wipe()
            return
        replica = self.replicas.pop(node_id, None)
        if replica is None:
            return
        self._down[node_id] = mode
        replica.halt()
        self.cluster.server(node_id).power_off()
        self.cluster.replace_receiver(node_id, _down_sink, down=True)
        disk = self._disks.get(node_id)
        if disk is not None and mode == "wipe":
            disk.wipe()
        self.cluster.loop.call_after(downtime, self._bring_up, node_id)

    def _bring_up(self, node_id: NodeID) -> None:
        mode = self._down.pop(node_id, None)
        if mode is None:
            return
        if self._factory is None:
            raise SimulationError("cannot restart a replica before start()")
        self.cluster.server(node_id).power_on()
        self._restart_reason[node_id] = mode
        try:
            # The factory re-runs Replica.__init__, which re-attaches the
            # replica to the existing server/address and (via the
            # protocol's recovery path) replays its WAL or starts catch-up.
            self._factory(self, node_id)
        finally:
            self._restart_reason.pop(node_id, None)

    def fail_slow(
        self,
        node_id: NodeID,
        duration: float,
        cpu_factor: float = 1.0,
        disk_profile: DiskProfile | None = None,
        nic_loss: float = 0.0,
        nic_jitter: float = 0.0,
        at: float | None = None,
    ) -> None:
        """Degrade ``node_id`` without taking it down — the *gray failure*
        crash-stop testing never exercises.  The node keeps serving (and
        heartbeating), just badly, for ``duration`` seconds:

        - ``cpu_factor`` multiplies the service cost of every job on the
          node's CPU+NIC queue (a straggling core, a noisy neighbor);
        - ``disk_profile`` temporarily replaces the node's disk profile (a
          degraded volume: fsync latency spikes, bandwidth collapse) —
          ignored for in-memory deployments;
        - ``nic_loss`` drops each packet to/from the node with the given
          probability; ``nic_jitter`` adds a lognormal-ish extra delay of
          that mean to every surviving packet (a flapping NIC).

        Not an outage: the node never counts against quorum bookkeeping,
        which is exactly what makes fail-slow nodes hard — every fixed
        timeout keeps being fed just in time.
        """
        if node_id not in self.config.node_ids:
            raise ConfigError(f"{node_id} is not in the configuration")
        if duration <= 0:
            raise SimulationError(f"fail_slow needs a positive duration, got {duration!r}")
        if cpu_factor <= 0:
            raise SimulationError(f"cpu_factor must be positive, got {cpu_factor!r}")
        if not 0.0 <= nic_loss < 1.0:
            raise SimulationError(f"nic_loss must be in [0, 1), got {nic_loss!r}")
        start = self.now if at is None else at
        loop = self.cluster.loop
        if cpu_factor != 1.0:
            server = self.cluster.server(node_id)
            loop.call_at(start, server.set_slow_factor, cpu_factor)
            loop.call_at(start + duration, server.set_slow_factor, 1.0)
        if disk_profile is not None and self.config.durable:
            loop.call_at(start, self._swap_disk_profile, node_id, disk_profile)
            loop.call_at(
                start + duration,
                self._swap_disk_profile,
                node_id,
                self.config.disk_profile,
            )
        if nic_loss > 0.0:
            self.cluster.flaky(node_id, None, duration, nic_loss, at=start)
            self.cluster.flaky(None, node_id, duration, nic_loss, at=start)
        if nic_jitter > 0.0:
            for src, dst in ((node_id, None), (None, node_id)):
                self.cluster.faults.slow(
                    src, dst, start, duration, nic_jitter, nic_jitter / 4.0
                )

    def _swap_disk_profile(self, node_id: NodeID, profile: DiskProfile) -> None:
        disk = self.disk_for(node_id)
        if disk is not None:
            disk.profile = profile

    def partial_partition(
        self,
        victim: NodeID,
        sources,
        duration: float,
        at: float | None = None,
    ) -> None:
        """Asymmetric (one-way) link failure: traffic from every address in
        ``sources`` to ``victim`` is dropped; ``victim``'s own outbound
        traffic still flows.  This is the classic gray-failure network
        fault — the victim believes the cluster is healthy (its sends
        succeed) while part of the cluster can no longer reach it.
        """
        if victim not in self.config.node_ids:
            raise ConfigError(f"{victim} is not in the configuration")
        if duration <= 0:
            raise SimulationError(
                f"partial_partition needs a positive duration, got {duration!r}"
            )
        for src in sources:
            if src == victim:
                continue
            self.cluster.drop(src, victim, duration, at)

    def skew(self, node_id: NodeID, delta: float, at: float | None = None) -> None:
        """Jump ``node_id``'s local clock by ``delta`` seconds (may be
        negative).  Scheduling is unaffected — only lease timestamp
        comparisons observe the jump."""
        if node_id not in self.config.node_ids:
            raise ConfigError(f"{node_id} is not in the configuration")
        when = self.now if at is None else at
        self.cluster.loop.call_at(when, self.clock_for(node_id).skew, delta)

    def drop(self, src: Hashable, dst: Hashable, duration: float, at: float | None = None) -> None:
        self.cluster.drop(src, dst, duration, at)

    def slow(self, src: Hashable, dst: Hashable, duration: float, at: float | None = None) -> None:
        self.cluster.slow(src, dst, duration, at)

    def flaky(
        self,
        src: Hashable,
        dst: Hashable,
        duration: float,
        probability: float = 0.5,
        at: float | None = None,
    ) -> None:
        self.cluster.flaky(src, dst, duration, probability, at)
