"""Deployment: wires a protocol onto a simulated cluster.

A :class:`Deployment` owns the :class:`~repro.sim.cluster.Cluster`, builds
one replica per configured node via a protocol factory, creates clients, and
collects the global operation history for the checkers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable

from repro.errors import ConfigError, SimulationError
from repro.paxi.config import Config
from repro.paxi.history import HistoryRecorder
from repro.paxi.ids import NodeID
from repro.sim.cluster import Cluster
from repro.sim.network import FaultPlan
from repro.sim.server import Server

if TYPE_CHECKING:
    from repro.paxi.client import Client
    from repro.paxi.node import Replica
    from repro.paxi.session import Session

ReplicaFactory = Callable[["Deployment", NodeID], "Replica"]


class Deployment:
    """A running (simulated) cluster of protocol replicas plus clients."""

    def __init__(self, config: Config, faults: FaultPlan | None = None) -> None:
        self.config = config
        self.cluster = Cluster(
            config.topology, seed=config.seed, profile=config.profile, faults=faults
        )
        self.history = HistoryRecorder()
        self.replicas: dict[NodeID, "Replica"] = {}
        self.clients: list["Client"] = []
        self._client_seq = 0
        self._pending_attach: NodeID | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def start(self, factory: ReplicaFactory) -> "Deployment":
        """Instantiate one replica per configured node."""
        if self.replicas:
            raise SimulationError("deployment already started")
        for node_id in self.config.node_ids:
            replica = factory(self, node_id)
            if node_id not in self.replicas:
                raise SimulationError(
                    f"factory for {node_id} did not attach its replica"
                )
            if self.replicas[node_id] is not replica:
                raise SimulationError(f"replica mismatch at {node_id}")
        return self

    def attach_replica(self, replica: "Replica") -> Server:
        """Called from ``Replica.__init__``: create the machine and register
        the replica as its network endpoint."""
        node_id = replica.id
        if node_id not in self.config.node_ids:
            raise ConfigError(f"{node_id} is not in the configuration")
        if node_id in self.replicas:
            raise SimulationError(f"replica {node_id} already attached")
        self.replicas[node_id] = replica
        site = self.config.site_of(node_id)
        return self.cluster.add_server(node_id, site, replica.on_network_receive)

    def new_client(self, site: str | None = None, zone: int | None = None) -> "Client":
        """Create a client co-located with the replicas of ``site``/``zone``.

        With neither given, clients round-robin across sites, mirroring the
        paper's benchmarker spreading load over regions.
        """
        from repro.paxi.client import Client

        if site is None and zone is not None:
            site = self.config.zone_site(zone)
        if site is None:
            sites = self.config.topology.sites
            site = sites[self._client_seq % len(sites)]
        if site not in self.config.topology.sites:
            raise ConfigError(f"unknown client site {site!r}")
        self._client_seq += 1
        client = Client(self, ("client", self._client_seq), site)
        self.clients.append(client)
        return client

    def new_session(
        self, site: str | None = None, zone: int | None = None, max_wait: float = 5.0
    ) -> "Session":
        """Create a typed :class:`~repro.paxi.session.Session` facade.

        Sessions are the recommended way to issue individual commands:
        ``session.put(k, v)`` returns a :class:`~repro.paxi.session.Result`
        carrying the value, latency, and replying replica.
        """
        from repro.paxi.session import Session

        return Session(self, site=site, zone=zone, max_wait=max_wait)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def replica(self, node_id: NodeID) -> "Replica":
        return self.replicas[node_id]

    def nearest_nodes(self, site: str) -> list[NodeID]:
        """Replica IDs sorted nearest-first from ``site``."""
        topo = self.config.topology
        return sorted(
            self.config.node_ids,
            key=lambda nid: (topo.site_rtt_mean_ms(site, self.config.site_of(nid)), nid),
        )

    # ------------------------------------------------------------------
    # Execution and fault injection passthroughs
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.cluster.now

    def run_for(self, seconds: float) -> None:
        self.cluster.run_for(seconds)

    def run_until(self, deadline: float) -> None:
        self.cluster.run_until(deadline)

    def drain(self, max_events: int | None = None) -> None:
        self.cluster.drain(max_events)

    def verify(self) -> tuple[bool, bool]:
        """Run the paper's two correctness checkers over this deployment.

        Returns ``(linearizable, consensus_ok)`` — the Paxi benchmarker's
        "LinearizabilityCheck" option (Table 3) plus the consensus checker.
        """
        from repro.checkers.consensus import check_deployment
        from repro.checkers.linearizability import check_history

        return (
            check_history(self.history.snapshot()).ok,
            check_deployment(self).ok,
        )

    def crash(self, node_id: NodeID, duration: float, at: float | None = None) -> None:
        self.cluster.crash(node_id, duration, at)

    def drop(self, src: Hashable, dst: Hashable, duration: float, at: float | None = None) -> None:
        self.cluster.drop(src, dst, duration, at)

    def slow(self, src: Hashable, dst: Hashable, duration: float, at: float | None = None) -> None:
        self.cluster.slow(src, dst, duration, at)

    def flaky(
        self,
        src: Hashable,
        dst: Hashable,
        duration: float,
        probability: float = 0.5,
        at: float | None = None,
    ) -> None:
        self.cluster.flaky(src, dst, duration, probability, at)
