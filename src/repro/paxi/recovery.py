"""Generic catch-up protocol: log fill + snapshot state transfer.

A node that comes back from a ``reboot`` replays its WAL but may still be
missing recently-committed slots; a node that comes back from a ``wipe``
has nothing at all.  Both use the same peer-to-peer catch-up exchange
(mirroring Raft's InstallSnapshot + AppendEntries retransmission and the
recovery machinery "Scaling Strongly Consistent Replication" builds on):

1. the recovering node sends :class:`CatchupRequest` (``from_slot`` = one
   past the last slot it holds) to one peer at a time;
2. the donor answers with a :class:`CatchupReply` — a state-machine
   :class:`~repro.sim.storage.Snapshot` when the requester is too far
   behind to be served from the donor's log, plus the committed log
   entries above the snapshot, plus how far the donor has committed;
3. the requester installs, advances ``from_slot``, and repeats until it
   has caught up with its donor, rotating donors with capped exponential
   backoff (jittered from the deployment's seeded RNG streams) when a
   donor is slow, dead, or unhelpful.

The reply's ``entries`` payload is protocol-defined (MultiPaxos ships
``(slot, ballot, command)`` triples, Raft ships ``(index, term, command,
requests)`` records); this module only manages the conversation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.paxi.message import Message
from repro.sim.clock import EventHandle
from repro.sim.storage import Snapshot

if TYPE_CHECKING:
    from repro.paxi.node import Replica

#: Marginal wire bytes per shipped log entry (same scale as
#: :attr:`repro.paxi.message.Batch.PER_COMMAND_BYTES`).
CATCHUP_ENTRY_BYTES = 110

#: Default requester retransmit timeout (seconds) before rotating donors.
CATCHUP_BASE_TIMEOUT = 0.05

#: Backoff cap: retransmit intervals never exceed this.
CATCHUP_MAX_TIMEOUT = 0.8


@dataclass(frozen=True)
class CatchupRequest(Message):
    """Ask a peer for everything committed at or above ``from_slot``."""

    from_slot: int = 1


@dataclass(frozen=True)
class CatchupReply(Message):
    """A donor's answer: optional snapshot + committed entries above it.

    ``payload_bytes`` is computed by the donor (snapshot size plus
    per-entry bytes) so the NIC/bandwidth accounting stays honest for
    arbitrarily large transfers.
    """

    from_slot: int = 1
    commit_upto: int = 0
    snapshot: Snapshot | None = None
    entries: tuple = ()
    payload_bytes: int = 0
    leader_hint: Hashable = None
    #: Protocol-specific piggyback (MultiPaxos: the donor's promised ballot,
    #: so a wiped ex-leader can pick a fresh ballot; Raft: the donor's term).
    extra: Any = None

    def wire_size(self) -> int:
        return self.SIZE_BYTES + self.payload_bytes


def entries_payload_bytes(n_entries: int, n_commands: int) -> int:
    """Wire bytes for ``n_entries`` log entries carrying ``n_commands``
    commands in total (batched entries ship every command)."""
    return CATCHUP_ENTRY_BYTES * max(n_entries, n_commands)


class CatchupRunner:
    """Requester-side retransmit loop with donor rotation and backoff.

    The owning replica supplies ``make_request`` (called before every
    transmission, so the request always reflects current progress) and
    calls :meth:`on_progress` when a reply moved it forward (resetting the
    backoff) and :meth:`stop` once fully caught up.  Timeouts double up to
    ``max_timeout`` and each interval is jittered by up to 25% from the
    deployment's seeded streams, so retransmission storms cannot
    synchronize across recovering nodes yet runs stay reproducible.
    """

    def __init__(
        self,
        replica: "Replica",
        donors: list[Hashable],
        make_request: Callable[[], Message],
        base_timeout: float = CATCHUP_BASE_TIMEOUT,
        max_timeout: float = CATCHUP_MAX_TIMEOUT,
    ) -> None:
        if not donors:
            raise ValueError("catch-up needs at least one donor peer")
        self._replica = replica
        self._donors = list(donors)
        self._make_request = make_request
        self._base_timeout = base_timeout
        self._max_timeout = max_timeout
        self._timeout = base_timeout
        self._donor_index = 0
        self._timer: EventHandle | None = None
        self._rng = replica.deployment.cluster.streams.stream(
            f"catchup-{replica.id}"
        )
        self.active = False
        self.attempts = 0

    @property
    def donor(self) -> Hashable:
        return self._donors[self._donor_index % len(self._donors)]

    def start(self) -> None:
        self.active = True
        self._transmit()

    def stop(self) -> None:
        self.active = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def on_progress(self) -> None:
        """A reply advanced us: reset backoff, ask the same donor again."""
        if not self.active:
            return
        self._timeout = self._base_timeout
        self._transmit()

    def _transmit(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.attempts += 1
        self._replica.send(self.donor, self._make_request())
        jitter = 1.0 + 0.25 * self._rng.random()
        self._timer = self._replica.set_timer(self._timeout * jitter, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if not self.active:
            return
        # The donor did not answer in time: rotate and back off.
        self._donor_index += 1
        self._timeout = min(self._timeout * 2.0, self._max_timeout)
        self._transmit()
