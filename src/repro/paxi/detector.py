"""Failure detection for gray failures: φ-accrual + adaptive timeouts.

Crash-stop faults are easy to detect — heartbeats stop, a fixed timeout
fires.  The dominant production failure mode is different ("The
Performance of Paxos in the Cloud", PAPERS.md): a node that is *alive but
slow* keeps feeding every fixed timeout just in time while dragging the
whole quorum down to its service rate.  This module provides the three
detection primitives the protocols build their reaction on:

- :class:`PhiAccrualDetector` — Hayashibara's φ-accrual detector.  Rather
  than a boolean "up/down", it reports a *suspicion level*
  ``φ(t) = -log10 P(heartbeat arrives later than t)`` under a normal model
  of the observed inter-arrival times.  φ = 8 means the silence would be a
  1-in-10^8 event for a healthy peer.  Because the model adapts to the
  measured distribution, the same threshold works on a quiet LAN and a
  jittery WAN.  The detector also tracks a fast/slow EWMA pair of the
  inter-arrival mean whose ratio (:meth:`PhiAccrualDetector.slowdown`)
  exposes *degradation*: a fail-slow peer's heartbeats stretch (they queue
  behind its congested CPU) long before they stop, so the ratio rises
  while φ may still look tolerable.

- :class:`AdaptiveTimeout` — Jacobson/Karels RTT estimation (SRTT + 4 x
  RTTVAR with EWMA updates), the TCP retransmission-timer algorithm, as a
  drop-in replacement for fixed ``retry_timeout``/``election_timeout``
  constants.  Timeouts self-tune to the deployment's actual latency
  instead of being hand-calibrated per topology.

- :class:`NodeHealthMonitor` — a per-peer map of φ-accrual detectors with
  two thresholds, classifying each peer as ``"healthy"``, ``"degraded"``
  (slowdown ratio above ``slow_ratio``, or φ in the suspect band), or
  ``"failed"`` (φ at or above ``phi_threshold``).  Degraded leaders get a
  planned handoff (no availability gap); failed leaders get an election.

Everything here is pure bookkeeping: no timers, no RNG draws, no messages.
Feed it timestamps, read back suspicion — which is what keeps the whole
subsystem opt-in (a deployment that never constructs a monitor is
bit-identical to one before this module existed).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable

from repro.errors import SimulationError

#: Suspicion is capped here: beyond it the survival probability underflows
#: and every verdict reads the same anyway.
PHI_CAP = 30.0

HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"


class PhiAccrualDetector:
    """φ-accrual failure detector over one peer's heartbeat arrivals.

    ``observe(now)`` records a heartbeat; ``phi(now)`` reports the current
    suspicion level.  The inter-arrival distribution is modeled as normal
    over a sliding window (the original paper's choice); ``min_stddev``
    keeps the model honest when the observed arrivals are nearly perfectly
    regular — without the floor, a single delayed heartbeat on a quiet
    simulated LAN would spike φ to the cap.

    ``slowdown()`` is the gray-failure companion signal: the ratio of a
    fast EWMA of the inter-arrival mean (reacting within a few heartbeats)
    to a *frozen healthy baseline* — the mean of the first
    ``baseline_samples`` intervals.  A peer whose service rate degrades by
    k stretches its heartbeat emission by roughly k while remaining
    perfectly alive; the ratio surfaces that long before φ crosses a crash
    threshold, and — unlike φ, whose window re-learns the stretched
    distribution — the frozen baseline never renormalizes a degradation
    away.
    """

    def __init__(
        self,
        window: int = 64,
        min_stddev: float = 2e-3,
        bootstrap_interval: float = 0.05,
        fast_alpha: float = 0.25,
        baseline_samples: int = 32,
    ) -> None:
        if window < 2:
            raise SimulationError(f"phi window must be >= 2, got {window}")
        if min_stddev <= 0:
            raise SimulationError(f"min_stddev must be positive, got {min_stddev!r}")
        self._window = window
        self._min_stddev = min_stddev
        self._bootstrap = bootstrap_interval
        self._intervals: deque[float] = deque()
        self._sum = 0.0
        self._sumsq = 0.0
        self._last_arrival: float | None = None
        self._fast_alpha = fast_alpha
        self._fast: float | None = None
        self._baseline_samples = baseline_samples
        self._baseline_sum = 0.0
        self._baseline_count = 0
        self._baseline: float | None = None  # frozen once warmed
        # Optional one-way delay channel (heartbeat stamped at the sender):
        # same fast-EWMA / frozen-baseline pair, measuring *emission* delay
        # instead of inter-arrival.  Preferred by slowdown() when fed,
        # because a steady timer keeps inter-arrival means honest even on a
        # peer whose every send crawls through a congested queue.
        self._delay_fast: float | None = None
        self._delay_sum = 0.0
        self._delay_count = 0
        self._delay_baseline: float | None = None

    @property
    def last_arrival(self) -> float | None:
        return self._last_arrival

    @property
    def samples(self) -> int:
        return len(self._intervals)

    def observe(self, now: float) -> float | None:
        """Record a heartbeat arrival at local time ``now``.  Returns the
        measured inter-arrival (None for the first observation or after a
        backwards clock step) so callers can feed companion estimators
        like :class:`AdaptiveTimeout` without measuring twice."""
        last = self._last_arrival
        self._last_arrival = now
        if last is None:
            return None
        interval = now - last
        if interval < 0:
            # A backwards clock step (skew fault); treat as a fresh start
            # rather than poisoning the window with a negative interval.
            return None
        self._intervals.append(interval)
        self._sum += interval
        self._sumsq += interval * interval
        if len(self._intervals) > self._window:
            old = self._intervals.popleft()
            self._sum -= old
            self._sumsq -= old * old
        if self._fast is None:
            self._fast = interval
        else:
            self._fast += self._fast_alpha * (interval - self._fast)
        if self._baseline is None:
            self._baseline_sum += interval
            self._baseline_count += 1
            if self._baseline_count >= self._baseline_samples:
                self._baseline = self._baseline_sum / self._baseline_count
        return interval

    def note_delay(self, delay: float) -> None:
        """Record a sender-stamped one-way delay for this peer's heartbeat.
        Negative samples (clock skew between the two nodes exceeds the
        delay) are discarded rather than poisoning the baseline."""
        if delay < 0:
            return
        if self._delay_fast is None:
            self._delay_fast = delay
        else:
            self._delay_fast += self._fast_alpha * (delay - self._delay_fast)
        if self._delay_baseline is None:
            self._delay_sum += delay
            self._delay_count += 1
            if self._delay_count >= self._baseline_samples:
                self._delay_baseline = self._delay_sum / self._delay_count

    def mean(self) -> float:
        if not self._intervals:
            return self._bootstrap
        return self._sum / len(self._intervals)

    def stddev(self) -> float:
        n = len(self._intervals)
        if n < 2:
            return self._min_stddev
        variance = max(0.0, self._sumsq / n - (self._sum / n) ** 2)
        return max(math.sqrt(variance), self._min_stddev)

    def phi(self, now: float) -> float:
        """Suspicion level at ``now``: ``-log10 P(arrival later than now)``.

        0 right after a heartbeat, rising without bound (capped at
        :data:`PHI_CAP`) the longer the silence stretches relative to the
        observed distribution.  Returns 0 before the first heartbeat — an
        unseen peer is not suspect, it is unknown.
        """
        last = self._last_arrival
        if last is None:
            return 0.0
        elapsed = now - last
        if elapsed <= 0:
            return 0.0
        mu = self.mean()
        sigma = self.stddev()
        # Survival function of Normal(mu, sigma) at `elapsed`.
        z = (elapsed - mu) / (sigma * math.sqrt(2.0))
        p_later = 0.5 * math.erfc(z)
        if p_later < 10.0**-PHI_CAP:
            return PHI_CAP
        return -math.log10(p_later)

    def slowdown(self) -> float:
        """Ratio of the recent mean to the frozen healthy baseline
        (1.0 = steady).  Computed over the sender-stamped delay channel
        when it has warmed — emission delay tracks the peer's internal
        queueing even while a steady heartbeat timer keeps inter-arrivals
        flat — and over inter-arrivals otherwise.  Returns 1.0 until the
        chosen baseline has ``baseline_samples`` observations."""
        if self._delay_fast is not None and self._delay_baseline:
            return self._delay_fast / self._delay_baseline
        if not self._fast or not self._baseline:
            return 1.0
        return self._fast / self._baseline

    def reset(self) -> None:
        """Forget everything (peer changed identity, e.g. a new leader)."""
        self._intervals.clear()
        self._sum = 0.0
        self._sumsq = 0.0
        self._last_arrival = None
        self._fast = None
        self._baseline_sum = 0.0
        self._baseline_count = 0
        self._baseline = None
        self._delay_fast = None
        self._delay_sum = 0.0
        self._delay_count = 0
        self._delay_baseline = None


class AdaptiveTimeout:
    """Jacobson/Karels adaptive timeout: ``SRTT + k x RTTVAR``.

    Feed it samples (RTTs, or heartbeat inter-arrivals when timing a
    periodic signal) via :meth:`observe`; read :attr:`timeout`.  Until the
    first sample arrives the timeout is ``initial``.  ``floor``/``ceiling``
    clamp the result — the floor guards against a variance collapse on an
    idle, perfectly regular link; the ceiling bounds worst-case detection
    latency however noisy the estimate gets.
    """

    def __init__(
        self,
        initial: float = 0.15,
        floor: float = 0.01,
        ceiling: float = 2.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
    ) -> None:
        if not 0 < floor <= ceiling:
            raise SimulationError(
                f"need 0 < floor <= ceiling, got {floor!r}/{ceiling!r}"
            )
        self._initial = initial
        self._floor = floor
        self._ceiling = ceiling
        self._alpha = alpha
        self._beta = beta
        self._k = k
        self._srtt: float | None = None
        self._rttvar = 0.0
        self.samples = 0

    def observe(self, sample: float) -> None:
        if sample < 0:
            return
        self.samples += 1
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
            return
        self._rttvar += self._beta * (abs(self._srtt - sample) - self._rttvar)
        self._srtt += self._alpha * (sample - self._srtt)

    @property
    def srtt(self) -> float | None:
        return self._srtt

    @property
    def timeout(self) -> float:
        if self._srtt is None:
            return self._initial
        return min(self._ceiling, max(self._floor, self._srtt + self._k * self._rttvar))


class NodeHealthMonitor:
    """Per-peer suspicion bookkeeping for one replica.

    One :class:`PhiAccrualDetector` per peer, lazily created, plus the two
    thresholds that turn raw suspicion into a verdict:

    - φ >= ``phi_threshold``  →  ``"failed"``   (elect a replacement);
    - slowdown >= ``slow_ratio`` (with enough samples to trust it), or φ
      past the halfway suspect band  →  ``"degraded"``  (plan a handoff);
    - otherwise  →  ``"healthy"``.

    The degraded band exists because the right reaction differs: a failed
    leader needs an election (disruptive, unavoidable); a degraded leader
    is still perfectly able to run the *coordinated* handoff that costs
    zero availability.
    """

    def __init__(
        self,
        phi_threshold: float = 8.0,
        slow_ratio: float = 2.5,
        window: int = 64,
        min_stddev: float = 2e-3,
        min_samples: int = 8,
    ) -> None:
        if phi_threshold <= 0:
            raise SimulationError(f"phi_threshold must be positive, got {phi_threshold!r}")
        if slow_ratio <= 1.0:
            raise SimulationError(f"slow_ratio must exceed 1.0, got {slow_ratio!r}")
        self.phi_threshold = phi_threshold
        self.slow_ratio = slow_ratio
        self._window = window
        self._min_stddev = min_stddev
        self._min_samples = min_samples
        self._peers: dict[Hashable, PhiAccrualDetector] = {}

    def _detector(self, peer: Hashable) -> PhiAccrualDetector:
        detector = self._peers.get(peer)
        if detector is None:
            detector = PhiAccrualDetector(
                window=self._window, min_stddev=self._min_stddev
            )
            self._peers[peer] = detector
        return detector

    def observe(
        self, peer: Hashable, now: float, delay: float | None = None
    ) -> float | None:
        """Record a heartbeat (or any liveness-bearing message) from
        ``peer`` at local time ``now``; returns the inter-arrival.
        ``delay`` is the optional sender-stamped one-way delay, feeding
        the degradation (slowdown) channel."""
        detector = self._detector(peer)
        if delay is not None:
            detector.note_delay(delay)
        return detector.observe(now)

    def phi(self, peer: Hashable, now: float) -> float:
        detector = self._peers.get(peer)
        return 0.0 if detector is None else detector.phi(now)

    def slowdown(self, peer: Hashable) -> float:
        detector = self._peers.get(peer)
        return 1.0 if detector is None else detector.slowdown()

    def samples(self, peer: Hashable) -> int:
        """Observed inter-arrivals for ``peer`` (0 = never heard from).
        Callers use this to tell a *trusted-healthy* verdict from a mere
        lack of evidence."""
        detector = self._peers.get(peer)
        return 0 if detector is None else detector.samples

    def assess(self, peer: Hashable, now: float) -> str:
        """Classify ``peer`` as healthy / degraded / failed right now.

        Silence (``FAILED``) is never suppressed by the warm-up gate —
        a peer that stopped heartbeating two samples in is just as dead
        as one with a full window.  The *degraded* verdict, by contrast,
        compares against a learned baseline and needs ``min_samples`` of
        evidence before it is trustworthy."""
        detector = self._peers.get(peer)
        if detector is None:
            return HEALTHY
        phi = detector.phi(now)
        if phi >= self.phi_threshold:
            return FAILED
        if detector.samples < self._min_samples:
            return HEALTHY
        if detector.slowdown() >= self.slow_ratio or phi >= self.phi_threshold / 2.0:
            return DEGRADED
        return HEALTHY

    def forget(self, peer: Hashable) -> None:
        """Drop ``peer``'s history (it changed role or was replaced)."""
        self._peers.pop(peer, None)
