"""Client library (paper section 4.1, "RESTful client" + fault commands).

A :class:`Client` issues read/write commands against any replica, measures
per-request latency in virtual time, records the operation history for the
checkers, and exposes the paper's four fault-injection commands —
``crash``, ``drop``, ``slow``, ``flaky`` — exactly as the Paxi client
library does.

Clients are load generators, not modeled machines: they have no processing
queue of their own (their cost is part of ``DL``, the client-to-leader
round trip, via the network).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Hashable

from repro.errors import SimulationError
from repro.paxi.deployment import Deployment
from repro.paxi.ids import NodeID
from repro.paxi.message import ClientReply, ClientRequest, Command, Rejected
from repro.sim.clock import EventHandle

OnDone = Callable[[ClientReply, float], None]
#: ``on_fail(reason, elapsed)`` — fired when a request concludes *without*
#: a reply.  ``reason`` is one of ``FAILURE_REASONS``.
OnFail = Callable[[str, float], None]

#: Typed failure taxonomy surfaced through ``failure_reason()`` and
#: :attr:`repro.paxi.session.Result.failure`:
#:
#: - ``"rejected"`` — a replica's admission control shed the request;
#: - ``"overloaded"`` — the client's own defenses (retry budget, circuit
#:   breaker) stopped transmitting into a saturated cluster;
#: - ``"retries_exhausted"`` — ``max_retries`` / ``max_attempts`` ran out;
#: - ``"abandoned"`` — the issuer gave up via :meth:`Client.abandon`.
FAILURE_REASONS = ("rejected", "overloaded", "retries_exhausted", "abandoned")


@dataclass
class _Pending:
    command: Command
    target: NodeID
    invoked_at: float
    on_done: OnDone | None
    history_token: int | None = None
    retries: int = 0
    retry_handle: EventHandle | None = None
    on_fail: OnFail | None = None
    deadline: float | None = None


class Client:
    """A benchmark client bound to one site."""

    def __init__(self, deployment: Deployment, address: Hashable, site: str) -> None:
        self.deployment = deployment
        self.address = address
        self.site = site
        self._network = deployment.cluster.network
        self._loop = deployment.cluster.loop
        self._pending: dict[int, _Pending] = {}
        self._next_request_id = 0
        #: Base retransmit timeout (None disables retries).  Retry k waits
        #: ``retry_timeout * retry_backoff**k`` (capped at ``retry_cap``)
        #: plus up to 25% deterministic jitter, so a herd of clients
        #: retrying into a recovering cluster spreads out instead of
        #: stampeding — the first retransmission still fires at exactly
        #: ``retry_timeout`` for predictable failover.
        self.retry_timeout: float | None = None
        self.retry_backoff: float = 2.0
        self.retry_cap: float = 1.0
        self.max_retries: int = 8
        #: Hard ceiling on *transmissions* per request (1 = never
        #: retransmit).  ``None`` keeps the historical behavior where only
        #: ``max_retries`` bounds the retry loop — so soak tests against a
        #: dead quorum can opt into terminating with a typed failure.
        self.max_attempts: int | None = None
        #: Token-bucket retry budget: at most ``retry_budget`` retransmit
        #: tokens, refilled at ``retry_refill_rate`` per second.  ``None``
        #: disables the budget.  When a retransmission finds the bucket
        #: empty the request fails typed ``"overloaded"`` — the defense
        #: that breaks the retry-storm → metastable-failure loop.
        self.retry_budget: float | None = None
        self.retry_refill_rate: float = 10.0
        #: Circuit breaker: after ``breaker_threshold`` *consecutive*
        #: failures the client fails new requests fast (no transmission)
        #: for ``breaker_cooldown`` seconds, then lets one probe through;
        #: the probe's outcome closes or re-opens the circuit.  ``None``
        #: disables the breaker.
        self.breaker_threshold: int | None = None
        self.breaker_cooldown: float = 1.0
        self.completed = 0
        self.failed = 0
        #: Requests shed by a replica (explicit ``Rejected`` replies).
        self.rejected = 0
        #: Requests the client's own defenses concluded ``"overloaded"``.
        self.overloaded = 0
        self._attempts_done: dict[int, int] = {}
        self._failure_reasons: dict[int, str] = {}
        self._retry_tokens: float | None = None  # lazily seeded from retry_budget
        self._budget_at = 0.0
        self._breaker_failures = 0
        self._breaker_open_until = 0.0
        self._breaker_probe: int | None = None
        self._retry_rng = deployment.cluster.streams.stream(f"client-retry-{address}")
        self._tracer = deployment.cluster.obs.tracer
        deployment.cluster.add_lightweight_endpoint(address, site, self._on_receive)
        self._preferred = self._spread_preferences(deployment, address, site)
        # Replicas advertise the current leader in their replies; later
        # requests go straight there instead of paying a forwarding hop.
        self._sticky: NodeID | None = None
        # Session consistency (relaxed-read protocols): remember the latest
        # version token per key and attach it to reads, guaranteeing
        # read-your-writes and monotonic reads without consensus rounds.
        self.session_reads = False
        # Relaxed-read routing: send reads to the nearest replica even when
        # a leader hint is cached (writes still follow the hint).
        self.local_reads = False
        self._key_versions: dict[Hashable, int] = {}

    @staticmethod
    def _spread_preferences(
        deployment: Deployment, address: Hashable, site: str
    ) -> list[NodeID]:
        """Nearest-first node ranking, rotated among equal-distance nodes so
        that co-located clients spread across replicas instead of piling on
        one (essential for multi-leader protocols in a LAN, where every
        replica is equidistant)."""
        ordered = deployment.nearest_nodes(site)
        topology = deployment.config.topology
        head_rtt = topology.site_rtt_mean_ms(site, deployment.config.site_of(ordered[0]))
        head = [
            nid
            for nid in ordered
            if topology.site_rtt_mean_ms(site, deployment.config.site_of(nid)) == head_rtt
        ]
        tail = ordered[len(head) :]
        # Rotate by the client's creation sequence number (string hashing is
        # process-randomized and would break run-to-run determinism).
        seq = address[1] if isinstance(address, tuple) and len(address) == 2 else 0
        rotation = int(seq) % len(head)
        return head[rotation:] + head[:rotation] + tail

    # ------------------------------------------------------------------
    # Issuing requests
    # ------------------------------------------------------------------

    def invoke(
        self,
        command: Command,
        target: NodeID | None = None,
        on_done: OnDone | None = None,
        record: bool = True,
        on_fail: OnFail | None = None,
        deadline: float | None = None,
    ) -> int:
        """Send ``command`` to ``target`` (default: nearest replica).

        Returns the request id.  ``on_done(reply, latency)`` fires when the
        reply arrives; the completed operation is also appended to the
        deployment-wide history for the checkers.

        ``record=False`` skips the history: internal bookkeeping commands
        (the 2PC layer's lock CAS traffic) must stay invisible to the
        linearizability checker, which reasons only about application keys.

        ``on_fail(reason, elapsed)`` fires instead of ``on_done`` when the
        request concludes without a reply (see ``FAILURE_REASONS``).
        ``deadline`` (absolute virtual time) rides on the wire so replicas
        running ``shed_policy="deadline"`` can drop doomed work early.

        With the circuit breaker open, the request fails fast as
        ``"overloaded"`` without transmitting anything — and without ever
        entering the history (a clean, known-not-executed failure).
        """
        if self._breaker_blocks():
            self._next_request_id += 1
            request_id = self._next_request_id
            self.failed += 1
            self.overloaded += 1
            self._attempts_done[request_id] = 0
            self._failure_reasons[request_id] = "overloaded"
            if on_fail is not None:
                on_fail("overloaded", 0.0)
            return request_id
        if target is None:
            if command.is_read and (
                self.local_reads or command.read_mode in ("quorum", "local")
            ):
                # These read paths are served by whichever replica the
                # client contacts — route to the nearest one instead of
                # chasing the leader hint.
                target = self._preferred[0]
            else:
                target = self._sticky if self._sticky is not None else self._preferred[0]
        if self.session_reads and command.is_read:
            command = replace(command, min_version=self._key_versions.get(command.key, 0))
        self._next_request_id += 1
        request_id = self._next_request_id
        pending = _Pending(
            command, target, self._loop.now, on_done, on_fail=on_fail, deadline=deadline
        )
        if self.breaker_threshold is not None and self._breaker_failures >= self.breaker_threshold:
            # Cooldown just expired: this request is the half-open probe.
            self._breaker_probe = request_id
        if record:
            pending.history_token = self.deployment.history.begin(
                self.address, command.op, command.key, command.value, pending.invoked_at
            )
        self._pending[request_id] = pending
        if self._tracer.enabled:
            self._tracer.begin(
                self.address, request_id, pending.invoked_at, command.op, command.key
            )
        self._transmit(request_id, pending)
        return request_id

    # ``Client.get`` / ``Client.put`` were removed after a deprecation
    # cycle: use ``Session.get/put/txn`` (``deployment.new_session()``) for
    # typed results, or ``invoke`` for callback-driven load generation.
    # See README "Migrating from Client.get/put".

    def _transmit(self, request_id: int, pending: _Pending) -> None:
        request = ClientRequest(
            command=pending.command,
            client=self.address,
            request_id=request_id,
            deadline=pending.deadline,
        )
        self._network.transit(self.address, pending.target, request, ClientRequest.SIZE_BYTES)
        if self.retry_timeout is not None:
            pending.retry_handle = self._loop.call_after(
                self._retry_delay(pending.retries), self._on_timeout, request_id
            )

    @property
    def effective_retry_cap(self) -> float:
        """The backoff ceiling `_retry_delay` actually applies:
        ``max(retry_cap, retry_timeout)``.

        The clamp lives here, in exactly one place: a ``retry_cap`` below
        the base ``retry_timeout`` would make retry *k* wait less than the
        first transmission did, so the base timeout is a floor.  With the
        defaults (``retry_cap=1.0``) the configured cap only takes effect
        when ``retry_timeout < 1.0``; for larger base timeouts the cap is
        silently the base timeout itself.
        """
        assert self.retry_timeout is not None
        return max(self.retry_cap, self.retry_timeout)

    def _retry_delay(self, retries: int) -> float:
        """Capped exponential backoff with deterministic jitter.

        The first transmission (``retries == 0``) waits exactly
        ``retry_timeout``; retry ``k`` waits ``retry_timeout * backoff**k``
        capped at :attr:`effective_retry_cap` (NOT raw ``retry_cap``: caps
        below the base timeout are clamped up to it), stretched by up to
        25% drawn from the deployment's seeded streams.
        """
        assert self.retry_timeout is not None
        if retries == 0:
            return self.retry_timeout
        delay = min(self.retry_timeout * self.retry_backoff**retries, self.effective_retry_cap)
        return delay * (1.0 + 0.25 * self._retry_rng.random())

    def _on_timeout(self, request_id: int) -> None:
        pending = self._pending.get(request_id)
        if pending is None:
            return
        pending.retries += 1
        self._sticky = None  # the cached leader may be the failed node
        out_of_attempts = pending.retries > self.max_retries or (
            self.max_attempts is not None and pending.retries + 1 > self.max_attempts
        )
        if out_of_attempts:
            del self._pending[request_id]
            # attempts = pending.retries = transmissions made
            self._conclude_failure(
                request_id, pending, "retries_exhausted", pending.retries
            )
            return
        if self.retry_budget is not None and not self._take_retry_token():
            del self._pending[request_id]
            self.overloaded += 1
            self._conclude_failure(request_id, pending, "overloaded", pending.retries)
            return
        # Rotate to the next-nearest replica, the Paxi client's failover.
        ring = self._preferred
        next_index = (ring.index(pending.target) + 1) % len(ring)
        pending.target = ring[next_index]
        self._tracer.event((self.address, request_id), "retry", self._loop.now, self.address)
        self._transmit(request_id, pending)

    def _take_retry_token(self) -> bool:
        """Draw one token from the retry budget (True = may retransmit)."""
        assert self.retry_budget is not None
        now = self._loop.now
        tokens = self._retry_tokens if self._retry_tokens is not None else self.retry_budget
        tokens = min(self.retry_budget, tokens + (now - self._budget_at) * self.retry_refill_rate)
        self._budget_at = now
        if tokens >= 1.0:
            self._retry_tokens = tokens - 1.0
            return True
        self._retry_tokens = tokens
        return False

    def _breaker_blocks(self) -> bool:
        """True while the circuit is open (and no probe slot is free)."""
        if self.breaker_threshold is None or self._breaker_failures < self.breaker_threshold:
            return False
        if self._loop.now < self._breaker_open_until:
            return True
        # Cooldown elapsed: half-open.  One probe flies; everyone else
        # keeps failing fast until its outcome is known.
        return self._breaker_probe is not None and self._breaker_probe in self._pending

    def _note_breaker_failure(self) -> None:
        if self.breaker_threshold is None:
            return
        self._breaker_failures += 1
        if self._breaker_failures >= self.breaker_threshold:
            self._breaker_open_until = self._loop.now + self.breaker_cooldown
            self._breaker_probe = None

    def _conclude_failure(
        self,
        request_id: int,
        pending: _Pending,
        reason: str,
        attempts: int,
        discard_history: bool = False,
    ) -> None:
        """Shared end-of-life path for requests that will never get a reply.

        ``discard_history=True`` removes the operation from the recorder —
        only sound when *no* transmitted copy could have been executed
        (first-attempt rejection); otherwise the open record stays, and the
        linearizability checker treats a pending write as maybe-applied.
        """
        if pending.retry_handle is not None:
            pending.retry_handle.cancel()
        self.failed += 1
        self._attempts_done[request_id] = attempts
        self._failure_reasons[request_id] = reason
        self._note_breaker_failure()
        if discard_history and pending.history_token is not None:
            self.deployment.history.discard(pending.history_token)
        self._tracer.fail((self.address, request_id), self._loop.now, self.address)
        if pending.on_fail is not None:
            pending.on_fail(reason, self._loop.now - pending.invoked_at)

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------

    def _on_receive(self, src: Hashable, message: Any, size_bytes: int) -> None:
        if type(message) is Rejected:
            self._on_rejected(message)
            return
        if not isinstance(message, ClientReply):
            raise SimulationError(f"client got unexpected {type(message).__name__}")
        pending = self._pending.pop(message.request_id, None)
        if pending is None:
            return  # stale reply after a retry already completed
        if pending.retry_handle is not None:
            pending.retry_handle.cancel()
        if self.breaker_threshold is not None:
            self._breaker_failures = 0  # any success closes the circuit
            self._breaker_probe = None
        if message.leader_hint is not None:
            self._sticky = message.leader_hint
        if message.version:
            key = pending.command.key
            self._key_versions[key] = max(self._key_versions.get(key, 0), message.version)
        now = self._loop.now
        latency = now - pending.invoked_at
        self.completed += 1
        self._attempts_done[message.request_id] = pending.retries + 1
        self._tracer.end((self.address, message.request_id), now, self.address)
        if pending.history_token is not None:
            self.deployment.history.complete(pending.history_token, message.value, now)
        if pending.on_done is not None:
            pending.on_done(message, latency)

    def _on_rejected(self, message: Rejected) -> None:
        """A replica's admission control bounced this request.

        Rejection is honored, not fought: the request concludes with a
        typed ``"rejected"`` failure instead of instantly retransmitting
        (instant retry-on-reject would defeat the shedding it reports).
        A first-attempt rejection is *provably* unexecuted — the rejecting
        replica never processed it — so the operation is discarded from
        the history as a clean failure.  After a retransmission, an older
        copy may still be in flight, so the maybe-applied record stays.
        """
        pending = self._pending.pop(message.request_id, None)
        if pending is None:
            return  # stale rejection: a retransmitted copy already won
        self.rejected += 1
        self._sticky = None  # the shedding node may be a dying leader
        self._conclude_failure(
            message.request_id,
            pending,
            "rejected",
            pending.retries + 1,
            discard_history=pending.retries == 0,
        )

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def attempts(self, request_id: int) -> int:
        """Transmissions made for ``request_id`` (1 = no retries).

        Valid for in-flight and finished requests alike; Sessions surface
        it as :attr:`repro.paxi.session.Result.attempts`.
        """
        pending = self._pending.get(request_id)
        if pending is not None:
            return pending.retries + 1
        return self._attempts_done.get(request_id, 1)

    def abandon(self, request_id: int) -> None:
        """Give up on an in-flight request: stop retrying and ignore any
        late reply (it will look like a stale duplicate).

        The shard-rebalance drain uses this to cut off stragglers bound for
        a migrating bucket: the operation's history record stays open
        (``returned_at = inf``), which is exactly how the linearizability
        checker accounts for a write that may or may not have landed on the
        source group.
        """
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        self._conclude_failure(request_id, pending, "abandoned", pending.retries + 1)

    def abandoned(self, request_id: int) -> bool:
        """True iff the client gave up on ``request_id`` after exhausting
        its retry budget (as opposed to still waiting or having finished)."""
        return (
            request_id not in self._pending and request_id in self._attempts_done
        )

    def failure_reason(self, request_id: int) -> str | None:
        """How ``request_id`` failed (one of ``FAILURE_REASONS``), or None
        while it is in flight / after it succeeded.  Sessions surface this
        as :attr:`repro.paxi.session.Result.failure`."""
        return self._failure_reasons.get(request_id)

    # ------------------------------------------------------------------
    # Fault-injection commands (paper section 4.2, "Availability")
    # ------------------------------------------------------------------

    def crash(self, node: NodeID, duration: float | None = None) -> None:
        """Freeze ``node`` for ``duration`` seconds (None = permanently)."""
        self.deployment.crash(node, duration)

    def reboot(self, node: NodeID, downtime: float = 0.05) -> None:
        """Power-cycle ``node``: volatile state lost, disk survives."""
        self.deployment.reboot(node, downtime)

    def wipe(self, node: NodeID, downtime: float = 0.05) -> None:
        """Destroy ``node``'s disk and restart it empty (state transfer)."""
        self.deployment.wipe(node, downtime)

    def drop(self, src: NodeID, dst: NodeID, duration: float) -> None:
        """Drop every message from ``src`` to ``dst`` for ``duration`` s."""
        self.deployment.drop(src, dst, duration)

    def slow(self, src: NodeID, dst: NodeID, duration: float) -> None:
        """Delay messages from ``src`` to ``dst`` for ``duration`` s."""
        self.deployment.slow(src, dst, duration)

    def flaky(self, src: NodeID, dst: NodeID, duration: float, probability: float = 0.5) -> None:
        """Randomly drop messages from ``src`` to ``dst``."""
        self.deployment.flaky(src, dst, duration, probability)
