"""Operation history recording for offline correctness checking.

Clients record one :class:`Operation` per completed request — with real
(virtual) invocation and response times — which feeds the linearizability
checker (:mod:`repro.checkers.linearizability`).  Replicas additionally
expose per-key state-machine histories for the consensus checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class Operation:
    """A completed client operation with its real-time interval."""

    client: Hashable
    op: str  # "GET" or "PUT"
    key: Hashable
    value: Any  # the value written (PUT) or None (GET)
    output: Any  # the value returned to the client
    invoked_at: float
    returned_at: float

    def __post_init__(self) -> None:
        if self.returned_at < self.invoked_at:
            raise ValueError(
                f"operation returned at {self.returned_at} before invocation "
                f"at {self.invoked_at}"
            )

    @property
    def latency(self) -> float:
        return self.returned_at - self.invoked_at

    @property
    def is_read(self) -> bool:
        return self.op == "GET"


class HistoryRecorder:
    """Collects operations from every client in one benchmark run.

    Invocations are registered up front so that operations still in flight
    are not silently dropped: an invoked-but-unacknowledged write may have
    taken effect, and a sound linearizability check must account for it
    (see :meth:`snapshot`).
    """

    def __init__(self) -> None:
        self._operations: list[Operation] = []
        self._pending: dict[int, tuple] = {}
        self._next_token = 0

    def record(self, operation: Operation) -> None:
        """Record an already-completed operation directly."""
        self._operations.append(operation)

    def begin(self, client: Hashable, op: str, key: Hashable, value: Any, invoked_at: float) -> int:
        """Register an invocation; returns a token for :meth:`complete`."""
        self._next_token += 1
        self._pending[self._next_token] = (client, op, key, value, invoked_at)
        return self._next_token

    def complete(self, token: int, output: Any, returned_at: float) -> Operation:
        """Mark a pending invocation as completed."""
        client, op, key, value, invoked_at = self._pending.pop(token)
        operation = Operation(
            client=client,
            op=op,
            key=key,
            value=value,
            output=output,
            invoked_at=invoked_at,
            returned_at=returned_at,
        )
        self._operations.append(operation)
        return operation

    def discard(self, token: int) -> None:
        """Drop a pending invocation that is *known* never to have taken
        effect anywhere — a first-transmission request answered with an
        explicit ``Rejected`` before any replica processed it, or one a
        circuit breaker failed fast without transmitting.

        This is what makes shedding sound for the checkers: a cleanly
        rejected request leaves no trace in the history (rejected ≠ lost),
        whereas :meth:`snapshot` must keep a *maybe-applied* write open
        forever.  Never call this for a request that was retransmitted —
        an earlier copy may still be in flight and could land.
        """
        self._pending.pop(token, None)

    @property
    def operations(self) -> list[Operation]:
        """Completed operations only."""
        return list(self._operations)

    def snapshot(self) -> list[Operation]:
        """Completed operations plus in-flight **writes** (with an open
        response interval, ``returned_at = +inf``) — the sound input for the
        linearizability checker.  In-flight reads constrain nothing and are
        omitted."""
        import math

        out = list(self._operations)
        for client, op, key, value, invoked_at in self._pending.values():
            if op == "PUT":
                out.append(
                    Operation(
                        client=client,
                        op=op,
                        key=key,
                        value=value,
                        output=value,
                        invoked_at=invoked_at,
                        returned_at=math.inf,
                    )
                )
        return out

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def __len__(self) -> int:
        return len(self._operations)

    def per_key(self) -> dict[Hashable, list[Operation]]:
        """Operations grouped by key, sorted by invocation time — the input
        format of the paper's linearizability checker."""
        grouped: dict[Hashable, list[Operation]] = {}
        for operation in self._operations:
            grouped.setdefault(operation.key, []).append(operation)
        for ops in grouped.values():
            ops.sort(key=lambda o: o.invoked_at)
        return grouped

    def latencies(self) -> list[float]:
        return [op.latency for op in self._operations]
