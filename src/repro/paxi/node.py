"""Replica runtime: event-handler registration and message passing.

Paxi deliberately avoids blocking primitives: every protocol is a set of
event handlers over a ``Send / Broadcast / Multicast`` message-passing
interface (paper section 4.1, "Networking").  :class:`Replica` provides that
interface on top of the simulated machine and network:

- every received message is charged ``t_in`` (scaled by the message type's
  ``WEIGHT``) plus NIC time on the replica's single CPU+NIC queue before its
  handler runs;
- every send is charged ``t_out`` plus NIC time; a broadcast pays ``t_out``
  once and NIC time per copy, matching the paper's accounting.

Protocol implementations subclass :class:`Replica`, call :meth:`register`
for each of their message dataclasses, and use ``send`` / ``broadcast`` /
``set_timer`` — nothing else.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.errors import ProtocolError
from repro.paxi.ids import NodeID
from repro.paxi.kvstore import MultiVersionStore
from repro.paxi.message import Batch, ClientReply, ClientRequest, Rejected
from repro.sim.clock import EventHandle
from repro.sim.storage import WAL_RECORD_BYTES, Snapshot, WalRecord, WalWriter

if TYPE_CHECKING:
    from repro.paxi.deployment import Deployment


# Per-message-class traits: (WEIGHT, SIZE_BYTES, has wire_size()).  All
# three are class-level declarations on the message dataclasses, so they
# are resolved once per class instead of via getattr on every message.
_CLASS_TRAITS: dict[type, tuple[float, int, bool]] = {}


def _class_traits(cls: type) -> tuple[float, int, bool]:
    traits = _CLASS_TRAITS.get(cls)
    if traits is None:
        traits = (
            getattr(cls, "WEIGHT", 1.0),
            getattr(cls, "SIZE_BYTES", 100),
            callable(getattr(cls, "wire_size", None)),
        )
        _CLASS_TRAITS[cls] = traits
    return traits


def _wire_size(message: Any) -> int:
    """Instance wire size when the message provides one, else the class's."""
    _weight, size, has_wire = _class_traits(type(message))
    return message.wire_size() if has_wire else size


def wal_record_bytes(command: Any) -> int:
    """WAL record size for a log entry carrying ``command``.

    Batched entries write every command's payload, so their records grow
    with the batch — this is what lets group commit amortize one fsync
    over a whole batch without under-charging disk bandwidth.
    """
    if isinstance(command, Batch):
        return WAL_RECORD_BYTES + command.extra_bytes()
    return WAL_RECORD_BYTES


class Batcher:
    """Coalesces pending client requests into multi-command proposals.

    A replica (usually the leader) feeds every admitted :class:`ClientRequest`
    through :meth:`add`.  The batcher flushes — invoking ``flush_fn`` with the
    buffered requests — as soon as ``max_size`` requests have accumulated, or
    when ``window`` seconds of virtual time elapse after the first request of
    the batch, whichever comes first.  A ``window`` of zero still coalesces
    same-instant arrivals: the flush timer fires after the current event
    cascade drains, so a burst delivered at one timestamp forms one batch.

    The batcher never reorders: requests leave in arrival order, and the
    protocol replicates each flushed group as a single log entry (a
    :class:`~repro.paxi.message.Batch`), fanning replies out per command at
    execution.
    """

    def __init__(
        self,
        replica: "Replica",
        flush_fn: Callable[[list[ClientRequest]], None],
        window: float,
        max_size: int,
    ) -> None:
        if window < 0:
            raise ProtocolError(f"batch window must be >= 0, got {window!r}")
        if max_size < 1:
            raise ProtocolError(f"batch max_size must be >= 1, got {max_size!r}")
        self.replica = replica
        self._flush_fn = flush_fn
        self.window = window
        self.max_size = max_size
        self._pending: list[ClientRequest] = []
        self._timer: EventHandle | None = None
        self.batches_flushed = 0
        self.commands_flushed = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def mean_batch_size(self) -> float:
        """Average commands per flushed batch (0.0 before the first flush)."""
        if self.batches_flushed == 0:
            return 0.0
        return self.commands_flushed / self.batches_flushed

    def add(self, request: ClientRequest) -> None:
        """Buffer ``request``; flush if the batch is full, else arm the window."""
        self._pending.append(request)
        if len(self._pending) >= self.max_size:
            self.flush()
        elif self._timer is None:
            self._timer = self.replica.set_timer(self.window, self._on_window)

    def _on_window(self) -> None:
        self._timer = None
        self.flush()

    def flush(self) -> None:
        """Emit the pending batch (if any) through ``flush_fn`` now."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        group, self._pending = self._pending, []
        self.batches_flushed += 1
        self.commands_flushed += len(group)
        self._flush_fn(group)

    def drain(self) -> list[ClientRequest]:
        """Return pending requests without flushing (leadership handoff)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        group, self._pending = self._pending, []
        return group


class _AdmissionState:
    """Per-replica admission-control bookkeeping (exists only when the
    config enables a gate, so the default ingress path stays untouched)."""

    __slots__ = ("queue_limit", "max_inflight", "policy", "inflight", "shed", "shed_by_reason")

    def __init__(self, queue_limit: int | None, max_inflight: int | None, policy: str) -> None:
        self.queue_limit = queue_limit
        self.max_inflight = max_inflight
        self.policy = policy
        #: Admitted-but-unanswered client requests: (client, request_id) ->
        #: deadline (inf when the request carries none).  Entries clear when
        #: the reply (or a forward to another replica) leaves this node, or
        #: lazily once their deadline passes.
        self.inflight: dict[tuple, float] = {}
        self.shed = 0
        self.shed_by_reason: dict[str, int] = {}


class Replica:
    """Base class for protocol replicas."""

    def __init__(self, deployment: "Deployment", node_id: NodeID) -> None:
        self.deployment = deployment
        self.id = node_id
        self.config = deployment.config
        self.store = MultiVersionStore()
        self._handlers: dict[type, Callable[[Hashable, Any], None]] = {}
        self._server = deployment.attach_replica(self)
        self.loop = deployment.cluster.loop
        #: This node's local wall clock (loop time + skew offset).  Lease
        #: validity is judged against this, never against ``loop.now``.
        self.clock = deployment.clock_for(node_id)
        self._network = deployment.cluster.network
        self._profile = deployment.config.profile
        self._tracer = deployment.cluster.obs.tracer
        self._halted = False
        # Durable storage (None when durability == "none"): the Disk lives
        # on the Deployment and survives restarts; the WalWriter is this
        # incarnation's volatile write path.
        self.disk = deployment.disk_for(node_id)
        self._wal_writer = (
            WalWriter(self._server, self.disk, self.config.durability)
            if self.disk is not None
            else None
        )
        self._snapshot_inflight = False
        # Admission control / load shedding: None unless the config sets a
        # gate, so the hot receive path pays one attribute test.
        self._admission = (
            _AdmissionState(
                self.config.queue_limit, self.config.max_inflight, self.config.shed_policy
            )
            if self.config.admission_enabled
            else None
        )
        # Priority lane (params: priority_lanes=True): protocol-internal
        # messages drain before queued client requests, so a saturated
        # replica still answers heartbeats / Phase-1 / catch-up promptly
        # instead of starving them behind the data-plane backlog.
        self._priority_lanes = bool(self.config.param("priority_lanes", False))
        #: Why this incarnation exists: None for a fresh start,
        #: "reboot" (disk intact) or "wipe" (disk lost) after a restart.
        self.restart_reason = deployment.restart_context(node_id)

    # ------------------------------------------------------------------
    # Identity and membership
    # ------------------------------------------------------------------

    @property
    def peers(self) -> list[NodeID]:
        """Every other replica in the deployment."""
        return [nid for nid in self.config.node_ids if nid != self.id]

    @property
    def site(self) -> str:
        return self.config.site_of(self.id)

    def zone_peers(self, zone: int | None = None) -> list[NodeID]:
        """Replicas in ``zone`` (default: this replica's zone), self excluded."""
        z = self.id.zone if zone is None else zone
        return [nid for nid in self.config.ids_in_zone(z) if nid != self.id]

    # ------------------------------------------------------------------
    # Handler registration and dispatch
    # ------------------------------------------------------------------

    def register(self, message_type: type, handler: Callable[[Hashable, Any], None]) -> None:
        """Route messages of exactly ``message_type`` to ``handler(src, msg)``."""
        if message_type in self._handlers:
            raise ProtocolError(
                f"{self.id}: handler for {message_type.__name__} already registered"
            )
        self._handlers[message_type] = handler

    def on_network_receive(self, src: Hashable, message: Any, size_bytes: int) -> None:
        """Entry point from the network: charge the queue, then dispatch."""
        if self._halted:
            return  # a dead incarnation's NIC: packets fall on the floor
        if self._admission is not None and type(message) is ClientRequest:
            if not self._admit(message):
                return
        weight = _class_traits(type(message))[0]
        cost = self._profile.incoming_cost(size_bytes, weight)
        if self._priority_lanes and not isinstance(message, ClientRequest):
            # Everything that is not client ingress is the control plane
            # relative to admission: it was already paid for upstream, and
            # delaying it (heartbeats, votes, commits, catch-up) turns an
            # overloaded replica into a falsely-suspected one.
            self._server.submit_priority(cost, self._dispatch, src, message)
            return
        if self._tracer.enabled and type(message) is ClientRequest:
            span_key = (message.client, message.request_id)
            self._tracer.event(span_key, "server_enqueue", self.now, self.id)
            self._server.submit(cost, self._dispatch_traced, src, message, span_key, cost)
            return
        self._server.submit(cost, self._dispatch, src, message)

    def _dispatch_traced(
        self, src: Hashable, message: Any, span_key: tuple, cost: float
    ) -> None:
        # The job just finished occupying the queue for ``cost`` seconds,
        # so wQ for this hop is handler.t - enqueue.t - cost.
        self._tracer.event(span_key, "handler", self.now, self.id, service=cost)
        self._dispatch(src, message)

    def _dispatch(self, src: Hashable, message: Any) -> None:
        handler = self._handlers.get(type(message))
        if handler is None:
            raise ProtocolError(
                f"{self.id}: no handler for {type(message).__name__}"
            )
        handler(src, message)

    # ------------------------------------------------------------------
    # Admission control / load shedding
    # ------------------------------------------------------------------

    def _admit(self, message: ClientRequest) -> bool:
        """Gate a client request at the NIC, before any CPU is spent on it.

        Rejections bypass the server queue entirely: the :class:`Rejected`
        reply is pushed straight onto the wire, which is what makes
        shedding cheap — a melting-down replica must not pay ``t_in`` +
        ``t_out`` per request it refuses.  (SYN-cookie-style early demux;
        the NIC hardware can classify and bounce without waking the CPU.)
        """
        adm = self._admission
        now = self.loop.now
        server = self._server
        if (
            adm.policy == "deadline"
            and message.deadline is not None
            and now + server.backlog_seconds > message.deadline
        ):
            # The reply could not possibly make it back in time: the
            # issuer's patience is already consumed by queued work.
            self._reject(message, "deadline")
            return False
        limit = adm.queue_limit
        if limit is not None and server.queue_length >= limit:
            if adm.policy == "drop_oldest":
                evicted = server.evict_oldest(self._is_client_request_job)
                if evicted is not None:
                    victim: ClientRequest = evicted[3][1]
                    adm.inflight.pop((victim.client, victim.request_id), None)
                    self._reject(victim, "queue_full")
                    # fall through: the fresh arrival takes the freed slot
                else:
                    self._reject(message, "queue_full")
                    return False
            else:
                self._reject(message, "queue_full")
                return False
        if adm.max_inflight is not None:
            inflight = adm.inflight
            key = (message.client, message.request_id)
            if len(inflight) >= adm.max_inflight and key not in inflight:
                # Purge slots whose issuer has given up before refusing new
                # work for their sake.
                expired = [k for k, d in inflight.items() if d < now]
                for k in expired:
                    del inflight[k]
                if len(inflight) >= adm.max_inflight:
                    self._reject(message, "inflight")
                    return False
            inflight[key] = message.deadline if message.deadline is not None else math.inf
        return True

    def _is_client_request_job(self, fn: Callable[..., Any], args: tuple) -> bool:
        """Eviction predicate: a queued-but-unserved client request job."""
        # Bound-method access creates a fresh object, so compare the
        # underlying function, not the wrapper's identity.
        func = getattr(fn, "__func__", None)
        return (
            (func is Replica._dispatch or func is Replica._dispatch_traced)
            and getattr(fn, "__self__", None) is self
            and type(args[1]) is ClientRequest
        )

    def _reject(self, request: ClientRequest, reason: str) -> None:
        adm = self._admission
        adm.shed += 1
        adm.shed_by_reason[reason] = adm.shed_by_reason.get(reason, 0) + 1
        reply = Rejected(request_id=request.request_id, replied_by=self.id, reason=reason)
        self._network.transit(self.id, request.client, reply, Rejected.SIZE_BYTES)

    @property
    def shed_count(self) -> int:
        """Client requests this replica refused via admission control."""
        return self._admission.shed if self._admission is not None else 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, dst: Hashable, message: Any) -> None:
        """Send one message; charges ``t_out`` + one NIC transmission."""
        if self._admission is not None and self._admission.max_inflight is not None:
            # Whatever leaves this node on a request's behalf frees its
            # admission slot: the reply ends it here, a forward makes it the
            # next replica's problem.
            mtype = type(message)
            if mtype is ClientReply:
                self._admission.inflight.pop((dst, message.request_id), None)
            elif mtype is ClientRequest:
                self._admission.inflight.pop((message.client, message.request_id), None)
        weight, size, has_wire = _class_traits(type(message))
        if has_wire:
            size = message.wire_size()
        cost = self._profile.outgoing_cost(size, copies=1, weight=weight)
        if self._tracer.enabled and type(message) is ClientReply:
            self._server.submit(cost, self._traced_reply_transit, dst, message, size)
            return
        self._server.submit(cost, self._network.transit, self.id, dst, message, size)

    def _traced_reply_transit(self, dst: Hashable, message: Any, size: int) -> None:
        # Stamped when the reply actually hits the wire, so DL stays pure
        # wire time and the reply's outgoing queueing is attributed to ts.
        self._tracer.event((dst, message.request_id), "reply_sent", self.now, self.id)
        self._network.transit(self.id, dst, message, size)

    def multicast(self, dsts: Iterable[Hashable], message: Any) -> None:
        """Send to several peers; serialization is paid once."""
        targets = [d for d in dsts if d != self.id]
        if not targets:
            return
        weight, size, has_wire = _class_traits(type(message))
        if has_wire:
            size = message.wire_size()
        cost = self._profile.outgoing_cost(size, copies=len(targets), weight=weight)
        self._server.submit(cost, self._transit_all, targets, message, size)

    def broadcast(self, message: Any) -> None:
        """Send to every other replica."""
        self.multicast(self.peers, message)

    def _transit_all(self, targets: list[Hashable], message: Any, size: int) -> None:
        for dst in targets:
            self._network.transit(self.id, dst, message, size)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def trace_mark(self, request: Any, name: str = "quorum") -> None:
        """Annotate ``request``'s span (protocol commit points call this
        with their ``RequestInfo``/``ClientRequest``).  No-op when tracing
        is off or the slot carries no client request (no-ops, heartbeats).
        """
        if request is None or not self._tracer.enabled:
            return
        self._tracer.event((request.client, request.request_id), name, self.now, self.id)

    # ------------------------------------------------------------------
    # Timers and local work
    # ------------------------------------------------------------------

    def set_timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` seconds unless cancelled.

        Timers die with the replica: once :meth:`halt` has run (reboot /
        wipe fault injection) a pending timer fires into the void, so a
        dead incarnation can never send messages or mutate ghost state.
        """
        return self.loop.call_after(delay, self._guarded_timer, fn, args)

    def _guarded_timer(self, fn: Callable[..., Any], args: tuple) -> None:
        if self._halted:
            return
        fn(*args)

    def local_work(self, cost: float, fn: Callable[..., Any], *args: Any) -> None:
        """Charge ``cost`` seconds of CPU on this replica, then run ``fn``."""
        self._server.submit(cost, fn, *args)

    def halt(self) -> None:
        """Permanently silence this replica instance (its node went down).

        Queued server jobs are killed separately by
        :meth:`repro.sim.server.Server.power_off`; this flag covers event
        -loop timers and in-flight network deliveries that still reference
        the old instance.
        """
        self._halted = True

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def persist(
        self,
        kind: str,
        data: Any,
        slot: int | None = None,
        size_bytes: int = WAL_RECORD_BYTES,
        then: Callable[[], None] | None = None,
    ) -> None:
        """Append a WAL record and run ``then()`` once it is durable.

        With durability off this *is* the seed's in-memory behavior:
        ``then()`` runs synchronously and nothing else happens — no job is
        submitted, no cost is charged, accounting stays byte-identical.
        With durability on, the record goes through the node's
        :class:`~repro.sim.storage.WalWriter` (fsync-per-record or group
        commit per :attr:`Config.durability`) and ``then()`` fires only
        when the covering fsync completes.
        """
        if self._wal_writer is None:
            if then is not None:
                then()
            return
        self._wal_writer.persist(WalRecord(kind, slot, data, size_bytes), then)

    def maybe_snapshot(self, executed_upto: int) -> None:
        """Write a periodic disk snapshot if the configured interval has
        passed, then truncate the WAL below it.  The snapshot write is
        charged through the node's queue like any other disk work."""
        interval = self.config.snapshot_interval
        if self.disk is None or interval is None or self._snapshot_inflight:
            return
        last = self.disk.snapshot.upto if self.disk.snapshot is not None else 0
        if executed_upto - last < interval:
            return
        payload, size_bytes = self.snapshot_payload(executed_upto)
        snap = Snapshot(executed_upto, payload, size_bytes)
        self._snapshot_inflight = True
        cost = self.disk.profile.sync_cost(size_bytes)
        self._server.submit(cost, self._install_snapshot, snap)

    def _install_snapshot(self, snap: Snapshot) -> None:
        self._snapshot_inflight = False
        assert self.disk is not None
        self.disk.install_snapshot(snap)

    def snapshot_payload(self, executed_upto: int) -> tuple[Any, int]:
        """Protocol hook: the opaque state-machine payload (and its size in
        bytes) covering every slot up to ``executed_upto``.  Protocols with
        recovery support override this."""
        raise ProtocolError(
            f"{type(self).__name__} does not implement snapshot_payload()"
        )

    @property
    def now(self) -> float:
        return self.loop.now

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.id}>"
