"""Message base types shared by every protocol.

A protocol contributes its own dataclasses derived from :class:`Message`;
the framework only needs two pieces of metadata from each type:

- ``SIZE_BYTES`` — nominal serialized size, charged to NICs and bandwidth
  (the paper notes EPaxos messages are bigger because they carry dependency
  lists, which its model penalizes);
- ``WEIGHT`` — CPU multiplier applied to the per-message processing costs
  ``t_in``/``t_out`` (the paper's model "penalizes the message processing to
  account for extra resources required to compute dependencies and resolve
  conflicts" in EPaxos, section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


class Message:
    """Base class for protocol and client messages."""

    # Slot-free base so subclasses declared with ``@dataclass(slots=True)``
    # really are dict-less: simulations allocate one instance per logical
    # message, so the per-instance ``__dict__`` is measurable overhead.
    __slots__ = ()

    SIZE_BYTES: int = 100
    WEIGHT: float = 1.0

    @classmethod
    def size_bytes(cls) -> int:
        return cls.SIZE_BYTES

    @classmethod
    def weight(cls) -> float:
        return cls.WEIGHT

    def wire_size(self) -> int:
        """Serialized size of *this* message instance.

        Defaults to the class-level ``SIZE_BYTES``; messages whose payload
        varies per instance (a batched accept carrying ``B`` commands)
        override this so the NIC/bandwidth accounting stays honest.
        """
        return self.SIZE_BYTES


GET = "GET"
PUT = "PUT"
CAS = "CAS"


@dataclass(frozen=True, slots=True)
class Command:
    """A state-machine command against the key-value store.

    ``min_version`` supports session-consistent relaxed reads (the paper's
    section-7 future work): a replica serving the read locally must have
    executed at least that many writes to the key first.  It is zero — no
    constraint — for strongly-consistent protocols.

    ``read_mode`` selects the read path for a GET: ``None`` (default) runs
    the full replication round through the leader, ``"lease"`` serves from
    the leader's local store while its lease is valid, ``"quorum"`` polls a
    read quorum of acceptors, and ``"local"`` serves from any replica's
    local store (bounded staleness, not linearizable).  Writes ignore it.

    A ``CAS`` writes ``value`` only if the key's current value equals
    ``expect`` (both compared at execution time inside the replicated state
    machine, so the outcome is identical on every replica).  On mismatch it
    returns a :class:`~repro.paxi.kvstore.CasFailed` carrying the current
    value.  The cross-shard transaction layer builds its per-key locks out
    of this primitive.
    """

    op: str
    key: Hashable
    value: Any = None
    min_version: int = 0
    read_mode: str | None = None
    expect: Any = None

    READ_MODES = (None, "lease", "quorum", "local")

    def __post_init__(self) -> None:
        if self.op not in (GET, PUT, CAS):
            raise ValueError(f"unknown op {self.op!r}")
        if self.read_mode not in self.READ_MODES:
            raise ValueError(f"unknown read_mode {self.read_mode!r}")

    @property
    def is_read(self) -> bool:
        return self.op == GET

    @property
    def is_write(self) -> bool:
        return self.op != GET

    def conflicts_with(self, other: "Command") -> bool:
        """Two commands interfere iff they touch the same key and at least
        one of them writes (the standard EPaxos interference relation)."""
        return self.key == other.key and (self.is_write or other.is_write)

    @staticmethod
    def get(key: Hashable, read_mode: str | None = None) -> "Command":
        return Command(GET, key, read_mode=read_mode)

    @staticmethod
    def put(key: Hashable, value: Any) -> "Command":
        return Command(PUT, key, value)

    @staticmethod
    def cas(key: Hashable, expect: Any, value: Any) -> "Command":
        return Command(CAS, key, value, expect=expect)


@dataclass(frozen=True, slots=True)
class Batch:
    """An ordered group of commands replicated as one log entry.

    Batching amortizes the per-instance message cost (the paper's Formulas
    1-6 divided by the batch size ``B``): one phase-2 round now carries
    ``B`` commands.  A batch occupies a single consensus slot; at execution
    the replica fans the commands out in order and replies to each client
    individually, so batching is invisible to linearizability.

    ``PER_COMMAND_BYTES`` is the marginal wire size of each extra command
    inside a carrier message (the first command is covered by the carrier's
    base ``SIZE_BYTES``).
    """

    PER_COMMAND_BYTES = 110

    commands: tuple[Command, ...] = ()

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def extra_bytes(self) -> int:
        """Wire bytes beyond a single-command carrier message."""
        return self.PER_COMMAND_BYTES * max(0, len(self.commands) - 1)


@dataclass(frozen=True, slots=True)
class ClientRequest(Message):
    """A client-originated request for one command.

    ``deadline`` is the absolute virtual time after which the reply is
    useless to the issuer (propagated from ``Session(max_wait=)`` or the
    open-loop engine's request timeout).  Replicas running the
    ``"deadline"`` shed policy drop requests whose deadline cannot be met
    before spending leader CPU on them; ``None`` means "no deadline" and
    is the default everywhere.
    """

    SIZE_BYTES = 120

    command: Command = field(default_factory=lambda: Command(GET, 0))
    client: Hashable = None
    request_id: int = 0
    deadline: float | None = None


@dataclass(frozen=True, slots=True)
class Rejected(Message):
    """Admission control refused a :class:`ClientRequest`.

    Sent straight from the NIC path (it bypasses the replica's CPU queue —
    the whole point of shedding is to spend ~nothing on the request), so it
    is only charged to the wire model.  ``reason`` says which gate fired:
    ``"queue_full"``, ``"inflight"``, or ``"deadline"``.  A rejection is a
    guarantee: the command was not (and will never be) executed by the
    rejecting replica, which is what lets a first-attempt client discard
    the operation from the linearizability history as a clean failure.
    """

    SIZE_BYTES = 40  # header-only: no command payload travels back

    request_id: int = 0
    replied_by: Hashable = None
    reason: str = "queue_full"


@dataclass(frozen=True, slots=True)
class ClientReply(Message):
    """The reply a replica sends once a command has been committed and
    executed (or rejected)."""

    SIZE_BYTES = 120

    request_id: int = 0
    ok: bool = True
    value: Any = None
    replied_by: Hashable = None
    leader_hint: Hashable = None
    version: int = 0  # key version after this command (session tokens)
