"""Message base types shared by every protocol.

A protocol contributes its own dataclasses derived from :class:`Message`;
the framework only needs two pieces of metadata from each type:

- ``SIZE_BYTES`` — nominal serialized size, charged to NICs and bandwidth
  (the paper notes EPaxos messages are bigger because they carry dependency
  lists, which its model penalizes);
- ``WEIGHT`` — CPU multiplier applied to the per-message processing costs
  ``t_in``/``t_out`` (the paper's model "penalizes the message processing to
  account for extra resources required to compute dependencies and resolve
  conflicts" in EPaxos, section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


class Message:
    """Base class for protocol and client messages."""

    SIZE_BYTES: int = 100
    WEIGHT: float = 1.0

    @classmethod
    def size_bytes(cls) -> int:
        return cls.SIZE_BYTES

    @classmethod
    def weight(cls) -> float:
        return cls.WEIGHT


GET = "GET"
PUT = "PUT"


@dataclass(frozen=True)
class Command:
    """A state-machine command against the key-value store.

    ``min_version`` supports session-consistent relaxed reads (the paper's
    section-7 future work): a replica serving the read locally must have
    executed at least that many writes to the key first.  It is zero — no
    constraint — for strongly-consistent protocols.
    """

    op: str
    key: Hashable
    value: Any = None
    min_version: int = 0

    def __post_init__(self) -> None:
        if self.op not in (GET, PUT):
            raise ValueError(f"unknown op {self.op!r}")

    @property
    def is_read(self) -> bool:
        return self.op == GET

    @property
    def is_write(self) -> bool:
        return self.op == PUT

    def conflicts_with(self, other: "Command") -> bool:
        """Two commands interfere iff they touch the same key and at least
        one of them writes (the standard EPaxos interference relation)."""
        return self.key == other.key and (self.is_write or other.is_write)

    @staticmethod
    def get(key: Hashable) -> "Command":
        return Command(GET, key)

    @staticmethod
    def put(key: Hashable, value: Any) -> "Command":
        return Command(PUT, key, value)


@dataclass(frozen=True)
class ClientRequest(Message):
    """A client-originated request for one command."""

    SIZE_BYTES = 120

    command: Command = field(default_factory=lambda: Command(GET, 0))
    client: Hashable = None
    request_id: int = 0


@dataclass(frozen=True)
class ClientReply(Message):
    """The reply a replica sends once a command has been committed and
    executed (or rejected)."""

    SIZE_BYTES = 120

    request_id: int = 0
    ok: bool = True
    value: Any = None
    replied_by: Hashable = None
    leader_hint: Hashable = None
    version: int = 0  # key version after this command (session tokens)
