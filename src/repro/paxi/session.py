"""Typed, synchronous-feeling client facade over the callback `Client`.

:class:`Session` is the only supported client surface: ``put``/``get``
return a :class:`Result` dataclass (value, latency, which replica answered)
and ``txn`` runs a multi-key transaction, instead of asking the caller to
thread ``on_done`` callbacks and drive the event loop by hand.  Under the
hood a session still issues commands through a
:class:`~repro.paxi.client.Client` and advances the deployment's virtual
clock until the reply lands (or ``max_wait`` expires), so sessions compose
with everything else running in the simulation.

Session-level knobs are consolidated into :class:`SessionOptions`; the same
dataclass doubles as a per-call override (``session.get(k,
opts=SessionOptions(consistency="quorum"))``).  The old per-call ``target=``
/ ``consistency=`` keyword arguments are still accepted for one release and
emit a :class:`DeprecationWarning`.

Against a sharded cluster (:mod:`repro.shard`) the same facade routes each
key through the placement map — see
:class:`repro.shard.session.ShardedSession`, which subclasses this one.

The paper's four fault-injection commands are methods here too, mirroring
the Paxi client library's "RESTful" surface.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Mapping

from repro.errors import InvalidOptions, NoQuorum, Overloaded, RetriesExhausted
from repro.paxi.message import ClientReply, Command
from repro.paxi.ids import NodeID

if TYPE_CHECKING:
    from repro.paxi.client import Client
    from repro.paxi.deployment import Deployment
    from repro.shard.txn import TxnResult

#: Session default when ``SessionOptions.max_wait`` is left unset.
DEFAULT_MAX_WAIT = 5.0


@dataclass(frozen=True)
class SessionOptions:
    """Consolidated knobs for a session, or overrides for a single call.

    Every field defaults to "inherit": a ``None`` (or ``False`` for
    ``strict``) falls back to the session's options, which in turn fall
    back to the documented global defaults.  That makes one dataclass
    serve both roles — ``new_session(options=...)`` configures a session,
    ``session.get(k, opts=...)`` overrides one call.

    - ``site`` / ``zone`` — where the session's client(s) are co-located;
    - ``max_wait`` — virtual seconds to wait for each reply (default 5.0);
    - ``consistency`` — default read path (``None`` = leader round,
      ``"lease"``, ``"quorum"``, or ``"local"`` — see ``docs/READS.md``);
    - ``target`` — pin commands to one replica instead of nearest/leader
      routing (single-group deployments only);
    - ``max_attempts`` — hard ceiling on transmissions per command
      (``None`` inherits the client default: retries bounded only by its
      ``max_retries``); surfaces as :attr:`Result.attempts` /
      :attr:`Result.failure`;
    - ``strict`` — raise :class:`~repro.errors.NoQuorum` /
      :class:`~repro.errors.RetriesExhausted` /
      :class:`~repro.errors.Overloaded` instead of returning a ``Result``
      with ``ok=False``.
    """

    site: str | None = None
    zone: int | None = None
    max_wait: float | None = None
    consistency: str | None = None
    target: NodeID | None = None
    max_attempts: int | None = None
    strict: bool = False

    def __post_init__(self) -> None:
        if self.consistency not in Command.READ_MODES:
            raise InvalidOptions(
                f"unknown consistency {self.consistency!r}; "
                f"expected one of {Command.READ_MODES}"
            )
        if self.max_wait is not None and self.max_wait <= 0:
            raise InvalidOptions(
                f"max_wait must be a positive number of seconds, got {self.max_wait!r}"
            )
        if self.max_attempts is not None and (
            not isinstance(self.max_attempts, int) or self.max_attempts < 1
        ):
            raise InvalidOptions(
                f"max_attempts must be a positive integer or None, got {self.max_attempts!r}"
            )

    def merged_over(self, base: "SessionOptions") -> "SessionOptions":
        """Field-wise overlay: any field set here wins over ``base``."""
        updates: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "strict":
                if value:
                    updates[f.name] = True
            elif value is not None:
                updates[f.name] = value
        return replace(base, **updates) if updates else base


@dataclass(frozen=True)
class Result:
    """Outcome of one session operation.

    ``ok`` is False when the operation timed out (no reply within
    ``max_wait`` of virtual time); ``replica`` is then ``None`` and
    ``latency_ms`` covers the time spent waiting.  ``attempts`` counts
    transmissions, so it is 1 plus the number of client retries.
    ``read_mode`` echoes the read path the command was issued with
    (``None`` for writes and default leader reads), so traces and tests
    can split retry/latency stats per read path.

    ``failure`` types the failure when ``ok`` is False: ``"rejected"``
    (admission control shed it — a *clean* failure, safe to retry),
    ``"overloaded"`` (the client's retry budget / circuit breaker gave
    up), ``"retries_exhausted"``, ``"abandoned"``, or ``"timeout"`` (no
    reply, outcome unknown).  ``None`` when ``ok``.
    """

    ok: bool
    value: Any
    latency_ms: float
    replica: NodeID | None
    request_id: int
    version: int = 0
    attempts: int = 1
    read_mode: str | None = None
    failure: str | None = None

    def __bool__(self) -> bool:
        return self.ok


class Session:
    """A synchronous facade bound to one client.

    Each call issues the command, runs the simulation forward until the
    reply arrives, and returns a :class:`Result`.  Use one session per
    logical actor; concurrent load generation belongs to the benchmarker,
    which drives many clients asynchronously.
    """

    #: Granularity (virtual seconds) at which the loop advances while waiting.
    _STEP = 0.005

    def __init__(
        self,
        deployment: "Deployment",
        options: SessionOptions | None = None,
        site: str | None = None,
        zone: int | None = None,
        max_wait: float | None = None,
        consistency: str | None = None,
    ) -> None:
        options = _fold_legacy(options, site, zone, max_wait, consistency)
        self.options = options
        self.deployment = deployment
        self.client: "Client" = deployment.new_client(
            site=options.site, zone=options.zone
        )
        self._txn_runtime = None

    # Resolved session defaults ----------------------------------------

    @property
    def max_wait(self) -> float:
        return (
            self.options.max_wait
            if self.options.max_wait is not None
            else DEFAULT_MAX_WAIT
        )

    @property
    def consistency(self) -> str | None:
        """Default read path for this session's GETs (None = leader round)."""
        return self.options.consistency

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def put(
        self,
        key: Hashable,
        value: Any,
        opts: SessionOptions | None = None,
        target: NodeID | None = None,
    ) -> Result:
        """Write ``key = value`` and wait for the committed reply."""
        opts = _fold_call_kwargs(opts, target=target)
        return self.execute(Command.put(key, value), opts)

    def get(
        self,
        key: Hashable,
        opts: SessionOptions | None = None,
        target: NodeID | None = None,
        consistency: str | None = None,
    ) -> Result:
        """Read ``key`` and wait for the reply.  ``opts`` overrides the
        session options for this one read (e.g. a different read path)."""
        opts = _fold_call_kwargs(opts, target=target, consistency=consistency)
        resolved = opts.merged_over(self.options) if opts else self.options
        return self.execute(
            Command.get(key, read_mode=resolved.consistency), opts
        )

    def txn(
        self,
        writes: Mapping[Hashable, Any] | None = None,
        reads: Iterable[Hashable] | None = None,
    ) -> "TxnResult":
        """Atomically apply ``writes`` and read ``reads`` across shards.

        Single-key sessions route everything through one consensus group;
        a :class:`~repro.shard.session.ShardedSession` spreads the keys
        over their shards and runs two-phase commit on top of the groups
        (see ``docs/SHARDING.md``).  Raises
        :class:`~repro.errors.TxnAborted` on a lock conflict and
        :class:`~repro.errors.NoQuorum` if a participant group is
        unreachable; on success returns a
        :class:`~repro.shard.txn.TxnResult` with the values read.
        """
        runtime = self._txn_backend()
        return runtime.run(dict(writes or {}), list(reads or []))

    def _txn_backend(self):
        if self._txn_runtime is None:
            from repro.shard.txn import SingleGroupTxnRuntime

            self._txn_runtime = SingleGroupTxnRuntime(
                self.deployment, site=self.options.site, zone=self.options.zone
            )
        return self._txn_runtime

    def execute(
        self,
        command: Command,
        opts: SessionOptions | None = None,
        target: NodeID | None = None,
    ) -> Result:
        """Issue ``command`` and run the simulation until it resolves."""
        opts = _fold_call_kwargs(opts, target=target)
        resolved = opts.merged_over(self.options) if opts else self.options
        max_wait = (
            resolved.max_wait if resolved.max_wait is not None else DEFAULT_MAX_WAIT
        )
        outcome: dict[str, Any] = {}

        def on_done(reply: ClientReply, latency: float) -> None:
            outcome["reply"] = reply
            outcome["latency"] = latency

        client = self._client_for(command)
        if resolved.max_attempts is not None:
            # Sticky on the session's client: the ceiling applies to this
            # and every later command the session issues.
            client.max_attempts = resolved.max_attempts
        started = self.deployment.now
        request_id = client.invoke(
            command,
            resolved.target,
            on_done,
            # The session's patience IS the request's deadline; replicas
            # running shed_policy="deadline" drop work that cannot meet it.
            deadline=started + max_wait,
        )
        deadline = started + max_wait
        while (
            "reply" not in outcome
            and client.failure_reason(request_id) is None
            and self.deployment.now < deadline
        ):
            self.deployment.run_for(min(self._STEP, deadline - self.deployment.now))
        reply = outcome.get("reply")
        attempts = client.attempts(request_id)
        read_mode = command.read_mode if command.is_read else None
        if reply is None:
            failure = client.failure_reason(request_id) or "timeout"
            if resolved.strict:
                waited = self.deployment.now - started
                if failure in ("rejected", "overloaded"):
                    raise Overloaded(
                        f"{command.op}({command.key!r}) {failure} after "
                        f"{attempts} transmissions (clean typed failure; "
                        "the cluster or client shed it under load)"
                    )
                if client.abandoned(request_id):
                    raise RetriesExhausted(
                        f"{command.op}({command.key!r}) abandoned after "
                        f"{attempts} transmissions"
                    )
                raise NoQuorum(
                    f"{command.op}({command.key!r}) got no reply within "
                    f"{waited:.3f}s of virtual time"
                )
            return Result(
                ok=False,
                value=None,
                latency_ms=(self.deployment.now - started) * 1000.0,
                replica=None,
                request_id=request_id,
                attempts=attempts,
                read_mode=read_mode,
                failure=failure,
            )
        return Result(
            ok=reply.ok,
            value=reply.value,
            latency_ms=outcome["latency"] * 1000.0,
            replica=reply.replied_by,
            request_id=request_id,
            version=reply.version,
            attempts=attempts,
            read_mode=read_mode,
        )

    def _client_for(self, command: Command) -> "Client":
        """The client that should carry ``command``.  The single-group
        session always answers with its one client; the sharded session
        overrides this to route by the command's key."""
        return self.client

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def site(self) -> str:
        return self.client.site

    @property
    def address(self) -> Hashable:
        return self.client.address

    # ------------------------------------------------------------------
    # Fault-injection commands (paper section 4.2, "Availability")
    # ------------------------------------------------------------------

    def crash(self, node: NodeID, duration: float | None = None) -> None:
        """Freeze ``node`` for ``duration`` seconds (None = permanently)."""
        self.deployment.crash(node, duration)

    def reboot(self, node: NodeID, downtime: float = 0.05) -> None:
        """Power-cycle ``node``: volatile state lost, disk survives."""
        self.deployment.reboot(node, downtime)

    def wipe(self, node: NodeID, downtime: float = 0.05) -> None:
        """Destroy ``node``'s disk and restart it empty (state transfer)."""
        self.deployment.wipe(node, downtime)

    def drop(self, src: NodeID, dst: NodeID, duration: float) -> None:
        """Drop every message from ``src`` to ``dst`` for ``duration`` s."""
        self.deployment.drop(src, dst, duration)

    def slow(self, src: NodeID, dst: NodeID, duration: float) -> None:
        """Delay messages from ``src`` to ``dst`` for ``duration`` s."""
        self.deployment.slow(src, dst, duration)

    def flaky(
        self, src: NodeID, dst: NodeID, duration: float, probability: float = 0.5
    ) -> None:
        """Randomly drop messages from ``src`` to ``dst``."""
        self.deployment.flaky(src, dst, duration, probability)


def _fold_legacy(
    options: SessionOptions | None,
    site: str | None,
    zone: int | None,
    max_wait: float | None,
    consistency: str | None,
) -> SessionOptions:
    """Merge constructor keyword shorthands into a ``SessionOptions``.

    ``new_session(site=..., consistency=...)`` remains the documented
    convenience spelling; mixing it with an explicit ``options`` object
    that sets the same field is ambiguous and rejected.
    """
    if options is None:
        return SessionOptions(
            site=site, zone=zone, max_wait=max_wait, consistency=consistency
        )
    for name, value in (
        ("site", site),
        ("zone", zone),
        ("max_wait", max_wait),
        ("consistency", consistency),
    ):
        if value is not None:
            if getattr(options, name) is not None:
                raise InvalidOptions(
                    f"{name} given both in options and as a keyword; pick one"
                )
            options = replace(options, **{name: value})
    return options


def _fold_call_kwargs(
    opts: SessionOptions | None,
    target: NodeID | None = None,
    consistency: str | None = None,
) -> SessionOptions | None:
    """Fold the deprecated per-call ``target=`` / ``consistency=`` keyword
    arguments into a per-call ``SessionOptions`` overlay."""
    legacy = {}
    if target is not None:
        legacy["target"] = target
    if consistency is not None:
        legacy["consistency"] = consistency
    if not legacy:
        return opts
    warnings.warn(
        f"per-call {sorted(legacy)} keyword(s) are deprecated; pass "
        "opts=SessionOptions(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    if opts is None:
        return SessionOptions(**legacy)
    return replace(opts, **legacy)
