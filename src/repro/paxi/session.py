"""Typed, synchronous-feeling client facade over the callback `Client`.

:class:`Session` is the API most callers want: ``put``/``get`` return a
:class:`Result` dataclass (value, latency, which replica answered) instead
of asking the caller to thread an ``on_done`` callback and drive the event
loop by hand.  Under the hood a session still issues commands through a
:class:`~repro.paxi.client.Client` and advances the deployment's virtual
clock until the reply lands (or ``max_wait`` expires), so sessions compose
with everything else running in the simulation.

The paper's four fault-injection commands are methods here too, mirroring
the Paxi client library's "RESTful" surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable

from repro.paxi.message import ClientReply, Command
from repro.paxi.ids import NodeID

if TYPE_CHECKING:
    from repro.paxi.client import Client
    from repro.paxi.deployment import Deployment


@dataclass(frozen=True)
class Result:
    """Outcome of one session operation.

    ``ok`` is False when the operation timed out (no reply within
    ``max_wait`` of virtual time); ``replica`` is then ``None`` and
    ``latency_ms`` covers the time spent waiting.  ``attempts`` counts
    transmissions, so it is 1 plus the number of client retries.
    ``read_mode`` echoes the read path the command was issued with
    (``None`` for writes and default leader reads), so traces and tests
    can split retry/latency stats per read path.
    """

    ok: bool
    value: Any
    latency_ms: float
    replica: NodeID | None
    request_id: int
    version: int = 0
    attempts: int = 1
    read_mode: str | None = None

    def __bool__(self) -> bool:
        return self.ok


class Session:
    """A synchronous facade bound to one client.

    Each call issues the command, runs the simulation forward until the
    reply arrives, and returns a :class:`Result`.  Use one session per
    logical actor; concurrent load generation belongs to the benchmarker,
    which drives many clients asynchronously.
    """

    #: Granularity (virtual seconds) at which the loop advances while waiting.
    _STEP = 0.005

    def __init__(
        self,
        deployment: "Deployment",
        site: str | None = None,
        zone: int | None = None,
        max_wait: float = 5.0,
        consistency: str | None = None,
    ) -> None:
        if consistency not in Command.READ_MODES:
            raise ValueError(f"unknown consistency {consistency!r}")
        self.deployment = deployment
        self.client: "Client" = deployment.new_client(site=site, zone=zone)
        self.max_wait = max_wait
        #: Default read path for this session's GETs (None = leader round).
        self.consistency = consistency

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def put(self, key: Hashable, value: Any, target: NodeID | None = None) -> Result:
        """Write ``key = value`` and wait for the committed reply."""
        return self.execute(Command.put(key, value), target)

    def get(
        self,
        key: Hashable,
        target: NodeID | None = None,
        consistency: str | None = None,
    ) -> Result:
        """Read ``key`` and wait for the reply.  ``consistency`` overrides
        the session default read path for this one read."""
        mode = self.consistency if consistency is None else consistency
        return self.execute(Command.get(key, read_mode=mode), target)

    def execute(self, command: Command, target: NodeID | None = None) -> Result:
        """Issue ``command`` and run the simulation until it resolves."""
        outcome: dict[str, Any] = {}

        def on_done(reply: ClientReply, latency: float) -> None:
            outcome["reply"] = reply
            outcome["latency"] = latency

        started = self.deployment.now
        request_id = self.client.invoke(command, target, on_done)
        deadline = started + self.max_wait
        while "reply" not in outcome and self.deployment.now < deadline:
            self.deployment.run_for(min(self._STEP, deadline - self.deployment.now))
        reply = outcome.get("reply")
        attempts = self.client.attempts(request_id)
        read_mode = command.read_mode if command.is_read else None
        if reply is None:
            return Result(
                ok=False,
                value=None,
                latency_ms=(self.deployment.now - started) * 1000.0,
                replica=None,
                request_id=request_id,
                attempts=attempts,
                read_mode=read_mode,
            )
        return Result(
            ok=reply.ok,
            value=reply.value,
            latency_ms=outcome["latency"] * 1000.0,
            replica=reply.replied_by,
            request_id=request_id,
            version=reply.version,
            attempts=attempts,
            read_mode=read_mode,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def site(self) -> str:
        return self.client.site

    @property
    def address(self) -> Hashable:
        return self.client.address

    # ------------------------------------------------------------------
    # Fault-injection commands (paper section 4.2, "Availability")
    # ------------------------------------------------------------------

    def crash(self, node: NodeID, duration: float | None = None) -> None:
        """Freeze ``node`` for ``duration`` seconds (None = permanently)."""
        self.deployment.crash(node, duration)

    def reboot(self, node: NodeID, downtime: float = 0.05) -> None:
        """Power-cycle ``node``: volatile state lost, disk survives."""
        self.deployment.reboot(node, downtime)

    def wipe(self, node: NodeID, downtime: float = 0.05) -> None:
        """Destroy ``node``'s disk and restart it empty (state transfer)."""
        self.deployment.wipe(node, downtime)

    def drop(self, src: NodeID, dst: NodeID, duration: float) -> None:
        """Drop every message from ``src`` to ``dst`` for ``duration`` s."""
        self.deployment.drop(src, dst, duration)

    def slow(self, src: NodeID, dst: NodeID, duration: float) -> None:
        """Delay messages from ``src`` to ``dst`` for ``duration`` s."""
        self.deployment.slow(src, dst, duration)

    def flaky(
        self, src: NodeID, dst: NodeID, duration: float, probability: float = 0.5
    ) -> None:
        """Randomly drop messages from ``src`` to ``dst``."""
        self.deployment.flaky(src, dst, duration, probability)
