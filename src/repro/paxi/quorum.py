"""Quorum systems (paper section 4.1).

Paxi ships several quorum systems behind one two-method interface —
``ack()`` and ``satisfied()`` — so that protocols can probe the quorum
design space without changing their own code.  We provide the same five
families the paper lists: simple majority, fast quorum, grid quorum,
flexible grid, and group quorums.

Each object tracks the votes of **one** round; protocols construct a fresh
instance (or call :meth:`reset`) per ballot/slot.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.errors import QuorumError
from repro.paxi.ids import NodeID


class Quorum(ABC):
    """Vote tracker for a single round."""

    def __init__(self, ids: Iterable[NodeID]) -> None:
        self.ids: tuple[NodeID, ...] = tuple(ids)
        if not self.ids:
            raise QuorumError("quorum over an empty node set")
        if len(set(self.ids)) != len(self.ids):
            raise QuorumError(f"duplicate node ids in quorum: {self.ids!r}")
        self.acks: set[NodeID] = set()
        self.nacks: set[NodeID] = set()

    def ack(self, node: NodeID) -> None:
        """Record a positive vote from ``node``."""
        if node not in self.ids:
            raise QuorumError(f"vote from {node} outside quorum members {self.ids!r}")
        self.acks.add(node)

    def nack(self, node: NodeID) -> None:
        """Record a negative vote (rejection) from ``node``."""
        if node not in self.ids:
            raise QuorumError(f"vote from {node} outside quorum members {self.ids!r}")
        self.nacks.add(node)

    def reset(self) -> None:
        self.acks.clear()
        self.nacks.clear()

    @abstractmethod
    def satisfied(self) -> bool:
        """True once the recorded acks form a quorum."""

    def defeated(self) -> bool:
        """True once satisfaction has become impossible given the nacks."""
        alive = [n for n in self.ids if n not in self.nacks]
        probe = type(self).__new__(type(self))
        probe.__dict__.update(self.__dict__)
        probe.acks = set(alive)
        return not probe.satisfied()

    @property
    @abstractmethod
    def size(self) -> int:
        """Minimum number of acks that can satisfy the quorum (thrifty hint)."""


class MajorityQuorum(Quorum):
    """Simple majority: ``floor(N/2) + 1`` acks."""

    def satisfied(self) -> bool:
        return len(self.acks) >= self.size

    @property
    def size(self) -> int:
        return len(self.ids) // 2 + 1


class ThresholdQuorum(Quorum):
    """Any fixed number of acks out of the member set.

    This is the building block for FPaxos: phase-1 uses ``N - q2 + 1`` and
    phase-2 uses ``q2``, which guarantees q1/q2 intersection.
    """

    def __init__(self, ids: Iterable[NodeID], threshold: int) -> None:
        super().__init__(ids)
        if not 1 <= threshold <= len(self.ids):
            raise QuorumError(
                f"threshold {threshold} outside [1, {len(self.ids)}]"
            )
        self._threshold = threshold

    def satisfied(self) -> bool:
        return len(self.acks) >= self._threshold

    @property
    def size(self) -> int:
        return self._threshold


class FastQuorum(Quorum):
    """EPaxos-style fast quorum, approximately 3/4 of all nodes (paper
    section 2): defaults to ``ceil(3N/4)`` acks."""

    def __init__(self, ids: Iterable[NodeID], size: int | None = None) -> None:
        super().__init__(ids)
        n = len(self.ids)
        self._size = size if size is not None else math.ceil(3 * n / 4)
        if not 1 <= self._size <= n:
            raise QuorumError(f"fast quorum size {self._size} outside [1, {n}]")

    def satisfied(self) -> bool:
        return len(self.acks) >= self._size

    @property
    def size(self) -> int:
        return self._size


class GridQuorum(Quorum):
    """WPaxos flexible grid quorum over a ``Z x R`` zone grid.

    With per-zone fault tolerance ``f`` and zone fault tolerance ``fz``:

    - phase-1 (leader election / object stealing) needs ``R - f`` acks in
      each of ``Z - fz`` distinct zones;
    - phase-2 (replication) needs ``f + 1`` acks in each of ``fz + 1``
      distinct zones.

    Any phase-1 quorum intersects any phase-2 quorum, which is the safety
    condition inherited from Flexible Paxos.
    """

    def __init__(
        self,
        ids: Iterable[NodeID],
        phase: int,
        f: int = 0,
        fz: int = 0,
    ) -> None:
        super().__init__(ids)
        if phase not in (1, 2):
            raise QuorumError(f"grid quorum phase must be 1 or 2, got {phase}")
        self._phase = phase
        self._f = f
        self._fz = fz
        self._zones: dict[int, set[NodeID]] = {}
        for node in self.ids:
            self._zones.setdefault(node.zone, set()).add(node)
        zone_count = len(self._zones)
        per_zone = min(len(members) for members in self._zones.values())
        if phase == 1:
            self._zones_needed = zone_count - fz
            self._per_zone_needed = per_zone - f
        else:
            self._zones_needed = fz + 1
            self._per_zone_needed = f + 1
        if self._zones_needed < 1 or self._zones_needed > zone_count:
            raise QuorumError(
                f"fz={fz} infeasible for {zone_count} zones in phase {phase}"
            )
        if self._per_zone_needed < 1 or self._per_zone_needed > per_zone:
            raise QuorumError(
                f"f={f} infeasible for {per_zone} nodes per zone in phase {phase}"
            )

    def satisfied(self) -> bool:
        complete_zones = sum(
            1
            for members in self._zones.values()
            if len(self.acks & members) >= self._per_zone_needed
        )
        return complete_zones >= self._zones_needed

    @property
    def size(self) -> int:
        return self._zones_needed * self._per_zone_needed

    @property
    def zones_needed(self) -> int:
        return self._zones_needed

    @property
    def per_zone_needed(self) -> int:
        return self._per_zone_needed

    def preferred_members(self, anchor_zone: int, topology_order: Sequence[int] | None = None) -> list[NodeID]:
        """A minimal member set satisfying the quorum, preferring
        ``anchor_zone`` and then zones in ``topology_order`` (nearest-first).

        Used by thrifty senders: a WPaxos leader in zone ``z`` with fz=0
        replicates only within its own zone.
        """
        zone_order = [anchor_zone] if anchor_zone in self._zones else []
        remaining = [z for z in sorted(self._zones) if z != anchor_zone]
        if topology_order is not None:
            order_index = {z: i for i, z in enumerate(topology_order)}
            remaining.sort(key=lambda z: order_index.get(z, len(order_index)))
        zone_order.extend(remaining)
        members: list[NodeID] = []
        for zone in zone_order[: self._zones_needed]:
            zone_members = sorted(self._zones[zone])
            members.extend(zone_members[: self._per_zone_needed])
        return members


class GroupQuorum(Quorum):
    """Majority within one designated group of nodes.

    WanKeeper and Vertical Paxos run an ordinary Paxos inside each region;
    their quorums are majorities of the regional group only.
    """

    def satisfied(self) -> bool:
        return len(self.acks) >= self.size

    @property
    def size(self) -> int:
        return len(self.ids) // 2 + 1
