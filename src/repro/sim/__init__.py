"""Discrete-event simulation substrate.

This subpackage replaces the paper's AWS EC2 deployment with a deterministic
discrete-event simulator.  It provides:

- :mod:`repro.sim.clock` — the virtual clock and event loop,
- :mod:`repro.sim.random` — seeded random-number streams,
- :mod:`repro.sim.network` — message transit with per-site-pair latency
  distributions, bandwidth accounting, and fault injection,
- :mod:`repro.sim.server` — a simulated machine with a single CPU+NIC
  processing queue (the abstraction the paper's model assumes, section 3.2),
- :mod:`repro.sim.cluster` — assembly of servers, network, and topology.
"""

from repro.sim.clock import EventLoop
from repro.sim.random import RandomStreams
from repro.sim.network import Network, FaultPlan
from repro.sim.server import Server, ServiceProfile
from repro.sim.cluster import Cluster

__all__ = [
    "EventLoop",
    "RandomStreams",
    "Network",
    "FaultPlan",
    "Server",
    "ServiceProfile",
    "Cluster",
]
