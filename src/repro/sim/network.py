"""Simulated network: latency sampling and fault injection.

One :class:`Network` instance carries every message in a simulation.  Each
endpoint (replica or client) registers an address, a site, and a delivery
callback.  Transit delay between two endpoints is sampled from the one-way
version of the topology's site-pair RTT distribution, so intra-site traffic
follows the paper's Figure-3 normal distribution and WAN traffic follows the
AWS inter-region matrix.

Fault injection implements the paper's four client-library commands
(section 4.2, "Availability"):

- ``Crash(node, t)`` — handled by :meth:`repro.sim.server.Server.freeze`,
- ``Drop(i, j, t)`` — drop every message from ``i`` to ``j``,
- ``Slow(i, j, t)`` — delay messages by a random extra amount,
- ``Flaky(i, j, t)`` — drop messages with some probability,

plus network partitions, which the paper lists as a hard-to-produce failure
that a simulated transport makes trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.core.topology import Topology
from repro.errors import SimulationError
from repro.sim.clock import EventLoop
from repro.sim.random import RandomStreams, truncated_normal

Address = Hashable


@dataclass
class _FaultRule:
    """One active fault: a predicate plus an effect on matching messages."""

    kind: str  # "drop" | "flaky" | "slow" | "partition"
    src: Address | None
    dst: Address | None
    start: float
    end: float
    probability: float = 1.0
    extra_delay_mean: float = 0.0
    extra_delay_sigma: float = 0.0
    groups: tuple[frozenset, ...] = ()

    def matches(self, now: float, src: Address, dst: Address) -> bool:
        if not (self.start <= now < self.end):
            return False
        if self.kind == "partition":
            src_group = next((g for g in self.groups if src in g), None)
            dst_group = next((g for g in self.groups if dst in g), None)
            return src_group is not None and dst_group is not None and src_group is not dst_group
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


class FaultPlan:
    """A schedule of network faults, evaluated per message."""

    def __init__(self) -> None:
        self._rules: list[_FaultRule] = []

    def drop(self, src: Address | None, dst: Address | None, start: float, duration: float) -> None:
        """Drop every message from ``src`` to ``dst`` during the window."""
        self._rules.append(_FaultRule("drop", src, dst, start, start + duration))

    def flaky(
        self,
        src: Address | None,
        dst: Address | None,
        start: float,
        duration: float,
        probability: float = 0.5,
    ) -> None:
        """Drop messages with ``probability`` during the window."""
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"flaky probability {probability!r} outside [0, 1]")
        self._rules.append(
            _FaultRule("flaky", src, dst, start, start + duration, probability=probability)
        )

    def slow(
        self,
        src: Address | None,
        dst: Address | None,
        start: float,
        duration: float,
        extra_delay_mean: float = 0.05,
        extra_delay_sigma: float = 0.01,
    ) -> None:
        """Add a random extra delay to messages during the window."""
        self._rules.append(
            _FaultRule(
                "slow",
                src,
                dst,
                start,
                start + duration,
                extra_delay_mean=extra_delay_mean,
                extra_delay_sigma=extra_delay_sigma,
            )
        )

    def partition(self, groups: list[set], start: float, duration: float) -> None:
        """Disconnect the given endpoint groups from each other."""
        frozen = tuple(frozenset(g) for g in groups)
        self._rules.append(
            _FaultRule("partition", None, None, start, start + duration, groups=frozen)
        )

    def active_rules(self, now: float, src: Address, dst: Address) -> list[_FaultRule]:
        return [rule for rule in self._rules if rule.matches(now, src, dst)]


@dataclass
class NetworkStats:
    messages_sent: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    per_link: dict = field(default_factory=dict)


class Network:
    """Delivers messages between registered endpoints with sampled delays."""

    def __init__(
        self,
        loop: EventLoop,
        topology: Topology,
        streams: RandomStreams,
        faults: FaultPlan | None = None,
        metrics: Any | None = None,
    ) -> None:
        self._loop = loop
        self._topology = topology
        self._rng = streams.stream("network")
        self.faults = faults if faults is not None else FaultPlan()
        self._sites: dict[Address, str] = {}
        self._receivers: dict[Address, Callable[[Address, Any, int], None]] = {}
        self.stats = NetworkStats()
        # Per-node message counters (repro.obs.MetricsHub); the network is
        # the one chokepoint every message crosses, so counting here keeps
        # the replica hot path untouched.
        self.metrics = metrics

    @property
    def topology(self) -> Topology:
        return self._topology

    def register(
        self,
        address: Address,
        site: str,
        on_receive: Callable[[Address, Any, int], None],
    ) -> None:
        """Attach an endpoint.  ``on_receive(src, message, size)`` fires on
        delivery (the receiver is responsible for charging its own queue)."""
        if site not in self._topology.sites:
            raise SimulationError(f"site {site!r} not in topology {self._topology.sites!r}")
        if address in self._receivers:
            raise SimulationError(f"address {address!r} already registered")
        self._sites[address] = site
        self._receivers[address] = on_receive

    def replace_receiver(
        self, address: Address, on_receive: Callable[[Address, Any, int], None]
    ) -> None:
        """Swap the delivery callback of an already-registered endpoint.

        Used by reboot/wipe fault injection: while a node is down its
        address stays routable (peers keep sending; delays and fault rules
        still apply) but deliveries land in a sink, and after restart the
        fresh replica instance takes over the address.
        """
        if address not in self._receivers:
            raise SimulationError(f"address {address!r} not registered")
        self._receivers[address] = on_receive

    def site_of(self, address: Address) -> str:
        return self._sites[address]

    def one_way_delay(self, src: Address, dst: Address) -> float:
        """Sample a one-way transit delay in **seconds**."""
        dist = self._topology.site_rtt(self._sites[src], self._sites[dst]).one_way()
        delay_ms = truncated_normal(self._rng, dist.mean_ms, dist.sigma_ms, floor=0.0)
        return delay_ms / 1e3

    def transit(self, src: Address, dst: Address, message: Any, size_bytes: int) -> None:
        """Carry ``message`` from ``src`` to ``dst``, applying faults."""
        if dst not in self._receivers:
            raise SimulationError(f"unknown destination {dst!r}")
        now = self._loop.now
        delay = self.one_way_delay(src, dst)
        for rule in self.faults.active_rules(now, src, dst):
            if rule.kind in ("drop", "partition"):
                self.stats.messages_dropped += 1
                if self.metrics is not None:
                    self.metrics.on_dropped(src, type(message).__name__, size_bytes)
                return
            if rule.kind == "flaky":
                if self._rng.random() < rule.probability:
                    self.stats.messages_dropped += 1
                    if self.metrics is not None:
                        self.metrics.on_dropped(src, type(message).__name__, size_bytes)
                    return
            elif rule.kind == "slow":
                delay += abs(
                    truncated_normal(
                        self._rng, rule.extra_delay_mean, rule.extra_delay_sigma, floor=0.0
                    )
                )
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size_bytes
        link = (self._sites[src], self._sites[dst])
        self.stats.per_link[link] = self.stats.per_link.get(link, 0) + 1
        if self.metrics is not None:
            # Delivery is certain once past the fault rules, so the receive
            # counter can be bumped at send time (counts, not timestamps).
            type_name = type(message).__name__
            self.metrics.on_sent(src, type_name, size_bytes)
            self.metrics.on_received(dst, type_name, size_bytes)
        receiver = self._receivers[dst]
        self._loop.call_after(delay, receiver, src, message, size_bytes)
