"""Simulated network: latency sampling and fault injection.

One :class:`Network` instance carries every message in a simulation.  Each
endpoint (replica or client) registers an address, a site, and a delivery
callback.  Transit delay between two endpoints is sampled from the one-way
version of the topology's site-pair RTT distribution, so intra-site traffic
follows the paper's Figure-3 normal distribution and WAN traffic follows the
AWS inter-region matrix.

Fault injection implements the paper's four client-library commands
(section 4.2, "Availability"):

- ``Crash(node, t)`` — handled by :meth:`repro.sim.server.Server.freeze`,
- ``Drop(i, j, t)`` — drop every message from ``i`` to ``j``,
- ``Slow(i, j, t)`` — delay messages by a random extra amount,
- ``Flaky(i, j, t)`` — drop messages with some probability,

plus network partitions, which the paper lists as a hard-to-produce failure
that a simulated transport makes trivial.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro.core.topology import Topology
from repro.errors import SimulationError
from repro.sim.clock import EventLoop
from repro.sim.random import RandomStreams, resample_above, truncated_normal

Address = Hashable


@dataclass(slots=True)
class _FaultRule:
    """One active fault: a predicate plus an effect on matching messages."""

    kind: str  # "drop" | "flaky" | "slow" | "partition"
    src: Address | None
    dst: Address | None
    start: float
    end: float
    probability: float = 1.0
    extra_delay_mean: float = 0.0
    extra_delay_sigma: float = 0.0
    groups: tuple[frozenset, ...] = ()

    def matches(self, now: float, src: Address, dst: Address) -> bool:
        if not (self.start <= now < self.end):
            return False
        if self.kind == "partition":
            src_group = next((g for g in self.groups if src in g), None)
            dst_group = next((g for g in self.groups if dst in g), None)
            return src_group is not None and dst_group is not None and src_group is not dst_group
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


class FaultPlan:
    """A schedule of network faults, evaluated per message.

    The plan keeps the union ``[earliest start, latest end)`` of all its
    rules' windows so the per-message hot path (:meth:`Network.transit`)
    can skip rule matching entirely — with zero allocations — whenever the
    current time cannot fall inside any rule's window.  Rules are only ever
    added, so the envelope only widens.
    """

    def __init__(self) -> None:
        self._rules: list[_FaultRule] = []
        self._window_start = float("inf")
        self._window_end = float("-inf")

    def _note_window(self, start: float, end: float) -> None:
        if start < self._window_start:
            self._window_start = start
        if end > self._window_end:
            self._window_end = end

    def possibly_active(self, now: float) -> bool:
        """False when no rule's window can contain ``now``."""
        return self._window_start <= now < self._window_end

    def drop(self, src: Address | None, dst: Address | None, start: float, duration: float) -> None:
        """Drop every message from ``src`` to ``dst`` during the window."""
        self._rules.append(_FaultRule("drop", src, dst, start, start + duration))
        self._note_window(start, start + duration)

    def flaky(
        self,
        src: Address | None,
        dst: Address | None,
        start: float,
        duration: float,
        probability: float = 0.5,
    ) -> None:
        """Drop messages with ``probability`` during the window."""
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"flaky probability {probability!r} outside [0, 1]")
        self._rules.append(
            _FaultRule("flaky", src, dst, start, start + duration, probability=probability)
        )
        self._note_window(start, start + duration)

    def slow(
        self,
        src: Address | None,
        dst: Address | None,
        start: float,
        duration: float,
        extra_delay_mean: float = 0.05,
        extra_delay_sigma: float = 0.01,
    ) -> None:
        """Add a random extra delay to messages during the window."""
        self._rules.append(
            _FaultRule(
                "slow",
                src,
                dst,
                start,
                start + duration,
                extra_delay_mean=extra_delay_mean,
                extra_delay_sigma=extra_delay_sigma,
            )
        )
        self._note_window(start, start + duration)

    def partition(self, groups: list[set], start: float, duration: float) -> None:
        """Disconnect the given endpoint groups from each other."""
        frozen = tuple(frozenset(g) for g in groups)
        self._rules.append(
            _FaultRule("partition", None, None, start, start + duration, groups=frozen)
        )
        self._note_window(start, start + duration)

    def active_rules(self, now: float, src: Address, dst: Address) -> list[_FaultRule]:
        return [rule for rule in self._rules if rule.matches(now, src, dst)]


@dataclass(slots=True)
class NetworkStats:
    messages_sent: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    # Message count per (src_site, dst_site) pair.  A Counter so the hot
    # path can use ``+= 1`` without a get/default dance; it compares equal
    # to (and iterates like) a plain dict for existing consumers.
    per_link: Counter[tuple[str, str]] = field(default_factory=Counter)


class Network:
    """Delivers messages between registered endpoints with sampled delays."""

    def __init__(
        self,
        loop: EventLoop,
        topology: Topology,
        streams: RandomStreams,
        faults: FaultPlan | None = None,
        metrics: Any | None = None,
    ) -> None:
        self._loop = loop
        self._topology = topology
        self._rng = streams.stream("network")
        self.faults = faults if faults is not None else FaultPlan()
        self._sites: dict[Address, str] = {}
        self._receivers: dict[Address, Callable[[Address, Any, int], None]] = {}
        # Addresses whose receiver is currently a reboot/wipe sink: messages
        # still transit (and pay their sender-side costs) but nothing is
        # listening, so delivery must not be charged to the receiver.
        self._down: set[Address] = set()
        self.stats = NetworkStats()
        # Per-(src, dst) route cache: the one-way delay distribution's
        # (mean_ms, sigma_ms) and the interned (src_site, dst_site) link
        # key.  Sites are fixed at registration and the topology's RTT
        # matrix is immutable, so entries never invalidate; caching spares
        # the hot path two site lookups, a distribution construction, and
        # a fresh link tuple per message.
        self._routes: dict[tuple[Address, Address], tuple[float, float, tuple[str, str]]] = {}
        # type(message) -> interned __name__, shared by sent/received/
        # dropped accounting.
        self._type_names: dict[type, str] = {}
        # Per-node message counters (repro.obs.MetricsHub); the network is
        # the one chokepoint every message crosses, so counting here keeps
        # the replica hot path untouched.
        self.metrics = metrics

    @property
    def topology(self) -> Topology:
        return self._topology

    def register(
        self,
        address: Address,
        site: str,
        on_receive: Callable[[Address, Any, int], None],
    ) -> None:
        """Attach an endpoint.  ``on_receive(src, message, size)`` fires on
        delivery (the receiver is responsible for charging its own queue)."""
        if site not in self._topology.sites:
            raise SimulationError(f"site {site!r} not in topology {self._topology.sites!r}")
        if address in self._receivers:
            raise SimulationError(f"address {address!r} already registered")
        self._sites[address] = site
        self._receivers[address] = on_receive

    def replace_receiver(
        self,
        address: Address,
        on_receive: Callable[[Address, Any, int], None],
        down: bool = False,
    ) -> None:
        """Swap the delivery callback of an already-registered endpoint.

        Used by reboot/wipe fault injection: while a node is down its
        address stays routable (peers keep sending; delays and fault rules
        still apply) but deliveries land in a sink, and after restart the
        fresh replica instance takes over the address.  ``down=True`` marks
        the new callback as such a sink, so deliveries into it are not
        counted as received by the node.
        """
        if address not in self._receivers:
            raise SimulationError(f"address {address!r} not registered")
        self._receivers[address] = on_receive
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def site_of(self, address: Address) -> str:
        return self._sites[address]

    def _route(self, src: Address, dst: Address) -> tuple[float, float, tuple[str, str]]:
        route = self._routes.get((src, dst))
        if route is None:
            src_site = self._sites[src]
            dst_site = self._sites[dst]
            dist = self._topology.site_rtt(src_site, dst_site).one_way()
            route = (dist.mean_ms, dist.sigma_ms, (src_site, dst_site))
            self._routes[(src, dst)] = route
        return route

    def one_way_delay(self, src: Address, dst: Address) -> float:
        """Sample a one-way transit delay in **seconds**."""
        mean_ms, sigma_ms, _link = self._route(src, dst)
        delay_ms = truncated_normal(self._rng, mean_ms, sigma_ms, floor=0.0)
        return delay_ms / 1e3

    def _type_name(self, message: Any) -> str:
        cls = type(message)
        name = self._type_names.get(cls)
        if name is None:
            name = self._type_names[cls] = cls.__name__
        return name

    def transit(self, src: Address, dst: Address, message: Any, size_bytes: int) -> None:
        """Carry ``message`` from ``src`` to ``dst``, applying faults."""
        if dst not in self._receivers:
            raise SimulationError(f"unknown destination {dst!r}")
        # Delay is sampled before fault matching so a dropped message still
        # consumes exactly one delay draw — keeping the RNG stream, and
        # therefore every later sample in the run, identical with and
        # without the early-out below.
        rng = self._rng
        mean_ms, sigma_ms, link = self._route(src, dst)
        delay_ms = rng.gauss(mean_ms, sigma_ms)
        if delay_ms <= 0.0:
            delay_ms = resample_above(rng, mean_ms, sigma_ms, 0.0)
        delay = delay_ms / 1e3
        faults = self.faults
        if faults._window_start <= self._loop.now < faults._window_end:
            now = self._loop.now
            for rule in faults._rules:
                if not rule.matches(now, src, dst):
                    continue
                kind = rule.kind
                if kind == "drop" or kind == "partition":
                    self.stats.messages_dropped += 1
                    if self.metrics is not None:
                        self.metrics.on_dropped(src, self._type_name(message), size_bytes)
                    return
                if kind == "flaky":
                    if rng.random() < rule.probability:
                        self.stats.messages_dropped += 1
                        if self.metrics is not None:
                            self.metrics.on_dropped(src, self._type_name(message), size_bytes)
                        return
                else:  # slow
                    extra = rng.gauss(rule.extra_delay_mean, rule.extra_delay_sigma)
                    if extra <= 0.0:
                        extra = resample_above(
                            rng, rule.extra_delay_mean, rule.extra_delay_sigma, 0.0
                        )
                    delay += abs(extra)
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size_bytes
        stats.per_link[link] += 1
        type_name = self._type_name(message)
        if self.metrics is not None:
            self.metrics.on_sent(src, type_name, size_bytes)
        self._loop.call_after(
            delay,
            self._deliver,
            self._receivers[dst],
            src,
            dst,
            message,
            size_bytes,
            type_name,
        )

    def _deliver(
        self,
        receiver: Callable[[Address, Any, int], None],
        src: Address,
        dst: Address,
        message: Any,
        size_bytes: int,
        type_name: str,
    ) -> None:
        """Hand a message to its (send-time) receiver callback.

        The receive counter is charged here — at delivery time — and only
        when the destination is not currently a reboot/wipe sink, so
        messages that vanish into a down node never count as received.
        """
        if self.metrics is not None and dst not in self._down:
            self.metrics.on_received(dst, type_name, size_bytes)
        receiver(src, message, size_bytes)
