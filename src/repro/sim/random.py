"""Seeded random-number streams.

Each simulation component (network pair latencies, workload generation,
service-time jitter, ...) draws from its own named stream so that adding a
new consumer of randomness does not perturb the draws seen by existing ones.
Streams are derived deterministically from a single root seed.
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """A family of independent ``random.Random`` streams under one seed."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed mixes the root seed with a CRC of the name, so
        distinct names yield (practically) independent streams and the same
        (seed, name) pair always yields the same sequence.
        """
        rng = self._streams.get(name)
        if rng is None:
            substream_seed = (self._seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            rng = random.Random(substream_seed)
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child family of streams (e.g. one per cluster).

        The parent seed is shifted clear of the 32-bit CRC before mixing,
        so distinct ``(seed, name)`` pairs can only collide if the names
        themselves CRC-collide — a ``<< 16`` shift would let the seed's low
        bits alias against the CRC's high half (two different parents
        spawning two different names could land on the same child seed).
        """
        child_seed = (self._seed << 32) ^ zlib.crc32(name.encode("utf-8"))
        return RandomStreams(child_seed)


def truncated_normal(rng: random.Random, mu: float, sigma: float, floor: float = 0.0) -> float:
    """Sample Normal(mu, sigma) truncated below at ``floor`` by resampling.

    Network delays are modeled as normal per the paper (Figure 3) but can
    never be negative; resampling preserves the shape near the mean far
    better than clamping when ``mu`` is several sigmas above ``floor``.

    The first draw is unrolled: with realistic parameters (``mu`` several
    sigmas above ``floor``) it almost always succeeds, so the common case
    is a single ``gauss`` call with no loop setup.  Callers that inline
    that first draw themselves fall back to :func:`resample_above`, which
    continues the *same* draw sequence — 64 draws total either way, so the
    RNG stream is bit-identical however the sample is taken.
    """
    value = rng.gauss(mu, sigma)
    if value > floor:
        return value
    return resample_above(rng, mu, sigma, floor)


def resample_above(rng: random.Random, mu: float, sigma: float, floor: float) -> float:
    """Draws 2..64 of :func:`truncated_normal`, after a failed first draw."""
    for _ in range(63):
        value = rng.gauss(mu, sigma)
        if value > floor:
            return value
    # Pathological parameters (mu far below floor): fall back to the floor
    # plus a small positive offset so the simulation can proceed.
    return floor + abs(sigma) * 1e-3
