"""Virtual clock and event loop.

The entire empirical prong of the reproduction runs on virtual time: one
:class:`EventLoop` per simulation, a heap of pending events, and a
monotonically advancing clock.  All times are in **seconds** of virtual time.

Determinism: events scheduled for the same instant fire in scheduling order
(a per-loop sequence number breaks ties), so a fixed seed yields a bit-for-bit
identical run.

Performance notes (see ``docs/PERFORMANCE.md``): the run loops bind
``heapq`` functions and hot attributes to locals, cancelled events are
counted and the heap is compacted when cancellations dominate (client retry
timers are cancelled on nearly every reply, so an uncompacted heap would
grow with *issued* requests rather than *outstanding* ones), and dispatch
order is pinned by ``(when, seq)`` alone — compaction reheapifies the same
entries and therefore cannot reorder anything.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

# Sentinel used to mark cancelled events without rebuilding the heap.
_CANCELLED = object()
# Sentinel stamped onto entries as they fire, so a late ``cancel()`` (e.g. a
# client cancelling a retry timer that already went off) is a no-op instead
# of corrupting the cancelled-entry count that drives compaction.
_FIRED = object()

# Compact the heap when cancelled entries outnumber live ones by this
# factor (and there are enough of them to matter).  Compaction is O(n),
# amortized O(1) per cancellation because at least half the heap is
# removed each time it runs.
_COMPACT_RATIO = 2
_COMPACT_MIN = 512


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_entry", "_loop")

    def __init__(self, entry: list, loop: "EventLoop") -> None:
        self._entry = entry
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice (or cancelling
        an event that already fired) is a no-op."""
        entry = self._entry
        if entry[-1] is not _CANCELLED and entry[-1] is not _FIRED:
            entry[-1] = _CANCELLED
            self._loop._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._entry[-1] is _CANCELLED

    @property
    def time(self) -> float:
        """Virtual time at which the event is (or was) due to fire."""
        return self._entry[0]


class EventLoop:
    """A discrete-event scheduler over virtual time.

    Usage::

        loop = EventLoop()
        loop.call_at(1.5, handler, arg)
        loop.call_after(0.25, handler2)
        loop.run_until(10.0)
    """

    # Process-wide tallies across every loop instance, so ``--profile``
    # reports (repro.bench.profiling) can show simulated-event throughput
    # without holding references to the loops an experiment created.
    total_events_fired = 0
    total_compactions = 0

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[list] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._stopped = False
        self._cancelled = 0  # cancelled entries still sitting in the heap
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_fired

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (for instrumentation)."""
        return self._compactions

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at virtual time ``when``.

        ``when`` must not be in the past; scheduling at exactly ``now`` is
        allowed and fires in FIFO order relative to other events at ``now``.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.9f} before now={self._now:.9f}"
            )
        entry = [when, next(self._seq), args, fn]
        heapq.heappush(self._heap, entry)
        return EventHandle(entry, self)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` call to return."""
        self._stopped = True

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        cancelled = self._cancelled
        if cancelled >= _COMPACT_MIN and cancelled > (
            len(self._heap) - cancelled
        ) * _COMPACT_RATIO:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Heap order is a function of each entry's ``(when, seq)`` prefix
        only, so rebuilding the heap from the live entries cannot change
        dispatch order — it just frees the memory and skips the pops.
        """
        self._heap = [entry for entry in self._heap if entry[-1] is not _CANCELLED]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1
        EventLoop.total_compactions += 1

    def run_until(self, deadline: float) -> None:
        """Execute events in time order until ``deadline`` (inclusive).

        The clock is left at ``deadline`` even if the heap drains earlier, so
        repeated calls advance time monotonically.
        """
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        cancelled_sentinel = _CANCELLED
        fired_sentinel = _FIRED
        fired = 0
        try:
            while heap and not self._stopped:
                if heap[0][0] > deadline:
                    break
                entry = heappop(heap)
                fn = entry[3]
                if fn is cancelled_sentinel:
                    self._cancelled -= 1
                    continue
                self._now = entry[0]
                entry[3] = fired_sentinel
                fired += 1
                fn(*entry[2])
                if heap is not self._heap:  # compaction swapped the list
                    heap = self._heap
        finally:
            self._events_fired += fired
            EventLoop.total_events_fired += fired
        if not self._stopped and self._now < deadline:
            self._now = deadline

    def run(self, max_events: int | None = None) -> None:
        """Execute events until the heap is empty (or ``max_events`` fire)."""
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        cancelled_sentinel = _CANCELLED
        fired_sentinel = _FIRED
        fired = 0
        try:
            while heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    return
                entry = heappop(heap)
                fn = entry[3]
                if fn is cancelled_sentinel:
                    self._cancelled -= 1
                    continue
                self._now = entry[0]
                entry[3] = fired_sentinel
                fired += 1
                fn(*entry[2])
                if heap is not self._heap:
                    heap = self._heap
        finally:
            self._events_fired += fired
            EventLoop.total_events_fired += fired

    def next_time(self) -> float | None:
        """Virtual time of the earliest live event, or None if the heap is
        drained.  Pops cancelled heads on the way, so repeated peeks stay
        O(1) amortized.  The conservative lockstep scheduler in
        :mod:`repro.shard.cluster` uses this to decide which of several
        loops holds the globally-next event.
        """
        heap = self._heap
        while heap and heap[0][3] is _CANCELLED:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    def live_pending(self) -> int:
        """Number of queued events that will actually fire (cancelled
        entries excluded)."""
        return len(self._heap) - self._cancelled


class NodeClock:
    """A node's local wall clock: virtual time plus a per-node offset.

    Lease-based protocols reason about *durations* read off local clocks
    ("do not grant to anyone else for the next L seconds").  Those
    arguments only hold if clocks drift by a bounded amount, so the
    simulator models each node's clock as the global virtual clock plus
    an adjustable offset.  A ``skew`` fault (see :mod:`repro.bench.nemesis`)
    jumps the offset mid-run — the adversarial case for lease safety,
    because a duration measured across the jump is wrong by the jump size.

    Offsets never affect event scheduling: timers still run on the loop's
    virtual time.  Only code that explicitly reads ``clock.now`` (the
    lease machinery) observes the skew, mirroring how real systems
    schedule on monotonic clocks but compare lease timestamps across
    machines.
    """

    __slots__ = ("_loop", "offset")

    def __init__(self, loop: EventLoop, offset: float = 0.0) -> None:
        self._loop = loop
        self.offset = offset

    @property
    def now(self) -> float:
        """This node's local reading of the current time."""
        return self._loop.now + self.offset

    def skew(self, delta: float) -> None:
        """Jump the local clock by ``delta`` seconds (may be negative)."""
        self.offset += delta
