"""Virtual clock and event loop.

The entire empirical prong of the reproduction runs on virtual time: one
:class:`EventLoop` per simulation, a heap of pending events, and a
monotonically advancing clock.  All times are in **seconds** of virtual time.

Determinism: events scheduled for the same instant fire in scheduling order
(a per-loop sequence number breaks ties), so a fixed seed yields a bit-for-bit
identical run.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

# Sentinel used to mark cancelled events without rebuilding the heap.
_CANCELLED = object()


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is a no-op."""
        self._entry[-1] = _CANCELLED

    @property
    def cancelled(self) -> bool:
        return self._entry[-1] is _CANCELLED

    @property
    def time(self) -> float:
        """Virtual time at which the event is (or was) due to fire."""
        return self._entry[0]


class EventLoop:
    """A discrete-event scheduler over virtual time.

    Usage::

        loop = EventLoop()
        loop.call_at(1.5, handler, arg)
        loop.call_after(0.25, handler2)
        loop.run_until(10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[list] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_fired

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at virtual time ``when``.

        ``when`` must not be in the past; scheduling at exactly ``now`` is
        allowed and fires in FIFO order relative to other events at ``now``.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when:.9f} before now={self._now:.9f}"
            )
        entry = [when, next(self._seq), args, fn]
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` call to return."""
        self._stopped = True

    def run_until(self, deadline: float) -> None:
        """Execute events in time order until ``deadline`` (inclusive).

        The clock is left at ``deadline`` even if the heap drains earlier, so
        repeated calls advance time monotonically.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            when = self._heap[0][0]
            if when > deadline:
                break
            when, _seq, args, fn = heapq.heappop(self._heap)
            if fn is _CANCELLED:
                continue
            self._now = when
            self._events_fired += 1
            fn(*args)
        if not self._stopped and self._now < deadline:
            self._now = deadline

    def run(self, max_events: int | None = None) -> None:
        """Execute events until the heap is empty (or ``max_events`` fire)."""
        self._stopped = False
        fired = 0
        while self._heap and not self._stopped:
            if max_events is not None and fired >= max_events:
                return
            when, _seq, args, fn = heapq.heappop(self._heap)
            if fn is _CANCELLED:
                continue
            self._now = when
            self._events_fired += 1
            fired += 1
            fn(*args)

    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)
