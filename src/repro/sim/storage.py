"""Simulated per-node durable storage: disk profile, WAL, snapshots.

The paper's prong-1 model (and the seed simulator) keeps every replica
purely in memory, so ``Crash(t)`` only *freezes* a node.  Real deployments
pay an fsync on the consensus critical path ("The Performance of Paxos in
the Cloud", Marandi et al.) and recover from a write-ahead log after a
reboot.  This module adds that missing layer while preserving the paper's
single-queue node model: every disk write is charged through the same
CPU+NIC FIFO queue (:class:`repro.sim.server.Server`) that processes
messages, so durability costs and message costs contend exactly like they
do on a real box with one OS scheduler.

Three fault modes are distinguished by what survives:

============  ==================  =============
fault         volatile state      disk contents
============  ==================  =============
``freeze``    survives            survives
``reboot``    lost                survive
``wipe``      lost                destroyed
============  ==================  =============

:class:`Disk` models the durable medium (it survives ``reboot``);
:class:`WalWriter` models the *process-side* write path (page cache +
group-commit scheduler) and is volatile: records handed to it are only
durable once their fsync completes, so a reboot loses writes that were
still in flight — exactly the power-loss semantics a correct protocol
must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

#: Fixed per-record overhead (framing, checksum, key metadata) charged for
#: every WAL append, mirroring how :class:`repro.paxi.message.Message`
#: charges a fixed base size per message.
WAL_RECORD_BYTES = 64

#: Durability modes accepted by :class:`repro.paxi.config.Config`.
#:
#: - ``"none"``  — in-memory (seed behavior; no disk, no cost),
#: - ``"fsync"`` — every record is synced individually before its
#:   completion callback fires (fsync on the critical path),
#: - ``"group"`` — records are group-committed: all records that arrive
#:   while a sync is in flight share the next sync (amortized durability).
DURABILITY_MODES = ("none", "fsync", "group")


@dataclass(frozen=True)
class DiskProfile:
    """Analytic description of the simulated disk.

    Defaults model a cloud NVMe/EBS-gp3-like volume: ~100 us per fsync and
    200 MB/s of sequential log bandwidth.  At 64-byte WAL records the
    fsync latency dominates (the transfer adds ~0.3 us), which is the
    regime that makes group commit worthwhile.
    """

    fsync_latency: float = 100e-6  # seconds per fsync (queue occupancy)
    write_bandwidth_bps: float = 200e6  # sequential bytes per second

    def __post_init__(self) -> None:
        if self.fsync_latency < 0:
            raise SimulationError(f"negative fsync latency {self.fsync_latency!r}")
        if self.write_bandwidth_bps <= 0:
            raise SimulationError(
                f"disk write bandwidth must be positive, got {self.write_bandwidth_bps!r}"
            )

    def sync_cost(self, size_bytes: float) -> float:
        """Queue occupancy (seconds) to write + fsync ``size_bytes``."""
        if size_bytes < 0:
            raise SimulationError(f"negative write size {size_bytes!r}")
        return self.fsync_latency + size_bytes / self.write_bandwidth_bps


@dataclass(frozen=True)
class WalRecord:
    """One durable log record.

    ``kind`` is protocol-defined (``"promise"``, ``"accept"``, ``"term"``,
    ``"append"``, ``"truncate"``...).  ``slot`` tags records that belong to
    one log position so snapshotting can truncate them; slot-less records
    (ballot promises, term/vote pairs) survive truncation.
    """

    kind: str
    slot: int | None
    data: Any
    size_bytes: int = WAL_RECORD_BYTES


@dataclass(frozen=True)
class Snapshot:
    """A point-in-time durable copy of the applied state machine.

    ``upto`` is the last slot/index folded into ``payload`` (protocol
    ordering: every slot ``<= upto`` is reflected).  ``payload`` is an
    opaque protocol-defined object — for the KV protocols a store dump
    plus the request-dedup cache, so a restored node neither loses nor
    re-executes client commands.
    """

    upto: int
    payload: Any
    size_bytes: int


class WriteAheadLog:
    """The durable record sequence on one disk.

    Purely a container: costs are charged by :class:`WalWriter` before
    records land here, so anything present in ``records`` is durable by
    construction.
    """

    def __init__(self) -> None:
        self._records: list[WalRecord] = []
        self.bytes_written: int = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[WalRecord, ...]:
        return tuple(self._records)

    def append(self, record: WalRecord) -> None:
        self._records.append(record)
        self.bytes_written += record.size_bytes

    def truncate_through(self, slot: int) -> int:
        """Drop slot-tagged records at or below ``slot`` (after a snapshot
        has captured their effects).  Slot-less records are kept.  Returns
        the number of records dropped."""
        before = len(self._records)
        self._records = [
            r for r in self._records if r.slot is None or r.slot > slot
        ]
        return before - len(self._records)

    def clear(self) -> None:
        self._records = []


class Disk:
    """One node's durable medium: a WAL plus at most one snapshot.

    Survives :meth:`reboot` (volatile state is the owner's problem) and is
    emptied by :meth:`wipe`.
    """

    def __init__(self, profile: DiskProfile | None = None) -> None:
        self.profile = profile if profile is not None else DiskProfile()
        self.wal = WriteAheadLog()
        self.snapshot: Snapshot | None = None
        self.fsyncs: int = 0
        self.wipes: int = 0

    def install_snapshot(self, snapshot: Snapshot) -> None:
        """Replace the snapshot and drop WAL records it supersedes."""
        self.snapshot = snapshot
        self.wal.truncate_through(snapshot.upto)

    def wipe(self) -> None:
        """Destroy everything (disk replacement / volume loss)."""
        self.wal.clear()
        self.wal.bytes_written = 0
        self.snapshot = None
        self.wipes += 1


class WalWriter:
    """The volatile write path from a replica to its :class:`Disk`.

    ``persist(record, then)`` schedules ``record`` for durability and
    invokes ``then()`` (if given) once the covering fsync completes.  The
    fsync occupies the node's single CPU+NIC queue via
    ``server.submit``, so durability contends with message processing.

    Two modes:

    - ``"fsync"``: each record gets its own sync job — the full
      ``profile.sync_cost`` is serialized behind every persist.
    - ``"group"``: at most one sync job is outstanding; records that
      arrive while it is queued or in service wait in *pending* and are
      submitted as one coalesced sync when the outstanding job
      completes.  This is classic group commit: the sync rate
      self-clocks to roughly one per queue cycle, so per-record
      durability cost shrinks as load grows (and batching PR 2's fat
      log entries amortize it further).

    The writer is volatile: :meth:`power_fail` drops records whose sync
    has not completed, modeling a reboot mid-write.  Completion callbacks
    for lost records never fire.
    """

    _Entry = tuple  # (WalRecord, callback | None)

    def __init__(self, server: Any, disk: Disk, mode: str) -> None:
        if mode not in ("fsync", "group"):
            raise SimulationError(f"unknown WAL writer mode {mode!r}")
        self._server = server
        self._disk = disk
        self.mode = mode
        self._pending: list[WalWriter._Entry] = []
        self._inflight = 0  # records covered by submitted, uncompleted syncs
        self._epoch = 0

    @property
    def pending(self) -> int:
        """Records handed over but not yet durable."""
        return len(self._pending) + self._inflight

    def persist(self, record: WalRecord, then: Callable[[], None] | None = None) -> None:
        if self.mode == "fsync":
            self._submit_sync([(record, then)])
        else:
            self._pending.append((record, then))
            if self._inflight == 0:
                self._submit_sync(self._pending)
                self._pending = []

    def _submit_sync(self, group: list) -> None:
        size = sum(r.size_bytes for r, _ in group)
        self._inflight += len(group)
        self._server.submit(
            self._disk.profile.sync_cost(size), self._sync_done, self._epoch, group
        )

    def _sync_done(self, epoch: int, group: list) -> None:
        if epoch != self._epoch:
            return  # stale sync from before a power failure
        self._inflight -= len(group)
        self._disk.fsyncs += 1
        for record, _ in group:
            self._disk.wal.append(record)
        for _, then in group:
            if then is not None:
                then()
        if self._pending and self._inflight == 0:
            self._submit_sync(self._pending)
            self._pending = []

    def power_fail(self) -> None:
        """Reboot mid-write: in-flight and pending records are lost."""
        self._pending = []
        self._inflight = 0
        self._epoch += 1
