"""Cluster assembly: one event loop, one network, many servers.

A :class:`Cluster` is the simulated counterpart of an EC2 deployment: it
owns the virtual clock, the seeded random streams, the network (with its
fault plan), and a :class:`~repro.sim.server.Server` per machine.  The Paxi
layer (:mod:`repro.paxi`) builds replicas and clients on top of it.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.core.topology import Topology
from repro.errors import SimulationError
from repro.obs import Observability, active_capture
from repro.sim.clock import EventLoop
from repro.sim.network import FaultPlan, Network
from repro.sim.random import RandomStreams
from repro.sim.server import Server, ServiceProfile


class Cluster:
    """A simulated deployment: clock + network + per-machine servers."""

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        profile: ServiceProfile | None = None,
        faults: FaultPlan | None = None,
        loop: EventLoop | None = None,
    ) -> None:
        self.topology = topology
        # A sharded cluster (repro.shard) passes one shared loop to every
        # group so all groups advance on a single virtual-time axis; a
        # standalone cluster owns its own.
        self.loop = loop if loop is not None else EventLoop()
        self.streams = RandomStreams(seed)
        self.faults = faults if faults is not None else FaultPlan()
        # Metrics are always on (cheap counters); tracing stays off unless
        # an ObsCapture is active (the experiments CLI ``--trace`` flag) or
        # a caller flips ``obs.tracer.enabled`` before issuing load.
        self.obs = Observability(trace=False)
        capture = active_capture()
        if capture is not None:
            capture.adopt(self.obs)
        self.network = Network(
            self.loop, topology, self.streams, self.faults, metrics=self.obs.metrics
        )
        self.default_profile = profile if profile is not None else ServiceProfile()
        self._servers: dict[Hashable, Server] = {}

    # ------------------------------------------------------------------
    # Endpoint management
    # ------------------------------------------------------------------

    def add_server(
        self,
        address: Hashable,
        site: str,
        on_receive: Callable[[Hashable, Any, int], None],
        profile: ServiceProfile | None = None,
    ) -> Server:
        """Create a machine at ``site`` and hook it into the network.

        ``on_receive(src, message, size)`` fires when a message arrives at
        the machine's NIC; charging the processing cost to the machine's
        queue is the caller's job (the Paxi node runtime does this).
        """
        if address in self._servers:
            raise SimulationError(f"server {address!r} already exists")
        server = Server(self.loop, name=str(address))
        self._servers[address] = server
        self.network.register(address, site, on_receive)
        self.obs.metrics.attach_server(address, server)
        return server

    def add_lightweight_endpoint(
        self,
        address: Hashable,
        site: str,
        on_receive: Callable[[Hashable, Any, int], None],
    ) -> None:
        """Register an endpoint with no processing queue (used by clients).

        The paper's benchmark clients are load generators, not modeled
        machines, so their processing cost is negligible by construction.
        """
        self.network.register(address, site, on_receive)

    def replace_receiver(
        self,
        address: Hashable,
        on_receive: Callable[[Hashable, Any, int], None],
        down: bool = False,
    ) -> None:
        """Re-point an existing address at a new delivery callback (used
        when a rebooted/wiped node restarts with a fresh replica).
        ``down=True`` marks the callback as an outage sink — deliveries
        into it are not charged to the node's receive counters."""
        self.network.replace_receiver(address, on_receive, down=down)

    def server(self, address: Hashable) -> Server:
        try:
            return self._servers[address]
        except KeyError:
            raise SimulationError(f"no server at address {address!r}") from None

    @property
    def servers(self) -> dict[Hashable, Server]:
        return dict(self._servers)

    # ------------------------------------------------------------------
    # Fault injection (the paper's client-library commands, section 4.2)
    # ------------------------------------------------------------------

    def crash(
        self, address: Hashable, duration: float | None, at: float | None = None
    ) -> None:
        """Freeze the machine at ``address`` for ``duration`` seconds.

        ``duration=None`` is a permanent crash-stop (the machine never
        resumes), so availability experiments don't have to fake one with
        a huge finite duration.
        """
        when = self.loop.now if at is None else at
        self.loop.call_at(when, self.server(address).freeze, duration)

    def drop(self, src: Hashable, dst: Hashable, duration: float, at: float | None = None) -> None:
        start = self.loop.now if at is None else at
        self.faults.drop(src, dst, start, duration)

    def slow(
        self,
        src: Hashable,
        dst: Hashable,
        duration: float,
        at: float | None = None,
        extra_delay_mean: float = 0.05,
        extra_delay_sigma: float = 0.01,
    ) -> None:
        start = self.loop.now if at is None else at
        self.faults.slow(src, dst, start, duration, extra_delay_mean, extra_delay_sigma)

    def flaky(
        self,
        src: Hashable,
        dst: Hashable,
        duration: float,
        probability: float = 0.5,
        at: float | None = None,
    ) -> None:
        start = self.loop.now if at is None else at
        self.faults.flaky(src, dst, start, duration, probability)

    def partition(self, groups: list[set], duration: float, at: float | None = None) -> None:
        start = self.loop.now if at is None else at
        self.faults.partition(groups, start, duration)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.now

    def run_for(self, seconds: float) -> None:
        self.loop.run_until(self.loop.now + seconds)

    def run_until(self, deadline: float) -> None:
        self.loop.run_until(deadline)

    def drain(self, max_events: int | None = None) -> None:
        """Run until no events remain (useful in small tests)."""
        self.loop.run(max_events)
