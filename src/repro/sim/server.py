"""Simulated machine: a single CPU+NIC processing queue.

The paper's model (section 3.2) treats each node as *one* FIFO queue through
which every incoming and outgoing message passes, combining CPU and NIC into
a single server.  This module implements exactly that abstraction for the
empirical prong, which is what makes the simulator and the analytic model
directly comparable.

Costs are charged per message:

- an incoming message costs ``t_in`` of CPU plus ``size/bandwidth`` of NIC,
- an outgoing unicast costs ``t_out`` plus ``size/bandwidth``,
- an outgoing broadcast costs ``t_out`` **once** (the CPU serializes the
  message a single time, as the paper notes) plus one NIC transmission per
  destination.

Fault injection: ``freeze(duration)`` models the paper's ``Crash(t)`` client
command — the node stops draining its queue for ``duration`` seconds; queued
work is not lost.  ``freeze(None)`` is a permanent crash-stop.  A *reboot*
is harsher: :meth:`Server.power_off` kills queued and in-service jobs
outright (their completions never fire), and :meth:`Server.power_on`
resumes with an empty queue — volatile state does not survive; only
:mod:`repro.sim.storage` contents do.

Gray failures: :meth:`Server.set_slow_factor` multiplies the service cost
of every subsequently submitted job — the node is alive (heartbeats still
flow, timers still fire) but drains its queue at ``1/factor`` of the
healthy rate.  This is the *fail-slow* CPU fault that crash-stop testing
never exercises.  A factor of ``1.0`` (the default) is bit-identical to
the pre-fault code path.

Priority lane: :meth:`Server.submit_priority` enqueues onto a separate
control-plane queue drained strictly before the FIFO data queue, so
protocol-internal traffic (heartbeats, elections, catch-up) is never stuck
behind a saturated client backlog.  Unused, the lane costs one empty-deque
check per job start and changes no accounting.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.clock import EventLoop


@dataclass(frozen=True)
class ServiceProfile:
    """Per-node processing costs (all in seconds / bytes-per-second).

    Defaults are calibrated so that a 9-node single-leader Paxos saturates
    around 8,000 rounds/s, the figure the paper reports for m5.large
    instances (Figure 7): ``ts = 2*t_out + N*t_in + 2*N*size/bandwidth``
    = 2*10us + 9*10us + 18*0.8us = 124.4 us -> ~8,040 rounds/s.
    """

    t_in: float = 10e-6
    t_out: float = 10e-6
    bandwidth_bps: float = 1e9 / 8.0  # 1 Gb/s expressed in bytes per second
    default_message_bytes: int = 100

    def nic_seconds(self, size_bytes: int) -> float:
        """Time to push ``size_bytes`` through the NIC."""
        return size_bytes / self.bandwidth_bps

    def incoming_cost(self, size_bytes: int, weight: float = 1.0) -> float:
        """Queue occupancy for one received message."""
        return self.t_in * weight + self.nic_seconds(size_bytes)

    def outgoing_cost(self, size_bytes: int, copies: int = 1, weight: float = 1.0) -> float:
        """Queue occupancy for sending one message to ``copies`` peers.

        Serialization (``t_out``) is paid once; NIC transmission is paid per
        copy, matching the paper's broadcast accounting.
        """
        if copies < 1:
            raise SimulationError(f"outgoing message needs >=1 copy, got {copies}")
        return self.t_out * weight + copies * self.nic_seconds(size_bytes)


@dataclass(slots=True)
class ServerStats:
    """Aggregate occupancy statistics for one server."""

    jobs_completed: int = 0
    busy_seconds: float = 0.0
    wait_seconds: float = 0.0
    max_queue_length: int = 0
    queue_area: float = 0.0  # time-integral of queue length (jobs x seconds)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)

    def mean_wait(self) -> float:
        """Average queueing delay (seconds) across completed jobs."""
        if self.jobs_completed == 0:
            return 0.0
        return self.wait_seconds / self.jobs_completed

    def mean_queue_depth(self, elapsed: float) -> float:
        """Time-averaged number of jobs in the system (queued + in service),
        the L in Little's law."""
        if elapsed <= 0:
            return 0.0
        return self.queue_area / elapsed


class Server:
    """A FIFO single-server work queue on virtual time.

    ``submit(cost, fn, *args)`` enqueues a job that will occupy the server
    for ``cost`` seconds once it reaches the head of the queue, then invoke
    ``fn(*args)``.
    """

    def __init__(self, loop: EventLoop, name: str = "server") -> None:
        self._loop = loop
        self.name = name
        self._queue: deque[tuple[float, float, Callable[..., Any], tuple]] = deque()
        # Control-plane lane, drained strictly before ``_queue``; empty (and
        # cost-free) unless submit_priority is ever used.
        self._priority: deque[tuple[float, float, Callable[..., Any], tuple]] = deque()
        self._busy = False
        self._frozen_until = 0.0
        # Fail-slow degradation: every submitted job's cost is multiplied by
        # this factor.  1.0 (healthy) leaves the hot path untouched.
        self._slow_factor = 1.0
        self._epoch = 0  # bumped by power_off to orphan in-service jobs
        self._area_at = loop.now
        # Sum of the costs of all *queued* (not in-service) jobs: the time a
        # new arrival would wait behind the backlog.  Maintained
        # incrementally so admission control can read it in O(1).
        self._queued_cost = 0.0
        self.stats = ServerStats()

    @property
    def queue_length(self) -> int:
        return len(self._queue) + len(self._priority) + (1 if self._busy else 0)

    @property
    def slow_factor(self) -> float:
        """Current fail-slow service-cost multiplier (1.0 = healthy)."""
        return self._slow_factor

    def set_slow_factor(self, factor: float) -> None:
        """Degrade (or restore) the node's service rate.

        Every job submitted while the factor is ``f`` costs ``f`` times its
        healthy service time; jobs already queued keep the cost they were
        charged on arrival.  The factor survives freezes and reboots — a
        fail-slow machine stays slow until the fault is lifted.
        """
        if factor <= 0:
            raise SimulationError(f"slow factor must be positive, got {factor!r}")
        self._slow_factor = factor

    @property
    def frozen(self) -> bool:
        return self._loop.now < self._frozen_until

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued (not yet in service) work a new arrival would
        wait behind.  The in-service job's remaining time is not included,
        so this slightly underestimates true wait — good enough for
        deadline-based admission control, and O(1) to read."""
        return self._queued_cost

    def touch_queue_area(self) -> None:
        """Accrue the queue-length time-integral up to the current instant.
        Called before every queue-length change and by metric snapshots."""
        now = self._loop.now
        self.stats.queue_area += self.queue_length * (now - self._area_at)
        self._area_at = now

    def submit(self, cost: float, fn: Callable[..., Any], *args: Any) -> None:
        """Enqueue a job costing ``cost`` seconds, completing with ``fn``."""
        if cost < 0:
            raise SimulationError(f"negative job cost {cost!r}")
        if self._slow_factor != 1.0:
            cost *= self._slow_factor
        # Inlined touch_queue_area + max-depth update: submit runs for
        # every message hop, so the hot path avoids the extra calls and
        # property lookups.
        now = self._loop.now
        stats = self.stats
        queued = len(self._queue) + len(self._priority) + (1 if self._busy else 0)
        stats.queue_area += queued * (now - self._area_at)
        self._area_at = now
        self._queue.append((now, cost, fn, args))
        self._queued_cost += cost
        queued += 1
        if queued > stats.max_queue_length:
            stats.max_queue_length = queued
        if not self._busy:
            self._maybe_start()

    def submit_priority(self, cost: float, fn: Callable[..., Any], *args: Any) -> None:
        """Enqueue a control-plane job onto the priority lane.

        Priority jobs share the single server (one job in service at a
        time, full cost charged) but are drained strictly before the FIFO
        data queue, so a heartbeat arriving behind 10k queued client
        requests is answered after at most one in-service job, not after
        the whole backlog.
        """
        if cost < 0:
            raise SimulationError(f"negative job cost {cost!r}")
        if self._slow_factor != 1.0:
            cost *= self._slow_factor
        now = self._loop.now
        stats = self.stats
        queued = len(self._queue) + len(self._priority) + (1 if self._busy else 0)
        stats.queue_area += queued * (now - self._area_at)
        self._area_at = now
        self._priority.append((now, cost, fn, args))
        self._queued_cost += cost
        queued += 1
        if queued > stats.max_queue_length:
            stats.max_queue_length = queued
        if not self._busy:
            self._maybe_start()

    def freeze(self, duration: float | None) -> None:
        """Stop draining the queue for ``duration`` seconds (Crash(t)).

        ``duration=None`` is a permanent crash-stop: the node never drains
        again (no wake event is scheduled, so a drained event loop is not
        held open by a dead node).
        """
        if duration is None:
            self._frozen_until = math.inf
            return
        if duration < 0:
            raise SimulationError(f"negative freeze duration {duration!r}")
        self._frozen_until = max(self._frozen_until, self._loop.now + duration)
        if not self._busy and not math.isinf(self._frozen_until):
            # Re-check the queue once the freeze lifts.
            self._loop.call_at(self._frozen_until, self._maybe_start)

    def power_off(self) -> None:
        """Reboot, phase 1: lose all queued and in-service work.

        In-service jobs are orphaned via the epoch guard — their
        already-scheduled completion events fire but do nothing.  The
        server stays down (permanently frozen) until :meth:`power_on`.
        """
        self.touch_queue_area()
        self._queue.clear()
        self._priority.clear()
        self._queued_cost = 0.0
        self._epoch += 1
        self._busy = False
        self._frozen_until = math.inf

    def power_on(self) -> None:
        """Reboot, phase 2: resume draining with an empty queue."""
        self._frozen_until = self._loop.now
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy or not (self._queue or self._priority):
            return
        loop = self._loop
        if loop.now < self._frozen_until:
            if not math.isinf(self._frozen_until):
                loop.call_at(self._frozen_until, self._maybe_start)
            return
        lane = self._priority if self._priority else self._queue
        enqueued_at, cost, fn, args = lane.popleft()
        self._queued_cost -= cost
        if not self._queue and not self._priority:
            self._queued_cost = 0.0  # re-zero so float drift never accumulates
        self._busy = True
        self.stats.wait_seconds += loop.now - enqueued_at
        loop.call_after(cost, self._complete, self._epoch, cost, fn, args)

    def evict_oldest(
        self, match: Callable[[Callable[..., Any], tuple], bool]
    ) -> tuple[float, float, Callable[..., Any], tuple] | None:
        """Remove and return the oldest queued job satisfying ``match(fn,
        args)``, or None if no queued job matches.  The in-service job is
        never evicted (its completion event is already scheduled).

        This is the ``shed_policy="drop_oldest"`` primitive: O(queue) scan,
        but it only runs when the queue is over its admission limit, i.e.
        exactly when the node is otherwise about to melt down.
        """
        for index, job in enumerate(self._queue):
            if match(job[2], job[3]):
                self.touch_queue_area()
                del self._queue[index]
                self._queued_cost -= job[1]
                if not self._queue:
                    self._queued_cost = 0.0
                return job
        return None

    def _complete(self, epoch: int, cost: float, fn: Callable[..., Any], args: tuple) -> None:
        if epoch != self._epoch:
            return  # job belonged to a powered-off incarnation
        now = self._loop.now
        stats = self.stats
        stats.queue_area += (len(self._queue) + len(self._priority) + 1) * (now - self._area_at)
        self._area_at = now
        self._busy = False
        stats.jobs_completed += 1
        stats.busy_seconds += cost
        fn(*args)
        if self._queue or self._priority:
            self._maybe_start()
