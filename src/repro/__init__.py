"""repro: reproduction of "Dissecting the Performance of Strongly-Consistent
Replication Protocols" (SIGMOD 2019).

Two complementary prongs, mirroring the paper:

- :mod:`repro.core` — the queueing-theory analytic models and the distilled
  load/capacity/latency formulas (paper sections 3 and 6);
- :mod:`repro.paxi` + :mod:`repro.protocols` — a Python port of the Paxi
  prototyping framework and the protocols it evaluates, running on the
  discrete-event simulator in :mod:`repro.sim` (paper sections 4 and 5).
"""

__version__ = "1.0.0"
