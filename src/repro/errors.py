"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ProtocolError(ReproError):
    """A replication protocol violated one of its own preconditions."""


class QuorumError(ReproError):
    """A quorum system was constructed or used incorrectly."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class CheckerError(ReproError):
    """A correctness checker received a malformed history."""


class ModelError(ReproError):
    """An analytic model was evaluated outside its domain."""


class PlacementError(ConfigError):
    """A key→shard placement map is malformed (overlapping or
    non-covering ranges, bad bucket counts, leader-placement conflicts)."""


class UnknownShardError(ConfigError):
    """A key, range, or explicit assignment names a shard that does not
    exist in the configured ``shards`` section."""


class ClientError(ReproError):
    """Base class for errors raised on the client path (sessions,
    transactions).  Catch this to handle any client-side failure."""


class InvalidOptions(ClientError, ValueError):
    """Session or per-call options are malformed (unknown consistency
    mode, conflicting targets, ...).

    Also a ``ValueError`` so pre-existing callers that caught the
    untyped raise keep working for one release.
    """


class RequestFailed(ClientError):
    """An individual command failed to produce a reply."""


class RetriesExhausted(RequestFailed):
    """The client gave up after exhausting its retransmission budget."""


class NoQuorum(RequestFailed):
    """No reply arrived within the deadline — the responsible replica
    group could not assemble a quorum (or is unreachable)."""


class Overloaded(RequestFailed):
    """The cluster shed this request instead of queueing it (an explicit
    ``Rejected`` reply from admission control), or the client's own
    overload defenses — retry budget, circuit breaker — refused to keep
    transmitting into a saturated cluster.

    Always a *clean* failure: the command was never executed anywhere, so
    callers may safely retry later without risking a duplicate write.
    """


class TxnError(ClientError):
    """Base class for multi-key transaction failures."""


class TxnAborted(TxnError):
    """A cross-shard transaction aborted cleanly (no write applied).

    ``reason`` says why — e.g. a lock conflict with a concurrent
    transaction — so callers can distinguish retryable aborts from
    programming errors.
    """

    def __init__(self, txn_id: str, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class CoordinatorCrashed(TxnError):
    """The 2PC coordinator crashed mid-transaction (fault injection).

    The outcome is *unknown* until
    :meth:`~repro.shard.cluster.ShardedCluster.recover_txns` runs: a
    transaction that had logged its commit decision rolls forward,
    anything earlier aborts and releases its locks.
    """

    def __init__(self, txn_id: str, phase: str) -> None:
        super().__init__(
            f"coordinator crashed during transaction {txn_id} ({phase}); "
            "outcome unknown until recovery"
        )
        self.txn_id = txn_id
        self.phase = phase
