"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ProtocolError(ReproError):
    """A replication protocol violated one of its own preconditions."""


class QuorumError(ReproError):
    """A quorum system was constructed or used incorrectly."""


class WorkloadError(ReproError):
    """A workload generator received invalid parameters."""


class CheckerError(ReproError):
    """A correctness checker received a malformed history."""


class ModelError(ReproError):
    """An analytic model was evaluated outside its domain."""
