"""Analytic models for the linearizable read paths (leases and quorum reads).

The paper's single-leader model charges every request — read or write — a
full consensus round at the leader.  The two strongly-consistent read
optimizations change that in complementary ways:

1. **Leader-lease reads** stay at the leader but skip the quorum round:
   per-read leader work collapses from ``ts = 2*to + N*ti + 2N*m/b`` to one
   request-in / one reply-out (``ti + to + 2m/b``), and read latency to the
   client-leader round trip ``DL``.  The leader remains the bottleneck, so
   capacity grows as the read share of its work shrinks (see
   :func:`read_write_capacity_split`).

2. **Quorum reads** move reads off the leader entirely: any replica
   coordinates by polling a read quorum of ``r`` members for their accepted
   frontier (``r`` must intersect every phase-2 quorum: a majority for
   MultiPaxos/Raft, ``N - |q2| + 1`` for FPaxos).  The leader only sees
   writes plus its share of frontier queries; read latency pays the local
   trip plus the (r-1)-th order statistic of the poll RTTs plus a rinse
   wait (zero for read-heavy mixes, where the frontier is already applied).

Local (bounded-staleness) reads are modeled by
:class:`repro.core.relaxed.RelaxedPaxosModel`; this module covers only the
linearizable paths.  ``experiments/bench_reads.py`` cross-validates both
against the simulator.
"""

from __future__ import annotations

import math

from repro.core.protocol_models import (
    PaxosModel,
    _BusyNode,
    mean_client_rtt_ms,
    quorum_delay_ms,
)
from repro.core.service import RoundWork, ServiceParams
from repro.core.topology import Topology
from repro.errors import ModelError


def read_service_time(params: ServiceParams) -> float:
    """Leader occupancy for one locally-served read: one incoming request,
    one serialized reply, two NIC transfers."""
    return RoundWork(incoming=1, serializations=1, nic_messages=2).service_time(params)


def quorum_read_coordinator_work(r: int) -> RoundWork:
    """Coordinator-side work of one quorum read polling ``r - 1`` peers:
    the same shape as a Paxos round with N replaced by r."""
    if r < 1:
        raise ModelError(f"read quorum must be positive, got {r}")
    return RoundWork(incoming=r, serializations=2, nic_messages=2 * r)


def quorum_read_member_work() -> RoundWork:
    """Polled-member work: receive one frontier query, send one reply."""
    return RoundWork(incoming=1, serializations=1, nic_messages=2)


def read_write_capacity_split(
    write_ratio: float,
    write_service: float,
    read_service: float,
    read_fraction_at_bottleneck: float = 1.0,
) -> float:
    """Max throughput when the bottleneck node performs every write round
    (``write_service`` seconds each) and ``read_fraction_at_bottleneck`` of
    the reads (``read_service`` seconds each).

    For lease reads the leader serves all reads (fraction 1); for quorum
    reads coordination spreads evenly and the fraction drops to ``1/N``.
    With ``read_service << write_service`` the capacity approaches
    ``1 / (W * write_service)`` — the relaxed-read ceiling — while keeping
    linearizability.
    """
    if not 0.0 < write_ratio <= 1.0:
        raise ModelError(f"write ratio {write_ratio} outside (0, 1]")
    if min(write_service, read_service) <= 0:
        raise ModelError("service times must be positive")
    work = (
        write_ratio * write_service
        + (1.0 - write_ratio) * read_fraction_at_bottleneck * read_service
    )
    return 1.0 / work


class _MixedReadPaxosModel(PaxosModel):
    """Shared plumbing: a write fraction paying the full consensus round
    plus a read fraction on a cheaper path."""

    def __init__(
        self,
        topology: Topology,
        write_ratio: float = 0.5,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
        leader: int = 0,
    ) -> None:
        if not 0.0 < write_ratio <= 1.0:
            raise ModelError(f"write ratio {write_ratio} outside (0, 1]")
        super().__init__(topology, params, client_sites, leader)
        self.write_ratio = write_ratio

    # -- subclass hooks -----------------------------------------------

    def read_latency_ms(self) -> float:
        raise NotImplementedError

    # -- mixed-workload quantities --------------------------------------

    def write_latency_ms(self, system_rate: float) -> float:
        """Writes pay the full consensus path (leader queueing included)."""
        wq = self.busy_node().wait_time(system_rate)
        if math.isinf(wq):
            return math.inf
        return (wq + self.round_service_time()) * 1e3 + super().network_delay_ms()

    def latency_s(self, system_rate: float) -> float:
        write = self.write_latency_ms(system_rate)
        if math.isinf(write):
            return math.inf
        read = self.read_latency_ms()
        return (self.write_ratio * write + (1.0 - self.write_ratio) * read) / 1e3


class LeaseReadPaxosModel(_MixedReadPaxosModel):
    """Leader leases: reads served from the leader's store, no quorum round.

    Capacity: the leader is still the single bottleneck, but each read
    costs ``read_service_time`` instead of a full round — the knee lifts by
    ``(W*ts + R*ts) / (W*ts + R*ts_read)``.
    """

    name = "LeasePaxos"

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        node.add(self.write_ratio, self.round_service_time())
        node.add(1.0 - self.write_ratio, read_service_time(self.params))
        return node

    def read_latency_ms(self) -> float:
        """One client-leader round trip: no quorum wait, no rinse."""
        leader_site = self.topology.node_site(self.leader)
        return mean_client_rtt_ms(self.topology, leader_site, self.client_sites)


class QuorumReadPaxosModel(_MixedReadPaxosModel):
    """Paxos quorum reads coordinated by the client's nearest replica.

    The leader's queue sees only writes, a ``1/N`` share of read
    coordinations, and the frontier queries it answers, so read-heavy
    capacity scales out with the cluster instead of saturating one node.
    ``read_quorum`` defaults to a majority; FPaxos deployments must pass
    ``N - |q2| + 1`` (every read quorum must intersect every phase-2
    quorum).
    """

    name = "QuorumReadPaxos"

    def __init__(
        self,
        topology: Topology,
        write_ratio: float = 0.5,
        read_quorum: int | None = None,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
        leader: int = 0,
    ) -> None:
        super().__init__(topology, write_ratio, params, client_sites, leader)
        r = read_quorum if read_quorum is not None else self.n // 2 + 1
        if not 1 <= r <= self.n:
            raise ModelError(f"read quorum {r} outside [1, {self.n}]")
        self.read_quorum = r

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        read_ratio = 1.0 - self.write_ratio
        node.add(self.write_ratio, self.round_service_time())
        # Coordinations land uniformly on the N replicas...
        node.add(
            read_ratio / self.n,
            quorum_read_coordinator_work(self.read_quorum).service_time(self.params),
        )
        # ...and each read polls r-1 of the other N-1 members.
        if self.n > 1:
            node.add(
                read_ratio * (self.read_quorum - 1) / (self.n - 1),
                quorum_read_member_work().service_time(self.params),
            )
        return node

    def read_latency_ms(self) -> float:
        """Local trip to the coordinator plus the poll's completing reply
        (the (r-1)-th order statistic, like a phase-2 quorum of size r).
        The rinse wait is zero in the read-heavy regime this models: the
        polled frontier is already applied at the coordinator."""
        # The coordinator is in the client's own site: average the local
        # RTT over the client mix.
        local = sum(
            self.topology.site_rtt_mean_ms(site, site) for site in self.client_sites
        ) / len(self.client_sites)
        return local + quorum_delay_ms(self.topology, self.leader, self.read_quorum)
