"""Analytic overload models: what happens *past* the knee.

The paper's queueing models (``repro.core.queueing``) stop at ρ -> 1:
an infinite-buffer M/D/1's expected wait diverges there, which is exactly
where overload engineering begins.  This module extends the analytic
prong beyond saturation with two standard tools:

- :class:`FiniteQueueModel` — a server with a *bounded* queue (capacity
  ``K`` waiting slots plus the one in service) that sheds arrivals when
  full.  Loss follows the M/M/1/K truncated-geometric formula, a close
  (and conservative) approximation for the simulator's near-deterministic
  service times; goodput ``λ(1 - P_loss)`` rises to the knee then
  *plateaus at capacity* instead of collapsing — the graceful-degradation
  curve that admission control buys.

- :class:`RetryAmplificationModel` — the metastable-failure mechanism.
  With clients that retry up to ``max_attempts`` times, the *effective*
  arrival rate is the fixed point of ``x = λ · A(p(x))`` where ``A(p) =
  (1 - p^k)/(1 - p)`` is the expected attempts per request at failure
  probability ``p``, and ``p(x) ≈ max(0, 1 - µ/x)`` is the loss a server
  at offered rate ``x`` inflicts.  Above :meth:`hysteresis_bound` ``λ* =
  µ/k``, a transient burst can push the system into a self-sustaining
  retry storm that persists after the burst ends — goodput collapses and
  *stays* collapsed (Bronson et al.'s "metastable failure" state).

Both are validated against the simulator in
``repro.experiments.bench_overload``; see ``docs/OVERLOAD.md`` for the
narrative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError

__all__ = ["FiniteQueueModel", "RetryAmplificationModel"]


@dataclass(frozen=True)
class FiniteQueueModel:
    """A single server with service rate ``mu`` and ``capacity`` total
    slots (queue + in service) that rejects arrivals when full.

    Uses the M/M/1/K blocking probability: with ``ρ = λ/µ`` and ``K =
    capacity``, the stationary probability an arrival finds the system
    full is ``P_K = ρ^K (1 - ρ) / (1 - ρ^{K+1})`` (and ``1/(K+1)`` at the
    removable singularity ρ = 1).  Unlike the infinite-queue models, every
    quantity stays finite at and beyond saturation — that is the point.
    """

    mu: float
    capacity: int
    name: str = "M/M/1/K"

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise ModelError(f"service rate must be positive, got {self.mu}")
        if self.capacity < 1:
            raise ModelError(f"capacity must be >= 1, got {self.capacity}")

    def loss(self, arrival_rate: float) -> float:
        """P(arrival is shed), in [0, 1)."""
        if arrival_rate <= 0:
            raise ModelError(f"arrival rate must be positive, got {arrival_rate}")
        rho = arrival_rate / self.mu
        k = self.capacity
        if abs(rho - 1.0) < 1e-9:
            return 1.0 / (k + 1)
        return (rho**k) * (1.0 - rho) / (1.0 - rho ** (k + 1))

    def goodput(self, arrival_rate: float) -> float:
        """Admitted (= eventually served) requests per second: λ(1 - P_K).

        Monotonically increasing in λ and bounded by ``mu`` — the shape of
        a well-defended server: linear below the knee, flat above it.
        """
        return arrival_rate * (1.0 - self.loss(arrival_rate))

    def curve(self, rates: list[float]) -> list[tuple[float, float]]:
        """(offered, goodput) pairs for plotting against the simulator."""
        return [(rate, self.goodput(rate)) for rate in rates]


@dataclass(frozen=True)
class RetryAmplificationModel:
    """Fixed-point model of client retry storms against a server of
    capacity ``mu``, with each request attempted at most ``max_attempts``
    times (1 original + up to ``max_attempts - 1`` retries).

    The feedback loop: failures beget retries, retries raise the offered
    rate, a higher offered rate begets more failures.  The effective
    attempt rate ``x`` solves::

        x = lam * A(p(x)),   A(p) = (1 - p^k) / (1 - p),   p(x) = max(0, 1 - mu/x)

    ``A`` is the expected number of attempts per request when each fails
    independently with probability ``p`` (a geometric series truncated at
    ``k = max_attempts``).  Below the knee the only fixed point is ``x =
    lam`` (no failures); past it, ``x`` inflates toward ``k * lam``.
    """

    mu: float
    max_attempts: int

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise ModelError(f"service rate must be positive, got {self.mu}")
        if self.max_attempts < 1:
            raise ModelError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def expected_attempts(self, failure_probability: float) -> float:
        """A(p): mean attempts per request at per-attempt failure rate p."""
        p = failure_probability
        if not 0.0 <= p <= 1.0:
            raise ModelError(f"failure probability {p} outside [0, 1]")
        k = self.max_attempts
        if p >= 1.0:
            return float(k)
        return (1.0 - p**k) / (1.0 - p)

    def failure_probability(self, attempt_rate: float) -> float:
        """p(x): the loss a server of rate mu inflicts at offered rate x.

        The fluid-limit approximation: no loss below capacity, and the
        excess fraction ``1 - mu/x`` above it (any work beyond ``mu``
        attempts/second must be shed or time out).
        """
        if attempt_rate <= 0:
            return 0.0
        return max(0.0, 1.0 - self.mu / attempt_rate)

    def effective_attempt_rate(
        self, offered: float, iterations: int = 200
    ) -> float:
        """Solve the fixed point x = offered * A(p(x)) by iteration.

        The map is monotone and bounded by ``offered * max_attempts``, so
        simple iteration from the optimistic end converges; we damp each
        step to keep the oscillatory regime (k large, offered >> mu)
        stable.
        """
        if offered <= 0:
            raise ModelError(f"offered rate must be positive, got {offered}")
        x = offered
        for _ in range(iterations):
            target = offered * self.expected_attempts(self.failure_probability(x))
            x = 0.5 * (x + target)
        return x

    def goodput(self, offered: float) -> float:
        """Requests completing *in time* per second at this offered rate,
        once retry amplification reaches its fixed point.

        The server still serves ``mu`` attempts/second in the storm, but a
        served attempt only counts if its client is still waiting — in the
        fluid limit that fraction is ``mu/x`` (queueing delay scales with
        ``x/mu`` while client patience is fixed, so served-too-late work is
        pure waste).  Below the knee ``x = offered`` and everything lands;
        past it goodput is ``mu²/x``, which *decreases* as retries inflate
        ``x`` — the metastable collapse, not a plateau.
        """
        x = self.effective_attempt_rate(offered)
        if x <= self.mu:
            return offered
        return self.mu * (self.mu / x)

    def hysteresis_bound(self) -> float:
        """λ* = µ / max_attempts: the largest offered load guaranteed to
        recover after an arbitrarily bad burst.

        In the fully-degraded state every request burns all ``k``
        attempts, so the attempt rate is ``k·λ``.  If ``k·λ > µ`` the
        storm is self-sustaining — the server stays saturated with
        doomed retries even after the original trigger clears.  Keeping
        offered load below ``µ/k`` (or capping ``k``, or spending a retry
        *budget* instead of a per-request cap) breaks the loop.
        """
        return self.mu / self.max_attempts

    def is_metastable(self, offered: float) -> bool:
        """True when a burst at this offered load can leave the system in
        a persistent collapsed state (offered > hysteresis bound) even
        though the load itself is below capacity (offered < mu)."""
        return self.hysteresis_bound() < offered < self.mu
