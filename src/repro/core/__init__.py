"""Analytic prong: queueing models, order statistics, and the paper's
distilled formulas (sections 3 and 6)."""

from repro.core.topology import Topology, RttDistribution, lan, aws_wan
from repro.core.queueing import MM1, MD1, MG1, GG1, QueueModel, make_model
from repro.core.order_stats import (
    expected_kth_normal,
    expected_kth_normal_blom,
    kth_smallest,
    normal_quantile,
)
from repro.core.service import (
    RoundWork,
    ServiceParams,
    paxos_service_time,
    paxos_leader_work,
    paxos_follower_work,
    max_throughput,
)
from repro.core.protocol_models import (
    ModelPoint,
    ProtocolModel,
    PaxosModel,
    FPaxosModel,
    EPaxosModel,
    WPaxosModel,
    WanKeeperModel,
    VPaxosModel,
    MenciusModel,
    quorum_delay_ms,
)
from repro.core.load import (
    load,
    load_two_term,
    capacity,
    majority,
    load_paxos,
    load_epaxos,
    load_wpaxos,
)
from repro.core.latency import (
    expected_latency,
    FormulaInputs,
    epaxos_inputs,
    single_leader_inputs,
)
from repro.core.advisor import (
    DeploymentProfile,
    Recommendation,
    recommend,
    all_paths,
    PARAMETERS_EXPLORED,
)

__all__ = [
    "Topology",
    "RttDistribution",
    "lan",
    "aws_wan",
    "MM1",
    "MD1",
    "MG1",
    "GG1",
    "QueueModel",
    "make_model",
    "expected_kth_normal",
    "expected_kth_normal_blom",
    "kth_smallest",
    "normal_quantile",
    "RoundWork",
    "ServiceParams",
    "paxos_service_time",
    "paxos_leader_work",
    "paxos_follower_work",
    "max_throughput",
    "ModelPoint",
    "ProtocolModel",
    "PaxosModel",
    "FPaxosModel",
    "EPaxosModel",
    "WPaxosModel",
    "WanKeeperModel",
    "VPaxosModel",
    "MenciusModel",
    "quorum_delay_ms",
    "load",
    "load_two_term",
    "capacity",
    "majority",
    "load_paxos",
    "load_epaxos",
    "load_wpaxos",
    "expected_latency",
    "FormulaInputs",
    "epaxos_inputs",
    "single_leader_inputs",
    "DeploymentProfile",
    "Recommendation",
    "recommend",
    "all_paths",
    "PARAMETERS_EXPLORED",
]
