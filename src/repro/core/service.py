"""Round service-time accounting (paper section 3.3 and Table 2).

A round's service time ``ts`` measures how long the leader's single
CPU+NIC queue is occupied per consensus round:

    ts = tCPU + tNIC
    tCPU = (outgoing serializations) * to + (incoming messages) * ti
    tNIC = (NIC transmissions) * m / b

For a Paxos phase-2 round with N nodes the leader receives one client
request and N-1 follower acks (``N * ti``), serializes one broadcast and one
client reply (``2 * to``), and pushes ``2N`` messages through the NIC:
``ts = 2*to + N*ti + 2N*m/b`` — Table 2's formula.

Maximum throughput is the reciprocal of the per-request occupancy of the
busiest node: ``µ = 1 / ts`` for single-leader protocols.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class ServiceParams:
    """Analytic counterparts of :class:`repro.sim.server.ServiceProfile`.

    Defaults match the simulator's calibration (m5.large-like: a 9-node
    Paxos leader saturates near 8,000 rounds/s).
    """

    t_in: float = 10e-6  # ti: processing time for an incoming message
    t_out: float = 10e-6  # to: processing time for an outgoing message
    message_bytes: float = 100.0  # m: message size
    bandwidth_bps: float = 1e9 / 8.0  # b: bytes per second

    def __post_init__(self) -> None:
        if min(self.t_in, self.t_out) < 0:
            raise ModelError("per-message CPU times must be non-negative")
        if self.message_bytes < 0:
            raise ModelError("message size must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ModelError("bandwidth must be positive")

    @property
    def nic_time(self) -> float:
        """Seconds to push one message through the NIC."""
        return self.message_bytes / self.bandwidth_bps

    def scaled(self, cpu_weight: float = 1.0, size_factor: float = 1.0) -> "ServiceParams":
        """Penalized costs (the paper penalizes EPaxos message processing
        and message size to account for dependency computation)."""
        return ServiceParams(
            t_in=self.t_in * cpu_weight,
            t_out=self.t_out * cpu_weight,
            message_bytes=self.message_bytes * size_factor,
            bandwidth_bps=self.bandwidth_bps,
        )


@dataclass(frozen=True)
class RoundWork:
    """Message counts one node handles for one round in one role."""

    incoming: float = 0.0  # messages received and deserialized
    serializations: float = 0.0  # distinct outgoing messages serialized
    nic_messages: float = 0.0  # total messages through the NIC (in + out)

    def service_time(self, params: ServiceParams) -> float:
        """Queue occupancy in seconds for this work."""
        return (
            self.incoming * params.t_in
            + self.serializations * params.t_out
            + self.nic_messages * params.nic_time
        )

    def __add__(self, other: "RoundWork") -> "RoundWork":
        return RoundWork(
            self.incoming + other.incoming,
            self.serializations + other.serializations,
            self.nic_messages + other.nic_messages,
        )

    def scale(self, factor: float) -> "RoundWork":
        return RoundWork(
            self.incoming * factor,
            self.serializations * factor,
            self.nic_messages * factor,
        )


def paxos_leader_work(n: int) -> RoundWork:
    """Leader-side work of one Paxos phase-2 round in an N-node cluster:
    N incoming (client request + N-1 acks), 2 serializations (broadcast +
    client reply), and 2N NIC transmissions (Table 2)."""
    if n < 1:
        raise ModelError(f"need at least one node, got {n}")
    return RoundWork(incoming=n, serializations=2, nic_messages=2 * n)


def paxos_follower_work() -> RoundWork:
    """Follower-side work: receive one accept, send one ack (2 messages,
    as the paper notes in section 5.2)."""
    return RoundWork(incoming=1, serializations=1, nic_messages=2)


def paxos_service_time(n: int, params: ServiceParams | None = None) -> float:
    """Table 2: ``ts = 2*to + N*ti + 2N*m/b``."""
    p = params if params is not None else ServiceParams()
    return paxos_leader_work(n).service_time(p)


#: Wire bytes each extra command adds to a batched accept message; matches
#: :attr:`repro.paxi.message.Batch.PER_COMMAND_BYTES`.
BATCH_PER_COMMAND_BYTES = 110.0


def paxos_batched_leader_work(
    n: int, batch_size: int, accept_size_factor: float = 1.0
) -> RoundWork:
    """Leader-side work of ONE phase-2 round carrying B commands.

    Per batch the leader receives B client requests and N-1 acks,
    serializes one (fat) broadcast plus B client replies, and pushes
    through the NIC: the B+N-1 incoming messages, N-1 accept copies
    fattened by ``accept_size_factor`` (the batched accept carries B
    commands), and B replies.  B = 1 with factor 1 reduces exactly to
    :func:`paxos_leader_work`.
    """
    if n < 1:
        raise ModelError(f"need at least one node, got {n}")
    if batch_size < 1:
        raise ModelError(f"batch size must be at least 1, got {batch_size}")
    if accept_size_factor < 1:
        raise ModelError(f"accept size factor must be >= 1, got {accept_size_factor}")
    b = batch_size
    return RoundWork(
        incoming=b + (n - 1),
        serializations=1 + b,
        nic_messages=(b + (n - 1)) + (n - 1) * accept_size_factor + b,
    )


def paxos_batched_service_time(
    n: int,
    batch_size: int,
    params: ServiceParams | None = None,
    per_command_bytes: float = BATCH_PER_COMMAND_BYTES,
) -> float:
    """Per-REQUEST queue occupancy of a batching leader: ``ts_batch / B``.

    The accept message grows by ``per_command_bytes`` per extra command,
    expressed to :class:`RoundWork` as a NIC size factor relative to
    ``params.message_bytes``.  B = 1 matches :func:`paxos_service_time`.
    """
    p = params if params is not None else ServiceParams()
    if p.message_bytes <= 0:
        raise ModelError("batched accounting needs a positive message size")
    factor = 1.0 + per_command_bytes * (batch_size - 1) / p.message_bytes
    work = paxos_batched_leader_work(n, batch_size, factor)
    return work.service_time(p) / batch_size


def max_throughput(service_time: float) -> float:
    """``µ = 1/ts`` (paper section 3.3)."""
    if service_time <= 0:
        raise ModelError(f"service time must be positive, got {service_time}")
    return 1.0 / service_time


# ----------------------------------------------------------------------
# Durable service times (WAL fsync on the critical path)
# ----------------------------------------------------------------------

#: WAL record size for a single-command accept; matches
#: :data:`repro.sim.storage.WAL_RECORD_BYTES`.
WAL_RECORD_BYTES_MODEL = 64.0


@dataclass(frozen=True)
class DurabilityParams:
    """Analytic counterpart of :class:`repro.sim.storage.DiskProfile`.

    An fsync occupies the node's single CPU+NIC+disk queue for
    ``fsync_latency + size / write_bandwidth_bps`` seconds, exactly as the
    simulator charges it.
    """

    fsync_latency: float = 100e-6
    write_bandwidth_bps: float = 200e6

    def __post_init__(self) -> None:
        if self.fsync_latency < 0:
            raise ModelError("fsync latency must be non-negative")
        if self.write_bandwidth_bps <= 0:
            raise ModelError("write bandwidth must be positive")

    def sync_cost(self, size_bytes: float = WAL_RECORD_BYTES_MODEL) -> float:
        """Queue occupancy of one fsync covering ``size_bytes``."""
        if size_bytes < 0:
            raise ModelError("sync size must be non-negative")
        return self.fsync_latency + size_bytes / self.write_bandwidth_bps


def durable_paxos_service_time(
    n: int,
    params: ServiceParams | None = None,
    disk: DurabilityParams | None = None,
) -> float:
    """Fsync-per-record round occupancy: ``ts + d``.

    In ``durability="fsync"`` mode the leader's own accept record costs one
    dedicated sync job on its queue per round, so every round's occupancy
    grows by ``d = fsync_latency + record/bw`` and capacity drops to
    ``1/(ts + d)``.  (Followers pay the same ``d``, but the leader remains
    the bottleneck: its CPU+NIC share is already N times larger.)
    """
    d = (disk if disk is not None else DurabilityParams()).sync_cost()
    return paxos_service_time(n, params) + d


def durable_paxos_batched_service_time(
    n: int,
    batch_size: int,
    params: ServiceParams | None = None,
    disk: DurabilityParams | None = None,
    per_command_bytes: float = BATCH_PER_COMMAND_BYTES,
) -> float:
    """Per-request occupancy of a batching leader with fsync-per-record.

    A batch of B commands is one log slot, hence ONE WAL record fattened by
    ``per_command_bytes`` per extra command: ``(ts_batch + d_B) / B``.
    Batching therefore amortizes the fsync *latency* the same way it
    amortizes per-message CPU — the paper's group-commit effect.
    """
    dp = disk if disk is not None else DurabilityParams()
    record = WAL_RECORD_BYTES_MODEL + per_command_bytes * (batch_size - 1)
    d_b = dp.sync_cost(record)
    ts_batch = paxos_batched_service_time(n, batch_size, params, per_command_bytes)
    return ts_batch + d_b / batch_size


def group_commit_capacity_bound(
    service_time: float,
    sync_cost: float,
    concurrency: float,
) -> float:
    """Capacity of ``durability="group"`` under closed-loop concurrency C.

    Group commit keeps at most one sync outstanding and coalesces every
    record that arrives meanwhile, so a saturated leader settles into a
    self-clocked cycle: C rounds of CPU+NIC work plus ONE sync serve C
    requests — ``µ = C / (C*ts + d)``.  C = 1 degenerates to the fsync
    formula; C → ∞ recovers the in-memory ``1/ts``.
    """
    if service_time <= 0:
        raise ModelError(f"service time must be positive, got {service_time}")
    if sync_cost < 0:
        raise ModelError(f"sync cost must be non-negative, got {sync_cost}")
    if concurrency < 1:
        raise ModelError(f"concurrency must be at least 1, got {concurrency}")
    return concurrency / (concurrency * service_time + sync_cost)
