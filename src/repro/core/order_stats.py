"""k-order statistics of round-trip times (paper section 3.3).

A Paxos leader that self-votes needs ``Q - 1`` follower replies; the time it
waits is the **(Q-1)-th smallest** of ``N - 1`` i.i.d. round trips.  In the
LAN those RTTs share one normal distribution, so we need the expected k-th
order statistic of N normal draws:

- :func:`expected_kth_normal` — the paper's Monte Carlo estimator;
- :func:`expected_kth_normal_blom` — Blom's closed-form approximation
  ``mu + sigma * Phi^{-1}((k - 0.375) / (n + 0.25))``, used as the fast
  deterministic default (it agrees with Monte Carlo to well under one
  percent of sigma for the sizes we care about).

In the WAN the per-pair RTTs differ, so the paper instead picks the k-th
smallest of the deterministic mean RTTs (:func:`kth_smallest`).
"""

from __future__ import annotations

import math
import random

from repro.errors import ModelError


def _check_kn(k: int, n: int) -> None:
    if n < 1:
        raise ModelError(f"need at least one sample, got n={n}")
    if not 1 <= k <= n:
        raise ModelError(f"order k={k} outside [1, {n}]")


def expected_kth_normal(
    k: int,
    n: int,
    mu: float,
    sigma: float,
    samples: int = 20_000,
    rng: random.Random | None = None,
) -> float:
    """Monte Carlo estimate of E[k-th smallest of n Normal(mu, sigma)]."""
    _check_kn(k, n)
    if samples < 1:
        raise ModelError(f"need at least one Monte Carlo sample, got {samples}")
    rng = rng if rng is not None else random.Random(0)
    total = 0.0
    for _ in range(samples):
        draws = sorted(rng.gauss(mu, sigma) for _ in range(n))
        total += draws[k - 1]
    return total / samples


def expected_kth_normal_blom(k: int, n: int, mu: float, sigma: float) -> float:
    """Blom's approximation to the expected k-th normal order statistic."""
    _check_kn(k, n)
    p = (k - 0.375) / (n + 0.25)
    return mu + sigma * normal_quantile(p)


def kth_smallest(values: list[float], k: int) -> float:
    """The k-th smallest of a concrete value list (WAN quorum delay)."""
    _check_kn(k, len(values))
    return sorted(values)[k - 1]


def normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation,
    relative error < 1.15e-9 across the open unit interval)."""
    if not 0.0 < p < 1.0:
        raise ModelError(f"quantile probability {p} outside (0, 1)")
    # Coefficients for the rational approximations.
    a = (
        -3.969683028665376e01,
        2.209460984245205e02,
        -2.759285104469687e02,
        1.383577518672690e02,
        -3.066479806614716e01,
        2.506628277459239e00,
    )
    b = (
        -5.447609879822406e01,
        1.615858368580409e02,
        -1.556989798598866e02,
        6.680131188771972e01,
        -1.328068155288572e01,
    )
    c = (
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e00,
        -2.549732539343734e00,
        4.374664141464968e00,
        2.938163982698783e00,
    )
    d = (
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e00,
        3.754408661907416e00,
    )
    p_low = 0.02425
    p_high = 1.0 - p_low
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > p_high:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
