"""The distilled WAN latency formula (paper section 6.2, Equation 7).

    Latency(S) = (1+c) * ((1-l) * (DL + DQ) + l * DQ)

where ``c`` is the conflict probability, ``l`` the probability a request is
local to its leader, ``DL`` the round trip from the request's origin to the
operation leader, and ``DQ`` the leader's quorum round trip.

For EPaxos ``l = 1`` (every node leads its own commands) and ``c`` is
workload-specific; for the other protocols the paper takes ``c = 0`` and
``l`` workload-specific.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


def expected_batch_delay(
    rate: float, batch_size: float, window: float | None = None
) -> float:
    """Mean extra wait a request spends while its batch fills.

    Two regimes, matching the :class:`~repro.paxi.node.Batcher`:

    - **size-bound** (traffic fast enough to fill B before the window):
      a random request sees on average ``(B-1)/2`` later arrivals before
      the batch closes, each λ⁻¹ apart → ``(B-1)/(2λ)``;
    - **window-bound** (sparse traffic): the batch closes at the window
      timer, so no request waits longer than ``W`` — in the λ→0 limit a
      lone request waits the full window.

    We take ``min((B-1)/(2λ), W)``, a first-order approximation that is
    exact in both limits.  B ≤ 1 means no batching: zero delay.
    """
    if batch_size < 1:
        raise ModelError(f"batch size must be at least 1, got {batch_size}")
    if rate < 0:
        raise ModelError(f"arrival rate must be non-negative, got {rate}")
    if window is not None and window < 0:
        raise ModelError(f"batch window must be non-negative, got {window}")
    if batch_size <= 1:
        return 0.0
    if rate == 0:
        return window if window is not None else 0.0
    fill_delay = (batch_size - 1.0) / (2.0 * rate)
    if window is None:
        return fill_delay
    return min(fill_delay, window)


def expected_latency(
    conflict: float,
    locality: float,
    d_leader: float,
    d_quorum: float,
) -> float:
    """Equation 7, in whatever time unit ``d_leader``/``d_quorum`` use."""
    if not 0.0 <= conflict <= 1.0:
        raise ModelError(f"conflict {conflict} outside [0, 1]")
    if not 0.0 <= locality <= 1.0:
        raise ModelError(f"locality {locality} outside [0, 1]")
    if d_leader < 0 or d_quorum < 0:
        raise ModelError("network delays must be non-negative")
    return (1.0 + conflict) * (
        (1.0 - locality) * (d_leader + d_quorum) + locality * d_quorum
    )


def batched_expected_latency(
    conflict: float,
    locality: float,
    d_leader: float,
    d_quorum: float,
    batch_delay: float,
) -> float:
    """Equation 7 plus the batching delay.

    Batching trades latency for capacity: every request additionally waits
    ``batch_delay`` (see :func:`expected_batch_delay`) for its batch to
    close before the quorum exchange starts.  ``batch_delay=0`` recovers
    the unbatched formula.
    """
    if batch_delay < 0:
        raise ModelError(f"batch delay must be non-negative, got {batch_delay}")
    return batch_delay + expected_latency(conflict, locality, d_leader, d_quorum)


def durable_expected_latency(
    conflict: float,
    locality: float,
    d_leader: float,
    d_quorum: float,
    sync_delay: float,
) -> float:
    """Equation 7 with a WAL fsync on the replication critical path.

    A durable follower acknowledges an accept only after its WAL record is
    synced, so the quorum wait stretches to ``DQ + d``.  The leader's own
    fsync is issued concurrently with the accept broadcast and completes
    well within the quorum round trip, so it adds no latency of its own —
    durability costs one ``d``, not two.
    """
    if sync_delay < 0:
        raise ModelError(f"sync delay must be non-negative, got {sync_delay}")
    return expected_latency(conflict, locality, d_leader, d_quorum + sync_delay)


@dataclass(frozen=True)
class FormulaInputs:
    """The six distilled parameters of the paper's unified theory."""

    leaders: float  # L: number of (operation) leaders
    quorum: float  # Q: quorum size
    conflict: float  # c: conflict probability
    locality: float  # l: locality
    d_leader: float  # DL: RTT to the leader
    d_quorum: float  # DQ: RTT to the quorum

    def latency(self) -> float:
        return expected_latency(self.conflict, self.locality, self.d_leader, self.d_quorum)

    def load(self) -> float:
        from repro.core.load import load

        return load(self.leaders, self.quorum, self.conflict)

    def capacity(self) -> float:
        return 1.0 / self.load()


def epaxos_inputs(n: int, conflict: float, d_quorum: float) -> FormulaInputs:
    """EPaxos under the unified theory: L = N, l = 1 (section 6.2)."""
    from repro.core.load import majority

    return FormulaInputs(
        leaders=n,
        quorum=majority(n),
        conflict=conflict,
        locality=1.0,
        d_leader=0.0,
        d_quorum=d_quorum,
    )


def single_leader_inputs(
    n: int, locality: float, d_leader: float, d_quorum: float
) -> FormulaInputs:
    """MultiPaxos-style protocols: L = 1, c = 0 (section 6.2)."""
    from repro.core.load import majority

    return FormulaInputs(
        leaders=1,
        quorum=majority(n),
        conflict=0.0,
        locality=locality,
        d_leader=d_leader,
        d_quorum=d_quorum,
    )
