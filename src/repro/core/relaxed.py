"""Analytic model for relaxed-consistency replication (paper section 7).

The paper's closing future work: extend the model to bounded and session
consistency.  Relaxing reads changes the model in three ways:

1. **read latency** collapses to the client's local round trip (no quorum,
   no leader trip): ``L_read = D_local``;
2. **leader load** shrinks: only the write fraction ``W`` of requests
   reaches the leader's queue, so capacity grows from ``mu`` to ``mu / W``;
3. a **staleness bound** appears: a replica's state lags the leader by at
   most the commit-propagation period plus one one-way delay, so
   ``delta <= heartbeat_interval + d_leader_replica / 2`` (plus queueing,
   which vanishes at low utilization).

:class:`RelaxedPaxosModel` extends the single-leader model with these
rules; session consistency adds a version-token wait that is zero in the
steady state and at most ``delta`` after the client's own write.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.protocol_models import PaxosModel
from repro.core.topology import Topology
from repro.errors import ModelError
from repro.core.service import ServiceParams


@dataclass(frozen=True)
class StalenessBound:
    """The model's promise for relaxed reads at one replica."""

    heartbeat_interval: float  # commit-watermark period (s)
    one_way_delay: float  # leader -> replica (s)

    @property
    def delta(self) -> float:
        """Worst-case provable staleness in seconds (low utilization)."""
        return self.heartbeat_interval + self.one_way_delay


class RelaxedPaxosModel(PaxosModel):
    """MultiPaxos with relaxed local reads: only writes use consensus."""

    name = "RelaxedPaxos"

    def __init__(
        self,
        topology: Topology,
        write_ratio: float = 0.5,
        heartbeat_interval: float = 0.02,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
        leader: int = 0,
    ) -> None:
        if not 0.0 < write_ratio <= 1.0:
            raise ModelError(f"write ratio {write_ratio} outside (0, 1]")
        super().__init__(topology, params, client_sites, leader)
        self.write_ratio = write_ratio
        self.heartbeat_interval = heartbeat_interval

    def busy_node(self):
        node = super().busy_node()
        # Only the write fraction reaches the leader's queue.
        node.roles = [(frac * self.write_ratio, s) for frac, s in node.roles]
        return node

    def read_latency_ms(self) -> float:
        """Local read: one client-replica round trip, averaged over sites."""
        local = self.topology.local.mean_ms
        return local  # clients read from a replica in their own site

    def write_latency_ms(self, system_rate: float) -> float:
        """Writes still pay the full consensus path."""
        wq = self.busy_node().wait_time(system_rate)
        if math.isinf(wq):
            return math.inf
        return (wq + self.round_service_time()) * 1e3 + super().network_delay_ms()

    def latency_ms(self, system_rate: float) -> float:
        write = self.write_latency_ms(system_rate)
        if math.isinf(write):
            return math.inf
        return self.write_ratio * write + (1 - self.write_ratio) * self.read_latency_ms()

    def latency_s(self, system_rate: float) -> float:
        return self.latency_ms(system_rate) / 1e3

    def staleness_bound(self, replica_site: str) -> StalenessBound:
        """Promise for reads served at ``replica_site``."""
        leader_site = self.topology.node_site(self.leader)
        one_way_ms = self.topology.site_rtt_mean_ms(leader_site, replica_site) / 2.0
        return StalenessBound(self.heartbeat_interval, one_way_ms / 1e3)
