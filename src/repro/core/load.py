"""Load and capacity formulas (paper section 6.1, Equations 1-6).

**Load** ``L(S)`` is the average number of operations the busiest node
performs per request, where one operation is the work of handling one
round-trip exchange with another node.  **Capacity** is its reciprocal:

    Cap(S) = 1 / L(S)                                           (Eq. 1)

    L(S) = (1/L)(1+c)(Q-1) + (1 - 1/L)(1+c)                     (Eq. 2)
         = (1+c)(Q + L - 2) / L                                 (Eq. 3)

with ``L`` leaders, quorum size ``Q``, and conflict probability ``c``.
Equation 3 assumes the thrifty optimization (the leader contacts only
``Q`` nodes); without it use ``Q = N - 1``.

Specializations at N nodes (Equations 4-6):

    L(Paxos)  = floor(N/2)                  (L=1, c=0, Q=floor(N/2)+1)
    L(EPaxos) = (1+c)(floor(N/2)+N-1)/N     (L=N, Q=floor(N/2)+1)
    L(WPaxos) = (N/L + L - 2)/L             (c=0, grid q2 of size N/L)

At N = 9 these give 4, 4/3 (1+c), and 4/3 — the paper's corollary that
WPaxos has the smallest load and hence the highest capacity of the three.
"""

from __future__ import annotations

from repro.errors import ModelError


def _check(leaders: float, quorum: float, conflict: float) -> None:
    if leaders < 1:
        raise ModelError(f"need at least one leader, got {leaders}")
    if quorum < 1:
        raise ModelError(f"quorum must be at least 1, got {quorum}")
    if not 0.0 <= conflict <= 1.0:
        raise ModelError(f"conflict probability {conflict} outside [0, 1]")


def load(leaders: float, quorum: float, conflict: float = 0.0) -> float:
    """Equation 3: ``L(S) = (1+c)(Q + L - 2) / L``."""
    _check(leaders, quorum, conflict)
    return (1.0 + conflict) * (quorum + leaders - 2.0) / leaders


def load_two_term(leaders: float, quorum: float, conflict: float = 0.0) -> float:
    """Equation 2, the un-simplified form (kept separate so tests can prove
    the algebraic identity with Equation 3)."""
    _check(leaders, quorum, conflict)
    lead_share = 1.0 / leaders
    return lead_share * (1.0 + conflict) * (quorum - 1.0) + (1.0 - lead_share) * (
        1.0 + conflict
    )


def capacity(leaders: float, quorum: float, conflict: float = 0.0) -> float:
    """Equation 1: ``Cap(S) = 1 / L(S)`` (in busiest-node operations)."""
    return 1.0 / load(leaders, quorum, conflict)


def majority(n: int) -> int:
    """``floor(N/2) + 1``."""
    if n < 1:
        raise ModelError(f"need at least one node, got {n}")
    return n // 2 + 1


def load_paxos(n: int) -> float:
    """Equation 4: single leader, no conflicts, majority quorum."""
    return load(1, majority(n), 0.0)


def load_epaxos(n: int, conflict: float = 0.0) -> float:
    """Equation 5: every node is an opportunistic leader (L = N)."""
    return load(n, majority(n), conflict)


def load_wpaxos(n: int, leaders: int) -> float:
    """Equation 6: grid phase-2 quorum of size N/L, one leader per zone."""
    if leaders < 1 or n % leaders != 0:
        raise ModelError(f"{leaders} leaders do not evenly divide {n} nodes")
    return load(leaders, n // leaders, 0.0)


# ---------------------------------------------------------------------------
# Batched variants (Equations 1-6 with B commands per consensus round)
# ---------------------------------------------------------------------------
#
# When a leader coalesces B requests into one log entry, the quorum
# exchange — the (1+c)(Q+L-2)/L operations Equation 3 counts — is paid
# once per *batch* instead of once per *request*, so per-request load
# divides by B:
#
#     L_B(S) = L(S) / B          Cap_B(S) = B * Cap(S)
#
# B = 1 recovers the unbatched formulas exactly.  The division is the
# ideal amortization: it ignores the per-command bytes that fatten the
# accept message, which the service-time layer accounts for separately
# (:func:`repro.core.service.paxos_batched_leader_work`).


def _check_batch(batch_size: float) -> None:
    if batch_size < 1:
        raise ModelError(f"batch size must be at least 1, got {batch_size}")


def batched_load(
    leaders: float, quorum: float, conflict: float = 0.0, batch_size: float = 1.0
) -> float:
    """Batched Equation 3: ``L_B(S) = L(S) / B`` (identity at B = 1)."""
    _check_batch(batch_size)
    return load(leaders, quorum, conflict) / batch_size


def batched_capacity(
    leaders: float, quorum: float, conflict: float = 0.0, batch_size: float = 1.0
) -> float:
    """Batched Equation 1: ``Cap_B(S) = B / L(S)``."""
    return 1.0 / batched_load(leaders, quorum, conflict, batch_size)


def batched_load_paxos(n: int, batch_size: float = 1.0) -> float:
    """Equation 4 with batching: ``floor(N/2) / B``."""
    _check_batch(batch_size)
    return load_paxos(n) / batch_size


def batched_load_epaxos(n: int, conflict: float = 0.0, batch_size: float = 1.0) -> float:
    """Equation 5 with batching (each opportunistic leader batches its own)."""
    _check_batch(batch_size)
    return load_epaxos(n, conflict) / batch_size


def batched_load_wpaxos(n: int, leaders: int, batch_size: float = 1.0) -> float:
    """Equation 6 with batching at every zone leader."""
    _check_batch(batch_size)
    return load_wpaxos(n, leaders) / batch_size


def expected_batch_size(rate: float, batch_size: float, window: float | None) -> float:
    """First-order mean batch size under Poisson arrivals at rate λ.

    A batch closes when it reaches ``batch_size`` commands or when the
    ``window`` timer (armed by the first command) fires, whichever comes
    first.  With about ``1 + λ·W`` arrivals per window, the mean is

        E[B] ≈ min(batch_size, 1 + λ·W)

    clamped to at least 1.  ``window=None`` (size-only batching) fills
    every batch, so E[B] = batch_size.
    """
    _check_batch(batch_size)
    if rate < 0:
        raise ModelError(f"arrival rate must be non-negative, got {rate}")
    if window is None:
        return batch_size
    if window < 0:
        raise ModelError(f"batch window must be non-negative, got {window}")
    return max(1.0, min(batch_size, 1.0 + rate * window))
