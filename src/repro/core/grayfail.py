"""Gray-failure capacity and detection models.

The paper's performance model (sections 3.2-3.3) assumes every node runs
at the same service rate.  A *gray* failure breaks exactly that premise:
one node keeps participating while running k times slower (CPU throttling,
a dying disk, a lossy NIC).  These models predict the two first-order
consequences the ``bench_grayfail`` experiment measures, plus the
detection latency of the φ-accrual/slowdown detector that triggers the
planned leader handoff (``repro.paxi.detector``):

- **Degraded leader.**  The leader serializes O(N) work per round, so the
  whole group's capacity tracks the leader's service rate: a k-times
  slower leader caps throughput at ``C / k``
  (:func:`degraded_leader_capacity`).  This is the paper's
  leader-bottleneck argument run in reverse.

- **Degraded follower.**  The leader waits for the ``(Q-1)``-th fastest of
  ``N - 1`` follower replies.  While at least ``Q - 1`` *healthy*
  followers remain, the quorum forms entirely on the healthy side and the
  degraded node is simply never waited for — capacity is (to first order)
  unchanged, though the quorum wait rises slightly because the order
  statistic now draws from a smaller pool
  (:func:`quorum_wait_with_stragglers`).  Only once the stragglers intrude
  into every quorum does the group slow to their pace.  This asymmetry —
  leader degradation is catastrophic, follower degradation is nearly free
  — is why the reaction to a degraded *leader* is a handoff rather than
  tolerance.

- **Detection latency.**  φ-accrual converts silence into suspicion:
  :func:`phi_detection_time` inverts Hayashibara's definition to the
  silence needed to reach a threshold.  The slowdown channel detects
  *stretch* instead: :func:`slowdown_detection_heartbeats` counts how many
  stretched samples the fast EWMA needs before the ratio test fires.
"""

from __future__ import annotations

import math

from repro.core.order_stats import expected_kth_normal_blom, normal_quantile
from repro.errors import ModelError


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ModelError(f"{name} must be positive, got {value!r}")


def degraded_leader_capacity(healthy_capacity: float, slow_factor: float) -> float:
    """Group capacity with the leader's service rate divided by
    ``slow_factor``.  The leader is the paper's bottleneck (it handles
    O(N) messages per round), so the group inherits its slowdown whole."""
    _check_positive("healthy_capacity", healthy_capacity)
    if slow_factor < 1.0:
        raise ModelError(f"slow_factor must be >= 1, got {slow_factor!r}")
    return healthy_capacity / slow_factor


def degraded_follower_capacity(
    healthy_capacity: float,
    n: int,
    quorum: int,
    slow_factor: float,
    degraded: int = 1,
) -> float:
    """Group capacity with ``degraded`` followers running ``slow_factor``
    times slower.  The leader self-votes and needs ``quorum - 1`` of the
    ``n - 1`` follower replies: while enough healthy followers remain the
    stragglers are never on the critical path; past that every quorum
    includes one and the group runs at the stragglers' pace."""
    _check_positive("healthy_capacity", healthy_capacity)
    if slow_factor < 1.0:
        raise ModelError(f"slow_factor must be >= 1, got {slow_factor!r}")
    if not 0 <= degraded <= n - 1:
        raise ModelError(f"degraded={degraded} outside [0, {n - 1}]")
    if not 2 <= quorum <= n:
        raise ModelError(f"quorum={quorum} outside [2, {n}]")
    healthy_followers = (n - 1) - degraded
    if healthy_followers >= quorum - 1:
        return healthy_capacity
    return healthy_capacity / slow_factor


def quorum_wait_with_stragglers(
    n: int,
    quorum: int,
    mu: float,
    sigma: float,
    slow_factor: float = 1.0,
    degraded: int = 0,
) -> float:
    """Expected quorum wait with ``degraded`` follower RTTs stretched by
    ``slow_factor``: the paper's k-order-statistic quorum delay (section
    3.3) with a contaminated sample.

    While the healthy pool still covers the quorum, the wait is the
    ``(quorum-1)``-th order statistic of the *smaller* healthy pool —
    slightly above the uncontaminated value, which is the model's way of
    saying a degraded follower is almost (not exactly) free.  Once the
    quorum must include stragglers, the wait jumps to an order statistic
    of the stretched distribution.
    """
    if not 2 <= quorum <= n:
        raise ModelError(f"quorum={quorum} outside [2, {n}]")
    if not 0 <= degraded <= n - 1:
        raise ModelError(f"degraded={degraded} outside [0, {n - 1}]")
    if slow_factor < 1.0:
        raise ModelError(f"slow_factor must be >= 1, got {slow_factor!r}")
    _check_positive("mu", mu)
    _check_positive("sigma", sigma)
    need = quorum - 1  # the leader self-votes
    healthy = (n - 1) - degraded
    if healthy >= need:
        return expected_kth_normal_blom(need, healthy, mu, sigma)
    # Every healthy reply arrives (in expectation) before any stretched
    # one; the quorum completes on the (need - healthy)-th straggler.
    k = need - healthy
    return expected_kth_normal_blom(
        k, degraded, slow_factor * mu, slow_factor * sigma
    )


def phi_detection_time(mu: float, sigma: float, phi_threshold: float) -> float:
    """Silence (since the last heartbeat) at which φ reaches the
    threshold, for a peer whose inter-arrivals are Normal(mu, sigma).

    Inverts Hayashibara's ``φ(t) = -log10 P(arrival later than t)``:
    φ >= φ* exactly when the survival probability drops below
    ``10^-φ*``, i.e. at ``mu + sigma * Φ⁻¹(1 - 10^-φ*)``.  Worst-case
    crash-detection latency is this plus one heartbeat interval (the
    crash can happen right after an arrival).
    """
    _check_positive("mu", mu)
    _check_positive("sigma", sigma)
    _check_positive("phi_threshold", phi_threshold)
    p_silence = 10.0 ** (-phi_threshold)
    return mu + sigma * normal_quantile(1.0 - p_silence)


def slowdown_detection_heartbeats(
    slow_factor: float, slow_ratio: float, fast_alpha: float = 0.25
) -> int:
    """Stretched heartbeats until the detector's fast EWMA crosses
    ``slow_ratio`` times the frozen healthy baseline.

    The EWMA relaxes from the baseline ``b`` toward the stretched value
    ``f*b`` as ``f + (1 - f)(1 - α)^j`` after ``j`` samples; solving for
    the crossing of ``r`` gives ``j = ln((f - r)/(f - 1)) / ln(1 - α)``.
    Multiply by the (stretched) heartbeat interval for wall-clock
    detection latency.  Degradations at or below the ratio are never
    detected by this channel — the function raises instead of returning
    infinity so callers confront the miss.
    """
    if slow_ratio <= 1.0:
        raise ModelError(f"slow_ratio must exceed 1.0, got {slow_ratio!r}")
    if not 0.0 < fast_alpha < 1.0:
        raise ModelError(f"fast_alpha must be in (0, 1), got {fast_alpha!r}")
    if slow_factor <= slow_ratio:
        raise ModelError(
            f"slow_factor {slow_factor!r} at or below slow_ratio {slow_ratio!r}: "
            "the slowdown channel never fires for such a mild degradation"
        )
    j = math.log((slow_factor - slow_ratio) / (slow_factor - 1.0)) / math.log(
        1.0 - fast_alpha
    )
    return max(1, math.ceil(j))
