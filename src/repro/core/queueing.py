"""Single-server queueing models (paper Table 1).

Four approximations of the average queue waiting time ``Wq``, differing in
their inter-arrival and service-time assumptions:

=========  ==================  =======================  =============================================
model      arrivals            service                  Wq
=========  ==================  =======================  =============================================
M/M/1      Poisson, rate λ     exponential, rate µ      ρ² / (λ(1-ρ))
M/D/1      Poisson             constant s, µ = 1/s      ρ / (2µ(1-ρ))
M/G/1      Poisson             general (σ known)        (λ²σ² + ρ²) / (2λ(1-ρ))
G/G/1      general             general                  ≈ ρ²(1+Cs)(Ca+ρ²Cs) / (2λ(1-ρ)(1+ρ²Cs))
=========  ==================  =======================  =============================================

where ``ρ = λ/µ`` and ``Ca``/``Cs`` are the squared coefficients of
variation of inter-arrival and service times.  The paper compares all four
against a reference Paxos implementation (Figure 4) and adopts **M/D/1**
for the remainder of its analysis since it tracks M/G/1 and the reference
almost exactly while being the simplest.

All times are in seconds.  A saturated or overloaded queue (ρ >= 1) has
infinite expected wait; we return ``math.inf`` rather than raising so that
latency-throughput curves can be plotted right up to the wall.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ModelError


def _check_rates(arrival_rate: float, service_rate: float) -> float:
    """Validate rates and return the utilization ρ."""
    if arrival_rate <= 0:
        raise ModelError(f"arrival rate must be positive, got {arrival_rate}")
    if service_rate <= 0:
        raise ModelError(f"service rate must be positive, got {service_rate}")
    return arrival_rate / service_rate


class QueueModel(ABC):
    """Common interface: expected queue wait for a given arrival rate."""

    name: str = "?"

    @property
    @abstractmethod
    def service_rate(self) -> float:
        """µ, the maximum sustainable request rate."""

    @abstractmethod
    def wait_time(self, arrival_rate: float) -> float:
        """Expected time in queue (excluding service), seconds."""

    def utilization(self, arrival_rate: float) -> float:
        return _check_rates(arrival_rate, self.service_rate)

    def sojourn_time(self, arrival_rate: float) -> float:
        """Expected wait plus one service time."""
        return self.wait_time(arrival_rate) + 1.0 / self.service_rate


@dataclass(frozen=True)
class MM1(QueueModel):
    """Poisson arrivals, exponential service."""

    mu: float
    name: str = "M/M/1"

    @property
    def service_rate(self) -> float:
        return self.mu

    def wait_time(self, arrival_rate: float) -> float:
        rho = _check_rates(arrival_rate, self.mu)
        if rho >= 1.0:
            return math.inf
        return rho**2 / (arrival_rate * (1.0 - rho))


@dataclass(frozen=True)
class MD1(QueueModel):
    """Poisson arrivals, deterministic (constant) service.

    The paper's model of choice: protocol rounds do near-identical work, so
    a constant service time is a good fit.
    """

    mu: float
    name: str = "M/D/1"

    @property
    def service_rate(self) -> float:
        return self.mu

    def wait_time(self, arrival_rate: float) -> float:
        rho = _check_rates(arrival_rate, self.mu)
        if rho >= 1.0:
            return math.inf
        return rho / (2.0 * self.mu * (1.0 - rho))

    @staticmethod
    def from_service_time(service_time: float) -> "MD1":
        if service_time <= 0:
            raise ModelError(f"service time must be positive, got {service_time}")
        return MD1(1.0 / service_time)


@dataclass(frozen=True)
class MG1(QueueModel):
    """Poisson arrivals, general service with known standard deviation
    (the Pollaczek-Khinchine formula, as written in the paper's Table 1)."""

    mu: float
    service_sigma: float
    name: str = "M/G/1"

    @property
    def service_rate(self) -> float:
        return self.mu

    def wait_time(self, arrival_rate: float) -> float:
        rho = _check_rates(arrival_rate, self.mu)
        if rho >= 1.0:
            return math.inf
        numerator = arrival_rate**2 * self.service_sigma**2 + rho**2
        return numerator / (2.0 * arrival_rate * (1.0 - rho))


@dataclass(frozen=True)
class GG1(QueueModel):
    """General arrivals and service (Allen-Cunneen-style approximation, as
    written in the paper's Table 1).

    ``ca2``/``cs2`` are squared coefficients of variation of inter-arrival
    and service times (1.0 reduces toward M/M/1 behaviour).
    """

    mu: float
    ca2: float = 1.0
    cs2: float = 1.0
    name: str = "G/G/1"

    def __post_init__(self) -> None:
        if self.ca2 < 0 or self.cs2 < 0:
            raise ModelError("coefficients of variation must be non-negative")

    @property
    def service_rate(self) -> float:
        return self.mu

    def wait_time(self, arrival_rate: float) -> float:
        rho = _check_rates(arrival_rate, self.mu)
        if rho >= 1.0:
            return math.inf
        numerator = rho**2 * (1.0 + self.cs2) * (self.ca2 + rho**2 * self.cs2)
        denominator = 2.0 * arrival_rate * (1.0 - rho) * (1.0 + rho**2 * self.cs2)
        return numerator / denominator


ALL_MODELS = ("M/M/1", "M/D/1", "M/G/1", "G/G/1")


def make_model(
    name: str,
    service_time: float,
    service_sigma: float = 0.0,
    ca2: float = 1.0,
) -> QueueModel:
    """Factory over the four Table-1 models from a mean service time."""
    if service_time <= 0:
        raise ModelError(f"service time must be positive, got {service_time}")
    mu = 1.0 / service_time
    if name == "M/M/1":
        return MM1(mu)
    if name == "M/D/1":
        return MD1(mu)
    if name == "M/G/1":
        return MG1(mu, service_sigma)
    if name == "G/G/1":
        cs2 = (service_sigma * mu) ** 2
        return GG1(mu, ca2=ca2, cs2=cs2)
    raise ModelError(f"unknown queue model {name!r}; expected one of {ALL_MODELS}")
