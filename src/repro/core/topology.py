"""Deployment topologies: sites, inter-site round-trip times, node placement.

The paper evaluates in two settings (section 5):

- **LAN**: one AWS availability zone, where round-trip times are
  approximately normal with mean 0.4271 ms and standard deviation 0.0476 ms
  (Figure 3).
- **WAN**: five AWS regions — N. Virginia (VA), Ohio (OH), California (CA),
  Ireland (IR), Japan (JP) — with large, asymmetric inter-region delays.

A :class:`Topology` owns the site list, the RTT matrix between sites (in
milliseconds), the intra-site RTT distribution, and the placement of replica
nodes onto sites.  Both the analytic models (:mod:`repro.core`) and the
simulator (:mod:`repro.sim.network`) consume the same topology objects, which
is what lets the two prongs cross-validate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

# Figure 3 of the paper: local-area RTT within one AWS region.
LOCAL_RTT_MEAN_MS = 0.4271
LOCAL_RTT_SIGMA_MS = 0.0476

# Representative inter-region RTTs (milliseconds) between the five AWS
# regions the paper deploys in.  Sources: publicly reported AWS
# inter-region latency matrices contemporary with the paper.
AWS_REGIONS = ("VA", "OH", "CA", "IR", "JP")

_AWS_RTT_MS: dict[frozenset[str], float] = {
    frozenset({"VA", "OH"}): 11.0,
    frozenset({"VA", "CA"}): 62.0,
    frozenset({"VA", "IR"}): 75.0,
    frozenset({"VA", "JP"}): 162.0,
    frozenset({"OH", "CA"}): 52.0,
    frozenset({"OH", "IR"}): 86.0,
    frozenset({"OH", "JP"}): 145.0,
    frozenset({"CA", "IR"}): 138.0,
    frozenset({"CA", "JP"}): 107.0,
    frozenset({"IR", "JP"}): 212.0,
}

# Jitter on WAN paths, as a fraction of the mean one-way delay.
WAN_JITTER_FRACTION = 0.02


@dataclass(frozen=True)
class RttDistribution:
    """A normal RTT distribution in milliseconds."""

    mean_ms: float
    sigma_ms: float

    def one_way(self) -> "RttDistribution":
        """The corresponding one-way delay distribution (RTT halved)."""
        return RttDistribution(self.mean_ms / 2.0, self.sigma_ms / 2.0)


@dataclass
class Topology:
    """Sites, inter-site RTTs, and node placement for one deployment.

    Parameters
    ----------
    sites:
        Ordered site (region) names.
    rtt_ms:
        Mapping from unordered site pairs to mean RTT in milliseconds.
        Pairs of a site with itself are implied by ``local``.
    local:
        Intra-site RTT distribution (applies within every site, and between
        a client and a replica in the same site).
    node_sites:
        ``node_sites[i]`` is the site of replica node ``i``.
    """

    sites: tuple[str, ...]
    rtt_ms: dict[frozenset[str], float]
    local: RttDistribution = field(
        default_factory=lambda: RttDistribution(LOCAL_RTT_MEAN_MS, LOCAL_RTT_SIGMA_MS)
    )
    node_sites: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        site_set = set(self.sites)
        if len(site_set) != len(self.sites):
            raise ConfigError(f"duplicate sites in {self.sites!r}")
        for pair in self.rtt_ms:
            unknown = set(pair) - site_set
            if unknown:
                raise ConfigError(f"RTT entry references unknown sites {unknown!r}")
        for site in self.node_sites:
            if site not in site_set:
                raise ConfigError(f"node placed in unknown site {site!r}")

    # ------------------------------------------------------------------
    # Site-level queries
    # ------------------------------------------------------------------

    def site_rtt(self, a: str, b: str) -> RttDistribution:
        """RTT distribution between sites ``a`` and ``b`` (in ms)."""
        if a == b:
            return self.local
        key = frozenset({a, b})
        try:
            mean = self.rtt_ms[key]
        except KeyError:
            raise ConfigError(f"no RTT configured between {a!r} and {b!r}") from None
        return RttDistribution(mean, mean * WAN_JITTER_FRACTION)

    def site_rtt_mean_ms(self, a: str, b: str) -> float:
        return self.site_rtt(a, b).mean_ms

    # ------------------------------------------------------------------
    # Node-level queries
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_sites)

    def node_site(self, node: int) -> str:
        return self.node_sites[node]

    def node_rtt(self, a: int, b: int) -> RttDistribution:
        """RTT distribution between replica nodes ``a`` and ``b``."""
        return self.site_rtt(self.node_sites[a], self.node_sites[b])

    def nodes_in_site(self, site: str) -> list[int]:
        return [i for i, s in enumerate(self.node_sites) if s == site]

    def rtts_from(self, node: int) -> list[float]:
        """Mean RTTs (ms) from ``node`` to every other node, unsorted."""
        return [
            self.node_rtt(node, other).mean_ms
            for other in range(self.n_nodes)
            if other != node
        ]

    def with_nodes(self, node_sites: list[str] | tuple[str, ...]) -> "Topology":
        """A copy of this topology with a different node placement."""
        return Topology(
            sites=self.sites,
            rtt_ms=dict(self.rtt_ms),
            local=self.local,
            node_sites=tuple(node_sites),
        )


def lan(n_nodes: int = 9) -> Topology:
    """A single-site LAN deployment with ``n_nodes`` replicas.

    Matches the paper's LAN experiments: every pair of nodes (and every
    client-node pair) sees RTT ~ Normal(0.4271 ms, 0.0476 ms).
    """
    if n_nodes < 1:
        raise ConfigError("LAN needs at least one node")
    return Topology(
        sites=("LAN",),
        rtt_ms={},
        node_sites=("LAN",) * n_nodes,
    )


def aws_wan(
    regions: tuple[str, ...] = AWS_REGIONS,
    nodes_per_region: int = 1,
) -> Topology:
    """The paper's 5-region AWS WAN deployment (section 5).

    ``nodes_per_region`` controls grid-style deployments: the WPaxos and
    WanKeeper experiments use 3 regions x 3 nodes, the 5-region EPaxos model
    uses one node per region, etc.
    """
    unknown = set(regions) - set(AWS_REGIONS)
    if unknown:
        raise ConfigError(f"unknown AWS regions {unknown!r}")
    if nodes_per_region < 1:
        raise ConfigError("need at least one node per region")
    placement: list[str] = []
    for region in regions:
        placement.extend([region] * nodes_per_region)
    rtts = {
        pair: ms
        for pair, ms in _AWS_RTT_MS.items()
        if pair <= set(regions)
    }
    return Topology(sites=tuple(regions), rtt_ms=rtts, node_sites=tuple(placement))
