"""Analytic capacity model for a sharded (multi-group) deployment.

Sharding multiplies Formula-6 capacity: each consensus group has its own
leader bottleneck, so ``S`` independent groups sustain ``S * C1`` single-key
operations per second — minus a coordination tax for the fraction of the
workload that spans groups.

A cross-shard transaction of ``k`` keys is client-driven two-phase commit
(:mod:`repro.shard.txn`): per key it pays one lock CAS round, one data
write round, and one unlock round — ``txn_rounds ~= 3`` consensus rounds
of leader occupancy where a plain write pays one.  With a fraction ``f``
of operations running inside such transactions, each logical operation
costs on average ``(1 - f) + f * txn_rounds`` rounds, so

    C_sharded = S * C1 / ((1 - f) + f * txn_rounds)

which reduces to the ideal ``S * C1`` at ``f = 0``.  The model deliberately
assumes uniform key placement (every group equally loaded); skewed
placement shifts the bottleneck to the hottest group, which the simulator
exposes but this first-order model does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.errors import ModelError


class GroupModel(Protocol):
    """Anything with a single-group capacity — e.g.
    :class:`~repro.core.protocol_models.PaxosModel` or
    :class:`~repro.core.protocol_models.BatchedPaxosModel`."""

    def max_throughput(self) -> float: ...


#: Consensus rounds a 2PC participant pays per transactional key:
#: lock CAS + data write + lock release (see ``docs/SHARDING.md``).
TXN_ROUNDS = 3.0


@dataclass(frozen=True)
class ShardedCapacityModel:
    """Capacity of ``shards`` independent groups under a 2PC mix.

    ``group_model`` supplies the single-group capacity ``C1`` (its own
    topology/params/batching knobs apply per group — every group is a full
    replica set).  ``cross_shard_ratio`` is ``f``, the fraction of logical
    operations executed inside cross-shard transactions; ``txn_rounds`` is
    the per-key round multiplier of the 2PC protocol.
    """

    group_model: GroupModel
    shards: int
    cross_shard_ratio: float = 0.0
    txn_rounds: float = TXN_ROUNDS

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ModelError(f"shards must be >= 1, got {self.shards}")
        if not 0.0 <= self.cross_shard_ratio <= 1.0:
            raise ModelError(
                f"cross_shard_ratio must be in [0, 1], got {self.cross_shard_ratio}"
            )
        if self.txn_rounds < 1.0:
            raise ModelError(f"txn_rounds must be >= 1, got {self.txn_rounds}")

    def rounds_per_op(self) -> float:
        """Average consensus rounds per logical operation under the mix."""
        f = self.cross_shard_ratio
        return (1.0 - f) + f * self.txn_rounds

    def max_throughput(self) -> float:
        """Aggregate sustainable rate in logical operations per second."""
        return self.shards * self.group_model.max_throughput() / self.rounds_per_op()

    def speedup(self) -> float:
        """Capacity relative to one group serving the same mix."""
        return float(self.shards)

    def capacity_curve(self, max_ratio: float = 0.5, points: int = 11) -> list[tuple[float, float]]:
        """``(f, capacity)`` samples as the cross-shard fraction grows."""
        if points < 2:
            raise ModelError(f"points must be >= 2, got {points}")
        out: list[tuple[float, float]] = []
        for i in range(points):
            f = max_ratio * i / (points - 1)
            model = ShardedCapacityModel(
                self.group_model, self.shards, f, self.txn_rounds
            )
            out.append((f, model.max_throughput()))
        return out
