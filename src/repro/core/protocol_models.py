"""Per-protocol analytic performance models (paper sections 3 and 5).

Each model computes, for a system-wide arrival rate ``λ`` (rounds/second):

- the **work** the busiest node does per request, split by role (leader of
  its own rounds, follower in others' rounds, forwarder of mislocated
  requests), which yields the maximum throughput ``µ = 1 / work``;
- the **queue wait** ``wQ`` at that node via an M/D/1 queue (the paper's
  chosen approximation, Figure 4);
- the **network delay** ``DL + DQ``: client-to-leader round trip plus the
  quorum wait, where ``DQ`` is a k-order statistic of normal RTTs in the
  LAN and the (Q-1)-th smallest mean RTT in the WAN (section 3.3);
- the average **latency** ``wQ + ts + DL + DQ``.

Models provided: MultiPaxos, FPaxos, EPaxos (with conflict ratio ``c`` and
the paper's processing penalty), and WPaxos (grid quorums, locality ``l``)
— the four protocols in the paper's model figures (8, 10, 12) — plus
WanKeeper and VPaxos (hierarchical/locality designs of Figures 9/11/13)
and Mencius (the rotating-leader demonstration protocol).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.latency import expected_batch_delay
from repro.core.order_stats import expected_kth_normal_blom, kth_smallest
from repro.core.queueing import MD1
from repro.core.service import RoundWork, ServiceParams, paxos_batched_service_time
from repro.core.topology import Topology
from repro.errors import ModelError


@dataclass(frozen=True)
class ModelPoint:
    """One (throughput, latency) point of a modeled curve."""

    throughput: float  # rounds per second
    latency_ms: float


def quorum_delay_ms(topology: Topology, leader: int, q: int) -> float:
    """Expected RTT of the reply that completes a Q-quorum at ``leader``.

    The leader self-votes, so it waits for the (Q-1)-th follower reply.
    In a single-site (LAN) topology all RTTs share one normal distribution
    and we take the expected (Q-1)-th order statistic of N-1 draws; in a
    WAN we take the (Q-1)-th smallest mean RTT (section 3.3).
    """
    if q <= 1:
        return 0.0
    n = topology.n_nodes
    if q > n:
        raise ModelError(f"quorum {q} larger than cluster {n}")
    if len(topology.sites) == 1:
        local = topology.local
        return expected_kth_normal_blom(q - 1, n - 1, local.mean_ms, local.sigma_ms)
    return kth_smallest(topology.rtts_from(leader), q - 1)


def mean_client_rtt_ms(topology: Topology, target_site: str, client_sites: list[str]) -> float:
    """Average RTT from a uniform mix of client sites to ``target_site``."""
    if not client_sites:
        raise ModelError("no client sites given")
    return sum(
        topology.site_rtt_mean_ms(site, target_site) for site in client_sites
    ) / len(client_sites)


@dataclass
class _BusyNode:
    """Work mix at the busiest node: (fraction of system λ, per-job work)."""

    roles: list[tuple[float, float]] = field(default_factory=list)  # (rate frac, seconds)

    def add(self, rate_fraction: float, service_seconds: float) -> None:
        if rate_fraction > 0 and service_seconds > 0:
            self.roles.append((rate_fraction, service_seconds))

    def work_per_request(self) -> float:
        """Seconds of queue occupancy per system-wide request."""
        return sum(frac * seconds for frac, seconds in self.roles)

    def wait_time(self, system_rate: float) -> float:
        """M/D/1 queue wait at this node for system arrival rate λ."""
        arrival = system_rate * sum(frac for frac, _ in self.roles)
        mean_service = self.work_per_request() / sum(frac for frac, _ in self.roles)
        return MD1.from_service_time(mean_service).wait_time(arrival)


class ProtocolModel:
    """Base class: subclasses fill in the busy-node mix and network delays."""

    name = "?"

    def __init__(
        self,
        topology: Topology,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
    ) -> None:
        self.topology = topology
        self.params = params if params is not None else ServiceParams()
        self.client_sites = (
            client_sites if client_sites is not None else list(topology.sites)
        )
        self.n = topology.n_nodes

    # -- subclass hooks -------------------------------------------------

    def busy_node(self) -> _BusyNode:
        raise NotImplementedError

    def network_delay_ms(self) -> float:
        """Average DL + DQ over the client mix."""
        raise NotImplementedError

    def round_service_time(self) -> float:
        """ts for one round at the round's leader."""
        raise NotImplementedError

    # -- derived quantities ----------------------------------------------

    def max_throughput(self) -> float:
        """Highest sustainable system rate (busiest node at ρ = 1)."""
        return 1.0 / self.busy_node().work_per_request()

    def latency_s(self, system_rate: float) -> float:
        """Average request latency (seconds) at arrival rate λ."""
        wq = self.busy_node().wait_time(system_rate)
        if math.isinf(wq):
            return math.inf
        return wq + self.round_service_time() + self.network_delay_ms() / 1e3

    def latency_ms(self, system_rate: float) -> float:
        return self.latency_s(system_rate) * 1e3

    def curve(self, points: int = 25, max_fraction: float = 0.98) -> list[ModelPoint]:
        """Latency-vs-throughput curve up to ``max_fraction`` of saturation."""
        peak = self.max_throughput()
        out: list[ModelPoint] = []
        for i in range(1, points + 1):
            rate = peak * max_fraction * i / points
            out.append(ModelPoint(rate, self.latency_ms(rate)))
        return out


class PaxosModel(ProtocolModel):
    """Single-leader MultiPaxos (paper Table 2 and section 3.3)."""

    name = "MultiPaxos"

    def __init__(
        self,
        topology: Topology,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
        leader: int = 0,
    ) -> None:
        super().__init__(topology, params, client_sites)
        self.leader = leader

    @property
    def quorum_size(self) -> int:
        return self.n // 2 + 1

    def round_service_time(self) -> float:
        # ts = 2*to + N*ti + 2N*m/b (Table 2)
        return RoundWork(
            incoming=self.n, serializations=2, nic_messages=2 * self.n
        ).service_time(self.params)

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        node.add(1.0, self.round_service_time())  # the single leader leads all
        return node

    def network_delay_ms(self) -> float:
        leader_site = self.topology.node_site(self.leader)
        dl = mean_client_rtt_ms(self.topology, leader_site, self.client_sites)
        dq = quorum_delay_ms(self.topology, self.leader, self.quorum_size)
        return dl + dq


class FPaxosModel(PaxosModel):
    """FPaxos: phase-2 quorum of ``q2`` (paper section 2; |q2|=3 at N=9)."""

    name = "FPaxos"

    def __init__(
        self,
        topology: Topology,
        q2: int = 3,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
        leader: int = 0,
    ) -> None:
        super().__init__(topology, params, client_sites, leader)
        if not 1 <= q2 <= self.n:
            raise ModelError(f"q2 {q2} outside [1, {self.n}]")
        self.q2 = q2

    @property
    def quorum_size(self) -> int:
        return self.q2


class BatchedPaxosModel(PaxosModel):
    """MultiPaxos with a batching leader (batched Table-2 accounting).

    The leader coalesces up to ``batch_size`` requests per phase-2 round
    (closing a partial batch after ``batch_window`` seconds), so the
    quorum exchange amortizes across B commands and the busiest node's
    per-request occupancy drops to ``ts_batch / B`` — capacity scales by
    nearly B, shaved only by the per-command bytes that fatten the accept
    message (:func:`repro.core.service.paxos_batched_service_time`).

    Latency gains the batch-fill delay of
    :func:`repro.core.latency.expected_batch_delay`; queue waits keep the
    per-request M/D/1 approximation of the base model.  ``batch_size=1``
    reduces exactly to :class:`PaxosModel`.
    """

    name = "MultiPaxos+batch"

    def __init__(
        self,
        topology: Topology,
        batch_size: int = 1,
        batch_window: float | None = None,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
        leader: int = 0,
    ) -> None:
        super().__init__(topology, params, client_sites, leader)
        if batch_size < 1:
            raise ModelError(f"batch size must be at least 1, got {batch_size}")
        if batch_window is not None and batch_window < 0:
            raise ModelError(f"batch window must be non-negative, got {batch_window}")
        self.batch_size = batch_size
        self.batch_window = batch_window

    def round_service_time(self) -> float:
        # Per-request occupancy of the batching leader: ts_batch / B.
        return paxos_batched_service_time(self.n, self.batch_size, self.params)

    def batch_round_service_time(self) -> float:
        """ts of one full batched round (B commands)."""
        return self.round_service_time() * self.batch_size

    def latency_s(self, system_rate: float) -> float:
        base = super().latency_s(system_rate)
        if math.isinf(base):
            return base
        return base + expected_batch_delay(
            system_rate, self.batch_size, self.batch_window
        )


class EPaxosModel(ProtocolModel):
    """EPaxos: leaderless, conflict-sensitive (paper sections 3.4 and 5).

    ``conflict`` is the probability ``c`` that a command interferes with a
    concurrent one and needs the extra Accept round.  ``cpu_penalty`` and
    ``size_penalty`` implement the paper's message-processing penalty for
    dependency computation and fatter messages.
    """

    name = "EPaxos"

    def __init__(
        self,
        topology: Topology,
        conflict: float = 0.0,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
        cpu_penalty: float = 1.3,
        size_penalty: float = 2.0,
    ) -> None:
        super().__init__(topology, params, client_sites)
        if not 0.0 <= conflict <= 1.0:
            raise ModelError(f"conflict ratio {conflict} outside [0, 1]")
        self.conflict = conflict
        self.eparams = self.params.scaled(cpu_penalty, size_penalty)

    @property
    def fast_quorum_size(self) -> int:
        return math.ceil(3 * self.n / 4)

    @property
    def slow_quorum_size(self) -> int:
        return self.n // 2 + 1

    def round_service_time(self) -> float:
        c = self.conflict
        fast = RoundWork(
            incoming=1 + (self.n - 1),  # client request + all replies (full repl.)
            serializations=2,  # PreAccept broadcast + client reply
            nic_messages=2 * self.n,
        )
        extra = RoundWork(  # Accept round on conflict
            incoming=self.slow_quorum_size - 1,
            serializations=1,
            nic_messages=1 + (self.n - 1) + (self.slow_quorum_size - 1),
        )
        return (fast + extra.scale(c)).service_time(self.eparams)

    def _follower_work(self) -> float:
        c = self.conflict
        per_round = RoundWork(incoming=1, serializations=1, nic_messages=2)
        return (per_round + per_round.scale(c)).service_time(self.eparams)

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        share = 1.0 / self.n  # every node leads an equal share
        node.add(share, self.round_service_time())
        node.add(1.0 - share, self._follower_work())
        return node

    def network_delay_ms(self) -> float:
        total = 0.0
        for index, site in enumerate(self.client_sites):
            leader = self._nearest_node(site)
            dl = self.topology.site_rtt_mean_ms(site, self.topology.node_site(leader))
            dq_fast = quorum_delay_ms(self.topology, leader, self.fast_quorum_size)
            dq_slow = quorum_delay_ms(self.topology, leader, self.slow_quorum_size)
            latency = dl + dq_fast + self.conflict * dq_slow
            total += latency
        return total / len(self.client_sites)

    def _nearest_node(self, site: str) -> int:
        return min(
            range(self.n),
            key=lambda i: self.topology.site_rtt_mean_ms(site, self.topology.node_site(i)),
        )


class WPaxosModel(ProtocolModel):
    """WPaxos: one leader per zone, flexible grid quorums, locality ``l``.

    ``fz`` zones of failures are tolerated; with ``fz = 0`` phase-2 commits
    inside the leader's own zone, with ``fz = 1`` it must also reach the
    nearest other zone (paper sections 2 and 5.3).
    """

    name = "WPaxos"

    def __init__(
        self,
        topology: Topology,
        zones: int,
        nodes_per_zone: int,
        locality: float = 1.0,
        fz: int = 0,
        f: int | None = None,
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
    ) -> None:
        super().__init__(topology, params, client_sites)
        if zones * nodes_per_zone != self.n:
            raise ModelError(
                f"{zones}x{nodes_per_zone} grid does not cover {self.n} nodes"
            )
        if not 0.0 <= locality <= 1.0:
            raise ModelError(f"locality {locality} outside [0, 1]")
        if not 0 <= fz < zones:
            raise ModelError(f"fz {fz} outside [0, {zones - 1}]")
        self.zones = zones
        self.nodes_per_zone = nodes_per_zone
        self.locality = locality
        self.fz = fz
        self.f = f if f is not None else (nodes_per_zone - 1) // 2

    @property
    def leaders(self) -> int:
        return self.zones

    def _zone_site(self, zone_index: int) -> str:
        return self.topology.node_site(zone_index * self.nodes_per_zone)

    def round_service_time(self) -> float:
        # Full replication: the leader still broadcasts to everyone and
        # processes every reply (the paper's evaluation setting).
        return RoundWork(
            incoming=self.n, serializations=2, nic_messages=2 * self.n
        ).service_time(self.params)

    def _follower_work(self) -> float:
        return RoundWork(incoming=1, serializations=1, nic_messages=2).service_time(self.params)

    def _forward_work(self) -> float:
        return RoundWork(incoming=1, serializations=1, nic_messages=2).service_time(self.params)

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        share = 1.0 / self.leaders
        node.add(share, self.round_service_time())
        node.add(1.0 - share, self._follower_work())
        # Requests arriving at this leader for objects owned elsewhere are
        # forwarded to the owner.
        node.add(share * (1.0 - self.locality), self._forward_work())
        return node

    def _dq_ms(self, zone_index: int) -> float:
        """Phase-2 quorum delay for a leader in ``zone_index``."""
        site = self._zone_site(zone_index)
        # f+1 acks in fz+1 zones; the leader's own zone is effectively a
        # local k-order statistic, remote zones add their site RTT.
        local = self.topology.local
        k = min(self.f + 1, max(self.nodes_per_zone - 1, 1))
        local_dq = (
            expected_kth_normal_blom(
                k, max(self.nodes_per_zone - 1, k), local.mean_ms, local.sigma_ms
            )
            if self.nodes_per_zone > 1
            else 0.0
        )
        if self.fz == 0:
            return local_dq
        other_rtts = sorted(
            self.topology.site_rtt_mean_ms(site, self._zone_site(z))
            for z in range(self.zones)
            if z != zone_index
        )
        return max(local_dq, other_rtts[self.fz - 1])

    def network_delay_ms(self) -> float:
        """Formula-7 style: local requests pay DQ only, remote ones also
        pay the round trip to the owner's zone."""
        total = 0.0
        for site in self.client_sites:
            zone_index = self._site_zone(site)
            dq_local = self._dq_ms(zone_index) + self.topology.local.mean_ms
            remote_zones = [z for z in range(self.zones) if z != zone_index]
            if remote_zones:
                dl_remote = sum(
                    self.topology.site_rtt_mean_ms(site, self._zone_site(z))
                    for z in remote_zones
                ) / len(remote_zones)
                dq_remote = sum(self._dq_ms(z) for z in remote_zones) / len(remote_zones)
            else:
                dl_remote, dq_remote = 0.0, dq_local
            local_latency = dq_local
            remote_latency = dl_remote + dq_remote
            total += self.locality * local_latency + (1.0 - self.locality) * remote_latency
        return total / len(self.client_sites)

    def _site_zone(self, site: str) -> int:
        for z in range(self.zones):
            if self._zone_site(z) == site:
                return z
        return 0


class WanKeeperModel(ProtocolModel):
    """WanKeeper: hierarchical token broker (paper section 2).

    Requests for tokens a zone holds commit inside the zone's own Paxos
    group (``R`` nodes); requests for contested tokens travel to the master
    zone and execute in *its* group.  ``locality`` is the fraction of
    requests hitting a token the client's zone holds; the remainder pays a
    round trip to the master.  Group rounds are small (R-node quorums), so
    per-leader work is lower than WPaxos's full replication — the reason
    WanKeeper tops Figure 9.
    """

    name = "WanKeeper"

    def __init__(
        self,
        topology: Topology,
        zones: int,
        nodes_per_zone: int,
        locality: float = 1.0,
        master_zone: int = 1,  # index into zones (0-based)
        params: ServiceParams | None = None,
        client_sites: list[str] | None = None,
    ) -> None:
        super().__init__(topology, params, client_sites)
        if zones * nodes_per_zone != self.n:
            raise ModelError(
                f"{zones}x{nodes_per_zone} grid does not cover {self.n} nodes"
            )
        if not 0.0 <= locality <= 1.0:
            raise ModelError(f"locality {locality} outside [0, 1]")
        if not 0 <= master_zone < zones:
            raise ModelError(f"master zone {master_zone} outside [0, {zones - 1}]")
        self.zones = zones
        self.nodes_per_zone = nodes_per_zone
        self.locality = locality
        self.master_zone = master_zone

    def _zone_site(self, zone_index: int) -> str:
        return self.topology.node_site(zone_index * self.nodes_per_zone)

    def round_service_time(self) -> float:
        # A group round touches only the R-node zone group.
        r = self.nodes_per_zone
        return RoundWork(incoming=r, serializations=2, nic_messages=2 * r).service_time(
            self.params
        )

    def _follower_work(self) -> float:
        return RoundWork(incoming=1, serializations=1, nic_messages=2).service_time(self.params)

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        # The master leader is the busiest node: it leads its own zone's
        # share plus every non-local (contested) request from the others.
        local_share = self.locality * (1.0 / self.zones)
        master_extra = (1.0 - self.locality) * ((self.zones - 1) / self.zones)
        node.add(local_share + master_extra, self.round_service_time())
        # Follower work for its own zone-group rounds lands on zone mates,
        # not on the leader; the leader additionally pays receive/forward
        # for escalations it did not originate.
        node.add(master_extra, self._follower_work())
        return node

    def _group_dq_ms(self) -> float:
        local = self.topology.local
        k = max(1, self.nodes_per_zone // 2)  # majority of R, self-voting
        if self.nodes_per_zone == 1:
            return 0.0
        return expected_kth_normal_blom(
            k, self.nodes_per_zone - 1, local.mean_ms, local.sigma_ms
        )

    def network_delay_ms(self) -> float:
        master_site = self._zone_site(self.master_zone)
        dq = self._group_dq_ms()
        total = 0.0
        for site in self.client_sites:
            local_latency = self.topology.local.mean_ms + dq
            remote_latency = (
                self.topology.site_rtt_mean_ms(site, master_site)
                + self.topology.local.mean_ms
                + dq
            )
            total += self.locality * local_latency + (1.0 - self.locality) * remote_latency
        return total / len(self.client_sites)


class VPaxosModel(WanKeeperModel):
    """Vertical Paxos: like WanKeeper, but the master only *relocates*
    objects; contested commands still execute at some zone group, so the
    master never becomes an execution hotspot.  Non-local requests pay the
    round trip to the owner zone instead of the master."""

    name = "VPaxos"

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        # Every zone leader ends up with an even share (relocation keeps
        # ownership where the traffic is); forwarded commands add one
        # receive/forward on the requester side.
        share = 1.0 / self.zones
        node.add(share, self.round_service_time())
        node.add(share * (1.0 - self.locality), self._follower_work())
        return node

    def network_delay_ms(self) -> float:
        dq = self._group_dq_ms()
        total = 0.0
        for site in self.client_sites:
            zone_index = next(
                (z for z in range(self.zones) if self._zone_site(z) == site), 0
            )
            other = [z for z in range(self.zones) if z != zone_index]
            local_latency = self.topology.local.mean_ms + dq
            if other:
                dl_remote = sum(
                    self.topology.site_rtt_mean_ms(site, self._zone_site(z))
                    for z in other
                ) / len(other)
            else:
                dl_remote = 0.0
            remote_latency = dl_remote + self.topology.local.mean_ms + dq
            total += self.locality * local_latency + (1.0 - self.locality) * remote_latency
        return total / len(self.client_sites)


class MenciusModel(ProtocolModel):
    """Mencius: rotating slot ownership (framework-demonstration protocol).

    Every node leads 1/N of the slots, so the busiest node carries the same
    mix as EPaxos without the dependency penalty — high capacity.  The
    trade-off shows in latency: execution is strict slot order, so every
    command also waits for the **farthest** replica's skip/commit to arrive
    (``DQ`` is the maximum peer delay, not a quorum order statistic).
    """

    name = "Mencius"

    def round_service_time(self) -> float:
        # Accept broadcast + acks + commit broadcast at the slot owner.
        return RoundWork(
            incoming=self.n, serializations=3, nic_messages=3 * self.n
        ).service_time(self.params)

    def _follower_work(self) -> float:
        # Receive accept, ack it, receive the commit.
        return RoundWork(incoming=2, serializations=1, nic_messages=3).service_time(self.params)

    def busy_node(self) -> _BusyNode:
        node = _BusyNode()
        share = 1.0 / self.n
        node.add(share, self.round_service_time())
        node.add(1.0 - share, self._follower_work())
        return node

    def network_delay_ms(self) -> float:
        total = 0.0
        for site in self.client_sites:
            nearest = min(
                range(self.n),
                key=lambda i: self.topology.site_rtt_mean_ms(site, self.topology.node_site(i)),
            )
            dl = self.topology.site_rtt_mean_ms(site, self.topology.node_site(nearest))
            if len(self.topology.sites) == 1:
                local = self.topology.local
                dq = expected_kth_normal_blom(
                    self.n - 1, self.n - 1, local.mean_ms, local.sigma_ms
                )
            else:
                dq = max(self.topology.rtts_from(nearest))
            total += dl + dq
        return total / len(self.client_sites)
